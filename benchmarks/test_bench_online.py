"""Online-subsystem benchmarks: incremental beats rebuild under churn.

Two asserted claims, at ``n ∈ {1k, 10k}`` with ~1% per-tick churn:

* maintaining a :class:`~repro.online.MutableGridIndex` through a tick's
  moves is faster than rebuilding a batch
  :class:`~repro.core.geometry.GridIndex` from scratch;
* the incremental service (dirty-region invalidation + verdict cache)
  recomputes *strictly fewer* neighbourhoods than full per-tick
  recharacterization, and wins wall-clock, on identical update streams.

Every run appends one row to a ``BENCH_online.json`` summary written at
session end (path overridable via the ``BENCH_ONLINE_JSON`` env var);
CI uploads it as a workflow artifact.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np
import pytest

from repro.core.geometry import GridIndex
from repro.online import (
    MutableGridIndex,
    OnlineCharacterizationService,
    QosUpdate,
    ServiceConfig,
)

#: (n, churn) grid for both claims.
SCALES = [(1_000, 0.01), (10_000, 0.01)]

_SUMMARY_ROWS: list = []


@pytest.fixture(scope="module", autouse=True)
def bench_summary_artifact():
    """Collect per-test rows; write the JSON summary after the module."""
    yield
    if not _SUMMARY_ROWS:
        return
    path = os.environ.get("BENCH_ONLINE_JSON", "BENCH_online.json")
    with open(path, "w") as handle:
        json.dump({"benchmark": "online", "rows": _SUMMARY_ROWS}, handle, indent=2)


def _churn_moves(rng, positions, k):
    movers = rng.choice(positions.shape[0], size=k, replace=False)
    moves = []
    for device in movers:
        device = int(device)
        positions[device] = np.clip(
            positions[device] + rng.normal(0.0, 0.01, positions.shape[1]),
            0.0,
            1.0,
        )
        moves.append((device, positions[device].copy()))
    return moves


# ----------------------------------------------------------------------
# Claim 1: incremental index maintenance vs full rebuild
# ----------------------------------------------------------------------
@pytest.mark.parametrize("n,churn", SCALES)
def test_incremental_index_beats_full_rebuild(n, churn):
    cell = 0.06
    ticks = 5
    rng = np.random.default_rng(0)
    base = rng.random((n, 2))
    # Pre-generate identical move streams for both strategies.
    positions = base.copy()
    per_tick_moves = [
        _churn_moves(rng, positions, max(1, int(round(churn * n))))
        for _ in range(ticks)
    ]

    mutable = MutableGridIndex.from_points(base, cell)
    start = time.perf_counter()
    for moves in per_tick_moves:
        for device, pos in moves:
            mutable.move(device, pos)
    incremental_time = time.perf_counter() - start

    rebuild_positions = base.copy()
    start = time.perf_counter()
    for moves in per_tick_moves:
        for device, pos in moves:
            rebuild_positions[device] = pos
        GridIndex(rebuild_positions, cell)
    rebuild_time = time.perf_counter() - start

    # O(k) vs O(n) per tick: measured 30-100x at 1% churn; 2x keeps the
    # gate sturdy on noisy CI boxes.
    assert incremental_time * 2 < rebuild_time, (
        f"incremental {incremental_time * 1e3:.2f}ms not faster than "
        f"rebuild {rebuild_time * 1e3:.2f}ms at n={n}"
    )
    # The maintained index still answers like a fresh build.
    probe = rebuild_positions[:: max(1, n // 50)]
    assert mutable.query_batch(probe, 2 * cell) == GridIndex(
        rebuild_positions, cell
    ).query_batch(probe, 2 * cell)
    _SUMMARY_ROWS.append(
        {
            "claim": "index_maintenance",
            "n": n,
            "churn": churn,
            "ticks": ticks,
            "incremental_seconds": incremental_time,
            "rebuild_seconds": rebuild_time,
            "speedup": rebuild_time / incremental_time,
        }
    )


# ----------------------------------------------------------------------
# Claim 2: incremental service vs full per-tick recharacterization
# ----------------------------------------------------------------------
def _scenario_updates(n, churn, *, ticks, seed=0):
    """One setup batch (flag 2%) + per-tick batches of mostly-healthy churn."""
    rng = np.random.default_rng(seed)
    base = rng.random((n, 2))
    flagged = sorted(
        int(j) for j in rng.choice(n, size=max(8, n // 25), replace=False)
    )
    flagged_set = set(flagged)
    positions = base.copy()
    setup = []
    for device in flagged:
        positions[device] = np.clip(positions[device] + 0.05, 0.0, 1.0)
        setup.append(QosUpdate(device, tuple(positions[device]), True))
    per_tick = []
    healthy = np.array(sorted(set(range(n)) - flagged_set))
    for _ in range(ticks):
        batch = []
        movers = rng.choice(healthy, size=max(1, int(round(churn * n))), replace=False)
        for device in movers:
            device = int(device)
            positions[device] = np.clip(
                positions[device] + rng.normal(0.0, 0.005, 2), 0.0, 1.0
            )
            batch.append(QosUpdate(device, tuple(positions[device]), False))
        # A few flagged devices drift too, so incremental mode does real
        # (but localized) recomputation work each tick.
        for device in flagged[:3]:
            positions[device] = np.clip(
                positions[device] + rng.normal(0.0, 0.002, 2), 0.0, 1.0
            )
            batch.append(QosUpdate(device, tuple(positions[device]), True))
        per_tick.append(batch)
    return base, setup, per_tick


def _run_service(base, setup, per_tick, *, incremental, r):
    service = OnlineCharacterizationService(
        base, ServiceConfig(r=r, tau=3, incremental=incremental)
    )
    service.ingest_many(setup)
    service.end_tick()
    service.end_tick()  # consume the setup move carry before timing
    recompute_before = service.stats.verdicts_recomputed
    start = time.perf_counter()
    for batch in per_tick:
        service.ingest_many(batch)
        service.end_tick()
    elapsed = time.perf_counter() - start
    recomputed = service.stats.verdicts_recomputed - recompute_before
    return elapsed, recomputed, service


@pytest.mark.parametrize("n,churn", SCALES)
def test_incremental_service_beats_full_recompute(n, churn):
    r = 0.03 if n <= 1_000 else 0.01
    ticks = 5
    base, setup, per_tick = _scenario_updates(n, churn, ticks=ticks)

    def best_of(incremental, repeats=2):
        best = (float("inf"), 0)
        for _ in range(repeats):
            elapsed, recomputed, _ = _run_service(
                base, setup, per_tick, incremental=incremental, r=r
            )
            if elapsed < best[0]:
                best = (elapsed, recomputed)
        return best

    incr_time, incr_recomputed = best_of(True)
    full_time, full_recomputed = best_of(False)

    # The acceptance assertions: strictly fewer neighbourhoods
    # recomputed, and a wall-clock win, at 1%-churn ticks.
    assert incr_recomputed < full_recomputed, (
        f"incremental recomputed {incr_recomputed} >= full "
        f"{full_recomputed} at n={n}"
    )
    assert incr_time < full_time, (
        f"incremental {incr_time * 1e3:.1f}ms not faster than full "
        f"{full_time * 1e3:.1f}ms at n={n}"
    )
    _SUMMARY_ROWS.append(
        {
            "claim": "service_tick",
            "n": n,
            "churn": churn,
            "ticks": ticks,
            "incremental_seconds": incr_time,
            "full_seconds": full_time,
            "speedup": full_time / incr_time,
            "incremental_recomputed": incr_recomputed,
            "full_recomputed": full_recomputed,
        }
    )


def test_summary_rows_schema():
    """Rows carry what the CI artifact consumers expect."""
    for row in _SUMMARY_ROWS:
        assert {"claim", "n", "churn", "speedup"} <= set(row)
        assert row["speedup"] > 1.0
