"""Benchmark regenerating Figure 9 (unresolved ratio, R3 relaxed).

Published finding: indistinguishable from Figure 7 — R3 violations do
not move the unresolved ratio, because unresolved configurations come
from massive-error superposition.
"""

from __future__ import annotations

from repro.experiments import figure7, figure9


def test_bench_figure9(benchmark):
    kwargs = dict(
        steps=2,
        seeds=(0, 1),
        a_values=(1, 30, 60),
        g_values=(0.0, 0.5),
        n=1000,
    )
    result9 = benchmark(figure9.run, **kwargs)
    result7 = figure7.run(**kwargs)
    rows9 = {
        (row["G"], row["A"]): row["unresolved_ratio_percent"] for row in result9.rows
    }
    rows7 = {
        (row["G"], row["A"]): row["unresolved_ratio_percent"] for row in result7.rows
    }
    # Same qualitative shape as Figure 7 cell by cell.
    for key in rows9:
        assert rows9[key] == 0.0 if key[1] == 1 else True
    # The figures agree in the aggregate: mean ratios within a few points
    # of each other (the paper overlays them as identical curves).
    mean9 = sum(rows9.values()) / len(rows9)
    mean7 = sum(rows7.values()) / len(rows7)
    assert abs(mean9 - mean7) < 6.0
