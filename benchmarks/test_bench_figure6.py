"""Benchmarks regenerating Figure 6(a) and Figure 6(b).

Closed-form analytics: full paper scale, shape asserted exactly.
"""

from __future__ import annotations

from repro.experiments import figure6a, figure6b


def test_bench_figure6a(benchmark):
    result = benchmark(figure6a.run)
    # Paper scale: five radii, m up to 200.
    assert {row["r"] for row in result.rows} == {0.1, 0.05, 0.033, 0.025, 0.02}
    # Shape: every curve is a CDF reaching ~1 by m = 200; curves order by r.
    for r in (0.1, 0.05, 0.033, 0.025, 0.02):
        series = [row["cdf"] for row in result.rows if row["r"] == r]
        assert all(a <= b + 1e-12 for a, b in zip(series, series[1:]))
        assert series[-1] > 0.99
    at_m50 = {
        row["r"]: row["cdf"] for row in result.rows if row["m"] == 50
    }
    assert at_m50[0.02] >= at_m50[0.05] >= at_m50[0.1]


def test_bench_figure6b(benchmark):
    result = benchmark(figure6b.run)
    # Paper scale: tau in 2..5, n up to 15000.
    assert {row["tau"] for row in result.rows} == {2, 3, 4, 5}
    assert max(row["n"] for row in result.rows) == 15000
    # Shape: curves decrease in n, order by tau, stay above the paper's
    # 0.997 axis floor.
    for tau in (2, 3, 4, 5):
        series = [row["containment"] for row in result.rows if row["tau"] == tau]
        assert all(a >= b - 1e-12 for a, b in zip(series, series[1:]))
    finals = {
        tau: min(row["containment"] for row in result.rows if row["tau"] == tau)
        for tau in (2, 3, 4, 5)
    }
    assert finals[2] <= finals[3] <= finals[4] <= finals[5]
    assert finals[2] > 0.997
