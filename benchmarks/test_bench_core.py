"""Micro-benchmarks of the core machinery (not tied to a paper artifact).

These quantify the costs the paper argues about qualitatively: motion
enumeration on realistic neighbourhoods, a full characterization pass at
``n = 1000``, and the greedy partition construction.
"""

from __future__ import annotations

import pytest

from repro.core.characterize import Characterizer
from repro.core.motions import all_maximal_motions, maximal_motions_containing
from repro.core.partition import greedy_partition
from repro.simulation import SimulationConfig, Simulator


@pytest.fixture(scope="module")
def paper_step():
    config = SimulationConfig(
        n=1000, errors_per_step=20, isolated_probability=0.1, seed=123
    )
    return Simulator(config).step()


def test_bench_motion_enumeration(benchmark, paper_step):
    transition = paper_step.transition
    devices = transition.flagged_sorted

    def enumerate_all():
        return [maximal_motions_containing(transition, j)[0] for j in devices]

    families = benchmark(enumerate_all)
    assert len(families) == len(devices)
    assert all(families[i] for i in range(len(devices)))


def test_bench_characterize_step(benchmark, paper_step):
    def characterize():
        return Characterizer(paper_step.transition).characterize_all()

    results = benchmark(characterize)
    assert set(results) == set(paper_step.transition.flagged_sorted)


def test_bench_global_maximal_motions(benchmark, paper_step):
    motions = benchmark(all_maximal_motions, paper_step.transition)
    covered = set()
    for motion in motions:
        covered |= motion
    assert covered == paper_step.transition.flagged


def test_bench_greedy_partition(benchmark, paper_step):
    partition = benchmark(greedy_partition, paper_step.transition)
    flat = [device for block in partition for device in block]
    assert sorted(flat) == list(paper_step.transition.flagged_sorted)
