"""Sharded-topology benchmarks: spatial scale-out of the tick pipeline.

Asserted claims, at ``n = 10k`` with ~1% flagged churn per tick:

* the cell→shard tiling balances a uniform population — no shard owns
  more than twice the smallest shard's share;
* the sharded tick emits the same flagged set and verdict types as the
  single service on the identical stream (the identity contract, held
  at benchmark scale);
* per-shard partial tick work shrinks with the shard count — the
  per-tick verdict load of the busiest shard at 4 shards is well below
  the single-shard load (the near-linear partial-work curve CI tracks
  via the summary artifact).

Wall-clock per configuration is *recorded* in the summary rows (CI
plots the scaling trajectory) but only asserted where it can be real:
``scaling_efficiency`` rows compare thread vs process topologies per
shard count, and the >=2x-at-4-process-shards gate arms only when
``os.cpu_count() >= 4`` — on a one- or two-core runner a process
speedup is physically impossible and the row records that honestly
(every row carries ``cpu_count``).  The partial-work counters remain
the core-count-independent proxy.

A 100k-device scaling lane rides behind ``REPRO_BENCH_SHARD_100K=1``
and a 1M-device smoke behind ``REPRO_BENCH_SHARD_1M=1`` (minutes of
runtime; off in the default CI lane).

Every run appends rows to a ``BENCH_shard.json`` summary written at
session end (path overridable via the ``BENCH_SHARD_JSON`` env var);
CI merges it into ``BENCH_summary.json`` and uploads both.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np
import pytest

from repro.online import OnlineCharacterizationService, ServiceConfig, ShardedService

CFG = ServiceConfig(r=0.01, tau=2)
N = 10_000
TICKS = 3

_SUMMARY_ROWS: list = []


@pytest.fixture(scope="module", autouse=True)
def bench_summary_artifact():
    """Collect per-test rows; write the JSON summary after the module."""
    yield
    if not _SUMMARY_ROWS:
        return
    path = os.environ.get("BENCH_SHARD_JSON", "BENCH_shard.json")
    with open(path, "w") as handle:
        json.dump({"benchmark": "shard", "rows": _SUMMARY_ROWS}, handle, indent=2)


def _stream(n, ticks, seed):
    """Pre-generated identical (frame, flags) stream for every config."""
    rng = np.random.default_rng(seed)
    positions = rng.random((n, 2))
    frames = []
    flags = np.zeros(n, dtype=bool)
    for _ in range(ticks):
        movers = rng.choice(n, size=n // 100, replace=False)
        positions[movers] = np.clip(
            positions[movers] + rng.normal(0, 0.004, (len(movers), 2)), 0, 1
        )
        flags = flags.copy()
        flags[movers] = rng.random(len(movers)) < 0.5
        frames.append((positions.copy(), flags))
    return frames


def _drive(service, frames):
    """Feed the stream; returns (seconds, per-tick busiest-shard load,
    total halo bytes).  Shard load comes from the front door's per-shard
    flagged counters, which work under both worker topologies (the
    thread workers' stores are in-process, the process workers' are
    not)."""
    peak_targets = []
    halo_bytes = 0
    start = time.perf_counter()
    for positions, flags in frames:
        out = service.feed_snapshot(positions, flags)
        if hasattr(service, "shard_flagged_counts"):
            peak_targets.append(max(service.shard_flagged_counts()))
        else:
            peak_targets.append(len(out.flagged))
        halo_bytes += getattr(out, "halo_bytes", 0)
    return time.perf_counter() - start, peak_targets, halo_bytes


@pytest.mark.parametrize("shards", [1, 2, 4])
def test_sharded_tick_scaling(shards):
    frames = _stream(N, TICKS, seed=0)
    with ShardedService(
        frames[0][0], CFG, topology_shards=shards, parallel=True
    ) as service:
        sizes = service.shard_sizes()
        assert sum(sizes) == N
        # Uniform population, contiguous cell boxes: balanced shards.
        assert max(sizes) <= 2 * max(1, min(sizes)), sizes
        seconds, peaks, _ = _drive(service, frames)
        assert service.current_tick == TICKS
        assert all(service.verdicts), "flagged devices carry verdicts"
    _SUMMARY_ROWS.append(
        {
            "claim": "tick_scaling",
            "n": N,
            "topology_shards": shards,
            "ticks": TICKS,
            "seconds": seconds,
            "per_tick_ms": seconds / TICKS * 1e3,
            "shard_sizes": list(sizes),
            "peak_shard_flagged": max(peaks),
        }
    )


def test_busiest_shard_load_shrinks_with_shard_count():
    """Partial per-shard work is the stable scaling proxy: at 4 shards
    the busiest shard owns well under the whole flagged set."""
    frames = _stream(N, TICKS, seed=0)
    loads = {}
    for shards in (1, 4):
        with ShardedService(
            frames[0][0], CFG, topology_shards=shards, parallel=False
        ) as service:
            _, peaks, _ = _drive(service, frames)
            loads[shards] = max(peaks)
    # A uniform flagged population splits ~4 ways; 60% is a loose gate
    # covering stat noise at ~50 flagged devices per tick.
    assert loads[4] <= 0.6 * loads[1], loads
    _SUMMARY_ROWS.append(
        {
            "claim": "partial_work",
            "n": N,
            "peak_flagged_1_shard": loads[1],
            "peak_flagged_4_shards": loads[4],
        }
    )


def _scaling_rows(n, ticks, seed, topology, shard_counts, churn=100):
    """Drive the identical stream per shard count; emit efficiency rows.

    Speedup and parallel efficiency are relative to the 1-shard run of
    the *same* topology, so process-spawn overhead never flatters the
    thread numbers (or vice versa).
    """
    frames = _stream(n, ticks, seed)
    rows = []
    base_seconds = None
    for shards in shard_counts:
        with ShardedService(
            frames[0][0],
            CFG,
            topology_shards=shards,
            parallel=True,
            topology_workers=topology,
        ) as service:
            seconds, _, halo_bytes = _drive(service, frames)
            assert service.current_tick == ticks
        if base_seconds is None:
            base_seconds = seconds
        speedup = base_seconds / seconds if seconds > 0 else float("inf")
        rows.append(
            {
                "claim": "scaling_efficiency",
                "n": n,
                "topology_workers": topology,
                "topology_shards": shards,
                "ticks": ticks,
                "seconds": seconds,
                "per_tick_ms": seconds / ticks * 1e3,
                "speedup": speedup,
                "parallel_efficiency": speedup / shards,
                "halo_bytes_per_tick": halo_bytes / ticks,
                "cpu_count": os.cpu_count(),
            }
        )
    return rows


@pytest.mark.parametrize("topology", ["thread", "process"])
def test_scaling_efficiency(topology):
    """Record speedup + parallel efficiency per shard count and topology.

    The >=2x gate at 4 process shards only arms on a >=4-core machine:
    below that, process parallelism cannot beat wall clock and the rows
    simply document the overhead (cpu_count is in every row so CI can
    tell a failed claim from an unarmed one).
    """
    rows = _scaling_rows(N, TICKS, seed=0, topology=topology,
                         shard_counts=(1, 2, 4))
    _SUMMARY_ROWS.extend(rows)
    by_shards = {row["topology_shards"]: row for row in rows}
    if topology == "process" and (os.cpu_count() or 1) >= 4:
        assert by_shards[4]["speedup"] >= 2.0, by_shards


@pytest.mark.skipif(
    not os.environ.get("REPRO_BENCH_SHARD_100K"),
    reason="100k scaling lane: set REPRO_BENCH_SHARD_100K=1 to run",
)
@pytest.mark.parametrize("topology", ["thread", "process"])
def test_scaling_efficiency_100k(topology):
    rows = _scaling_rows(
        100_000, ticks=2, seed=5, topology=topology, shard_counts=(1, 4)
    )
    _SUMMARY_ROWS.extend(rows)
    by_shards = {row["topology_shards"]: row for row in rows}
    if topology == "process" and (os.cpu_count() or 1) >= 4:
        assert by_shards[4]["speedup"] >= 2.0, by_shards


def test_sharded_matches_single_at_bench_scale():
    n, ticks = 5_000, 2
    frames = _stream(n, ticks, seed=3)
    with OnlineCharacterizationService(frames[0][0].copy(), CFG) as single:
        with ShardedService(
            frames[0][0].copy(), CFG, topology_shards=4, parallel=True
        ) as sharded:
            for positions, flags in frames:
                want = single.feed_snapshot(positions, flags)
                got = sharded.feed_snapshot(positions, flags)
                assert got.flagged == want.flagged
                assert set(got.verdicts) == set(want.verdicts)
                for device, verdict in want.verdicts.items():
                    assert (
                        got.verdicts[device].anomaly_type
                        == verdict.anomaly_type
                    ), device


@pytest.mark.skipif(
    not os.environ.get("REPRO_BENCH_SHARD_1M"),
    reason="1M-device scale smoke: set REPRO_BENCH_SHARD_1M=1 to run",
)
@pytest.mark.parametrize("topology", ["thread", "process"])
def test_million_device_tick(topology):
    n = 1_000_000
    rng = np.random.default_rng(7)
    positions = rng.random((n, 2))
    cfg = ServiceConfig(r=0.001, tau=2)
    with ShardedService(
        positions,
        cfg,
        topology_shards=8,
        parallel=True,
        topology_workers=topology,
    ) as service:
        assert sum(service.shard_sizes()) == n
        flags = np.zeros(n, dtype=bool)
        flags[rng.choice(n, size=1_000, replace=False)] = True
        start = time.perf_counter()
        out = service.feed_snapshot(positions, flags)
        seconds = time.perf_counter() - start
        assert len(out.flagged) == 1_000
    _SUMMARY_ROWS.append(
        {
            "claim": "million_devices",
            "n": n,
            "topology_workers": topology,
            "seconds": seconds,
            "cpu_count": os.cpu_count(),
        }
    )
