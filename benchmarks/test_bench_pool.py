"""Persistent worker pool vs spawn-per-tick: the online multi-core claim.

The asserted claim: on a 10k-device, 1%-churn online replay, the
persistent shared-memory ``process`` backend beats the old
spawn-a-``multiprocessing.Pool``-per-tick strategy (``process-spawn``)
by >= 2x wall-clock — per-tick pool startup plus a pickle of the full
transition dominates per-tick characterization work at online cadence,
which is exactly why the spawn backend could not serve the service path.
Verdicts are asserted identical between the two backends on every tick.

Every run appends rows to a ``BENCH_pool.json`` summary written at
session end (path overridable via the ``BENCH_POOL_JSON`` env var); CI
merges it into ``BENCH_summary.json`` and uploads both.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.engine import CharacterizationEngine, EngineConfig
from repro.online import (
    LoadGenerator,
    LoadProfile,
    OnlineCharacterizationService,
    ServiceConfig,
    drive_load,
)

#: (devices, churn) grid; 10k/1% is the acceptance scale.
SCALES = [(1_000, 0.01), (10_000, 0.01)]

_SUMMARY_ROWS: list = []


@pytest.fixture(scope="module", autouse=True)
def bench_summary_artifact():
    """Collect per-test rows; write the JSON summary after the module."""
    yield
    if not _SUMMARY_ROWS:
        return
    path = os.environ.get("BENCH_POOL_JSON", "BENCH_pool.json")
    with open(path, "w") as handle:
        json.dump({"benchmark": "pool", "rows": _SUMMARY_ROWS}, handle, indent=2)


#: Fixed pool size: the claim is about per-tick dispatch overhead vs
#: per-tick pool startup, which both scale with the worker count the
#: operator configured — not with what cpu_count() happens to report.
WORKERS = 6


def _profile(n, churn):
    # flag_rate keeps a few dozen flagged devices in flight so every tick
    # does real multi-device recomputation work at online cadence.
    return LoadProfile(
        devices=n, services=2, churn=churn, flag_rate=0.05, seed=42
    )


def _run_replay(n, churn, backend, *, ticks, warmup=2):
    generator = LoadGenerator(_profile(n, churn))
    engine = CharacterizationEngine(
        EngineConfig(backend=backend, workers=WORKERS, min_process_devices=2)
    )
    service = OnlineCharacterizationService(
        generator.initial_positions(),
        ServiceConfig(r=0.01, tau=3, reuse_motions=True),
        engine=engine,
    )
    with engine:
        drive_load(service, generator, warmup)  # populate the flagged set
        start = time.perf_counter()
        result = drive_load(service, generator, ticks)
        elapsed = time.perf_counter() - start
    return elapsed, result


def _verdict_history(result):
    return [
        {
            j: (v.anomaly_type, v.rule, v.witness)
            for j, v in tick.verdicts.items()
        }
        for tick in result.ticks
    ]


@pytest.mark.parametrize("n,churn", SCALES)
def test_persistent_pool_beats_spawn_per_tick(n, churn):
    ticks = 8
    pool_time, pool_result = min(
        (_run_replay(n, churn, "process", ticks=ticks) for _ in range(2)),
        key=lambda pair: pair[0],
    )
    spawn_time, spawn_result = min(
        (_run_replay(n, churn, "process-spawn", ticks=ticks) for _ in range(2)),
        key=lambda pair: pair[0],
    )

    # Identical streams, identical verdict history (type / rule / witness).
    assert _verdict_history(pool_result) == _verdict_history(spawn_result)

    # The acceptance assertion: >= 2x wall-clock at online cadence.
    assert pool_time * 2 < spawn_time, (
        f"persistent pool {pool_time * 1e3:.1f}ms not 2x faster than "
        f"spawn-per-tick {spawn_time * 1e3:.1f}ms at n={n}"
    )
    _SUMMARY_ROWS.append(
        {
            "claim": "persistent_pool_vs_spawn",
            "n": n,
            "churn": churn,
            "ticks": ticks,
            "pool_seconds": pool_time,
            "spawn_seconds": spawn_time,
            "speedup": spawn_time / pool_time,
        }
    )


def test_pool_carry_reuses_families_on_churny_replay():
    """The pool extends cross-tick family reuse to multi-core runs."""
    n, churn, ticks = 2_000, 0.01, 6

    def run(reuse):
        generator = LoadGenerator(
            LoadProfile(
                devices=n, services=2, churn=churn, flag_rate=0.3, seed=42
            )
        )
        engine = CharacterizationEngine(
            EngineConfig(backend="process", workers=4, min_process_devices=2)
        )
        service = OnlineCharacterizationService(
            generator.initial_positions(),
            ServiceConfig(r=0.02, tau=3, reuse_motions=reuse),
            engine=engine,
        )
        with engine:
            drive_load(service, generator, ticks)
        return service.stats

    with_reuse = run(True)
    without = run(False)
    assert with_reuse.families_reused > 0
    assert without.families_reused == 0
    assert with_reuse.families_recomputed < without.families_recomputed
    _SUMMARY_ROWS.append(
        {
            "claim": "pool_family_reuse",
            "n": n,
            "churn": churn,
            "ticks": ticks,
            "families_recomputed_reuse": with_reuse.families_recomputed,
            "families_recomputed_noreuse": without.families_recomputed,
            "families_reused": with_reuse.families_reused,
            "speedup": without.families_recomputed
            / max(1, with_reuse.families_recomputed),
        }
    )


def test_summary_rows_schema():
    """Rows carry what the CI artifact consumers expect."""
    for row in _SUMMARY_ROWS:
        assert {"claim", "n", "churn", "speedup"} <= set(row)
        assert row["speedup"] > 1.0
