"""Benchmarks for the extension ablations (A4 sampling, A5 malicious)."""

from __future__ import annotations

from repro.experiments import ablation_malicious, ablation_sampling


def test_bench_ablation_sampling(benchmark):
    """A4: the unresolved ratio falls as sampling splits the load."""
    result = benchmark(
        ablation_sampling.run,
        a_total=40,
        multipliers=(1, 2, 4, 8),
        steps=2,
        seeds=(0, 1),
    )
    series = {row["multiplier"]: row["unresolved_ratio_percent"] for row in result.rows}
    # Section VII-C's claim: sampling faster shrinks U drastically.  The
    # slowest sampler must be materially worse than the fastest.
    assert series[1] > series[8]
    assert series[8] < series[1] / 2 + 1.0
    # And the per-interval error count halves along the sweep.
    loads = {row["multiplier"]: row["errors_per_interval"] for row in result.rows}
    assert loads == {1: 40, 2: 20, 4: 10, 8: 5}


def test_bench_ablation_malicious(benchmark):
    """A5: mimicry fools the naive monitor, never the f-tolerant one."""
    result = benchmark(
        ablation_malicious.run,
        forged_counts=(3,),
        steps=2,
        seeds=(0, 1),
    )
    (row,) = result.rows
    assert row["victims_attacked"] > 0
    # The attack works against the naive characterizer...
    assert row["naive_suppression_percent"] > 50.0
    # ...and never against the hardened one.
    assert row["robust_suppression_percent"] == 0.0
    # The cost: suspicion instead of certainty, plus some genuine massive
    # verdicts degraded (quantified, not hidden).
    assert row["robust_suspect_percent"] >= 0.0
    assert 0.0 <= row["massive_certified_percent"] <= 100.0
