"""Scalability benchmarks: cost of one characterization pass vs n.

The paper's scalability argument is qualitative ("by design, our approach
is scalable"): each device's work depends on its 4r neighbourhood, not on
``n``.  These benchmarks quantify it — a full characterization pass over
one interval at increasing system sizes, with the per-device neighbourhood
statistics asserted to stay flat (the actual scalability invariant; wall
time is reported by pytest-benchmark, not asserted, to stay robust on
shared machines).
"""

from __future__ import annotations

import pytest

from repro.core.characterize import Characterizer
from repro.core.neighborhood import MotionCache
from repro.simulation import SimulationConfig, Simulator


def _one_step(n: int, errors: int):
    config = SimulationConfig(
        n=n, errors_per_step=errors, isolated_probability=0.2, seed=77
    )
    return Simulator(config).step()


@pytest.mark.parametrize("n", [500, 1000, 2000])
def test_bench_characterize_scaling(benchmark, n):
    # Error load scales with n so flagged density stays constant.
    step = _one_step(n, errors=max(1, n // 50))
    transition = step.transition

    def run():
        return Characterizer(transition).characterize_all()

    results = benchmark(run)
    assert set(results) == set(transition.flagged_sorted)
    # The scalability invariant: average 2r neighbourhood size among
    # flagged devices is bounded by the dimensioning analysis, not by n.
    sizes = [len(transition.neighborhood(j)) for j in transition.flagged_sorted]
    assert sum(sizes) / len(sizes) < 25.0


def test_bench_motion_cache_reuse(benchmark):
    """A shared MotionCache computes each device's family exactly once."""
    step = _one_step(1000, errors=20)
    transition = step.transition

    def run():
        cache = MotionCache(transition)
        for device in transition.flagged_sorted:
            cache.family(device)
        return cache

    cache = benchmark(run)
    assert cache.expansions == len(transition.flagged)
