"""Engine benchmarks: batch neighbourhoods and execution backends.

Quantifies the two tentpole claims of the engine layer:

* ``Transition.neighborhoods_batch`` (vectorized cell-code queries) beats
  the per-device ``neighborhood()`` loop on flagged-heavy transitions at
  ``n ∈ {1k, 10k}`` — asserted, not just timed;
* the ``serial`` and ``process`` backends both characterize simulated
  steps correctly at ``n ∈ {1k, 10k}``, with timings reported for
  comparison.

Every timing uses fresh transitions (the neighbourhood memo would
otherwise hand later rounds the answer for free).
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core.transition import Transition
from repro.engine import CharacterizationEngine, EngineConfig
from repro.simulation import SimulationConfig, Simulator

#: (n, flagged) grid: flagged-heavy relative to the paper's ~100 devices.
NEIGHBORHOOD_SCALES = [(1_000, 1_000), (10_000, 2_000)]


def _flagged_heavy_transition(n: int, n_flagged: int, seed: int = 0) -> Transition:
    rng = np.random.default_rng(seed)
    prev = rng.random((n, 2))
    cur = np.clip(prev + rng.normal(0.0, 0.01, prev.shape), 0.0, 1.0)
    flagged = rng.choice(n, size=n_flagged, replace=False)
    transition = Transition.from_arrays(prev, cur, flagged, r=0.03, tau=3)
    transition._indexes()  # index build is common to both paths
    return transition


def _time_best_of(fn, make_arg, repeats: int = 2) -> float:
    best = float("inf")
    for _ in range(repeats):
        arg = make_arg()
        start = time.perf_counter()
        fn(arg)
        best = min(best, time.perf_counter() - start)
    return best


# ----------------------------------------------------------------------
# Batch vs per-device neighbourhood computation
# ----------------------------------------------------------------------
@pytest.mark.parametrize("n,n_flagged", NEIGHBORHOOD_SCALES)
def test_bench_neighborhoods_batch(benchmark, n, n_flagged):
    result = benchmark.pedantic(
        lambda t: t.neighborhoods_batch(),
        setup=lambda: ((_flagged_heavy_transition(n, n_flagged),), {}),
        rounds=2,
    )
    assert len(result) == n_flagged


@pytest.mark.parametrize("n,n_flagged", NEIGHBORHOOD_SCALES)
def test_bench_neighborhoods_per_device(benchmark, n, n_flagged):
    def per_device_loop(transition):
        return {j: transition.neighborhood(j) for j in transition.flagged_sorted}

    result = benchmark.pedantic(
        per_device_loop,
        setup=lambda: ((_flagged_heavy_transition(n, n_flagged),), {}),
        rounds=2,
    )
    assert len(result) == n_flagged


@pytest.mark.parametrize("n,n_flagged", NEIGHBORHOOD_SCALES)
def test_batch_beats_per_device_loop(n, n_flagged):
    """The acceptance assertion: vectorized batch wins at both scales."""
    loop_time = _time_best_of(
        lambda t: [t.neighborhood(j) for j in t.flagged_sorted],
        lambda: _flagged_heavy_transition(n, n_flagged),
    )
    batch_time = _time_best_of(
        lambda t: t.neighborhoods_batch(),
        lambda: _flagged_heavy_transition(n, n_flagged),
    )
    # Measured ~8-12x on CI-class hardware; 1.5x keeps the gate sturdy
    # against noisy neighbours.
    assert batch_time * 1.5 < loop_time, (
        f"batch {batch_time * 1e3:.1f}ms not faster than "
        f"per-device loop {loop_time * 1e3:.1f}ms at n={n}, |A_k|={n_flagged}"
    )


def test_batch_results_match_loop_at_scale():
    transition = _flagged_heavy_transition(10_000, 2_000)
    fresh = _flagged_heavy_transition(10_000, 2_000)
    batch = transition.neighborhoods_batch()
    for j in fresh.flagged_sorted[::97]:  # spot-check across the id range
        assert batch[j] == fresh.neighborhood(j)


# ----------------------------------------------------------------------
# Serial vs process backends on simulated steps.
#
# ``r`` is dimensioned with ``n`` so the *local* density (devices per
# r-ball) stays at the paper's operating point as the system grows —
# which is the paper's own Figure 6 dimensioning argument, and what
# keeps per-device cost bounded at n = 10k.  The search budgets mirror
# the experiment runner's.  Note the process backend's timing is
# startup- and pickling-dominated on few-core machines (its win needs
# real parallel hardware); the benchmark reports both so the overhead
# is visible, while verdict identity is asserted in tests/engine/.
# ----------------------------------------------------------------------
BACKEND_SCALES = {
    1_000: dict(n=1_000, r=0.03, errors_per_step=20),
    10_000: dict(n=10_000, r=0.01, errors_per_step=100),
}


@pytest.fixture(scope="module", params=sorted(BACKEND_SCALES), ids=["n1k", "n10k"])
def simulated_step(request):
    config = SimulationConfig(
        isolated_probability=0.1, seed=123, **BACKEND_SCALES[request.param]
    )
    return Simulator(config).step()


def _engine(backend: str) -> CharacterizationEngine:
    return CharacterizationEngine(
        EngineConfig(
            backend=backend,
            workers=2,
            min_process_devices=1,
            budget_fallback=True,
            collection_budget=200_000,
            pool_cap=50_000,
        )
    )


def test_bench_engine_serial(benchmark, simulated_step):
    engine = _engine("serial")
    results = benchmark.pedantic(
        lambda: engine.characterize(simulated_step.transition), rounds=2
    )
    assert set(results) == set(simulated_step.transition.flagged_sorted)


def test_bench_engine_process(benchmark, simulated_step):
    engine = _engine("process")
    results = benchmark.pedantic(
        lambda: engine.characterize(simulated_step.transition), rounds=2
    )
    assert set(results) == set(simulated_step.transition.flagged_sorted)
