"""Columnar store benchmarks: SoA tick overhead vs the per-device path.

The asserted claim, at ``n ∈ {10k, 100k}`` with 1% per-tick churn: the
non-verdict portion of a steady-state tick — snapshot diff, state
apply, dirty-region marking, snapshot roll — is at least 2x faster (at
``n = 100k``) through the columnar path (:func:`diff_rows` +
:meth:`~repro.online.store.DeviceStateStore.apply_rows` +
:meth:`~repro.online.dirty.DirtyRegionTracker.mark_batch`) than through
the per-device compatibility path (:func:`diff_updates` building
:class:`QosUpdate` objects, one :meth:`apply` / :meth:`mark` per
device, list-of-bool flag vectors) that mirrors the pre-refactor object
store.  Rows also record the store's columnar bytes per device.

Every run appends one row to a ``BENCH_store.json`` summary written at
session end (path overridable via the ``BENCH_STORE_JSON`` env var);
CI uploads it as a workflow artifact.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np
import pytest

from repro.online import DeviceStateStore
from repro.online.dirty import DirtyRegionTracker
from repro.online.replay import diff_rows, diff_updates

#: (n, churn, required speedup) grid.  The ISSUE gate is 2x at 100k;
#: the smaller scale only has to not regress.
SCALES = [(10_000, 0.01, 1.2), (100_000, 0.01, 2.0)]

R = 0.015
CELL = 0.06
TICKS = 4

_SUMMARY_ROWS: list = []


@pytest.fixture(scope="module", autouse=True)
def bench_summary_artifact():
    """Collect per-test rows; write the JSON summary after the module."""
    yield
    if not _SUMMARY_ROWS:
        return
    path = os.environ.get("BENCH_STORE_JSON", "BENCH_store.json")
    with open(path, "w") as handle:
        json.dump({"benchmark": "store", "rows": _SUMMARY_ROWS}, handle, indent=2)


def _stream(n, churn, *, seed=0):
    """Pre-generate identical per-tick snapshots for both paths."""
    rng = np.random.default_rng(seed)
    base = rng.random((n, 2))
    positions = base.copy()
    snapshots = []
    k = max(1, int(round(churn * n)))
    for _ in range(TICKS):
        movers = rng.choice(n, size=k, replace=False)
        positions[movers] = np.clip(
            positions[movers] + rng.normal(0.0, 0.01, (k, 2)), 0.0, 1.0
        )
        snapshots.append(positions.copy())
    return base, snapshots


def _run_columnar(base, snapshots):
    """One steady tick = diff_rows + apply_rows + mark_batch + roll."""
    store = DeviceStateStore(base, cell=CELL)
    tracker = DirtyRegionTracker(cell=CELL, influence_radius=4 * R)
    flags = np.zeros(base.shape[0], dtype=bool)
    start = time.perf_counter()
    for snapshot in snapshots:
        rows, positions, new_flags = diff_rows(
            store.current_positions(), snapshot, store.flag_vector(), flags
        )
        applied = store.apply_rows(rows, positions, new_flags)
        tracker.mark_batch(applied, was_relevant=applied.was_flagged)
        tracker.finish_tick(store.index)
        store.advance_tick()
    return time.perf_counter() - start, store


def _run_per_device(base, snapshots):
    """The pre-refactor shape: per-device objects end to end.

    Flag state travels as an n-length list of bools, the diff builds one
    :class:`QosUpdate` per changed device, and the store/tracker are fed
    one device at a time through the compatibility shims.
    """
    store = DeviceStateStore(base, cell=CELL)
    tracker = DirtyRegionTracker(cell=CELL, influence_radius=4 * R)
    n = base.shape[0]
    flags = [False] * n
    previous = base.copy()
    start = time.perf_counter()
    for snapshot in snapshots:
        stored_flags = [store.is_flagged(j) for j in range(n)]
        for update in diff_updates(previous, snapshot, stored_flags, flags):
            applied = store.apply(
                update.device, update.position, update.flagged
            )
            tracker.mark(applied, was_relevant=applied.flag_changed)
        tracker.finish_tick(store.index)
        store.advance_tick()
        previous = snapshot
    return time.perf_counter() - start, store


@pytest.mark.parametrize("n,churn,required", SCALES)
def test_columnar_tick_beats_per_device_path(n, churn, required):
    base, snapshots = _stream(n, churn)

    def best_of(runner, repeats=2):
        best, store = float("inf"), None
        for _ in range(repeats):
            elapsed, store = runner(base, snapshots)
            best = min(best, elapsed)
        return best, store

    columnar_time, columnar_store = best_of(_run_columnar)
    per_device_time, per_device_store = best_of(_run_per_device)

    # Both paths must land the stores in the same state — the speedup is
    # not allowed to come from skipped work.
    assert np.array_equal(
        columnar_store.current_positions(), per_device_store.current_positions()
    )
    assert np.array_equal(
        columnar_store.snapshot_arrays()[0], per_device_store.snapshot_arrays()[0]
    )

    speedup = per_device_time / columnar_time
    assert speedup >= required, (
        f"columnar {columnar_time * 1e3:.1f}ms only {speedup:.1f}x over "
        f"per-device {per_device_time * 1e3:.1f}ms at n={n} (need {required}x)"
    )
    _SUMMARY_ROWS.append(
        {
            "claim": "tick_overhead",
            "n": n,
            "churn": churn,
            "ticks": TICKS,
            "columnar_seconds": columnar_time,
            "per_device_seconds": per_device_time,
            "speedup": speedup,
            "bytes_per_device": columnar_store.bytes_per_device,
        }
    )


def test_summary_rows_schema():
    """Rows carry what the CI artifact consumers expect."""
    for row in _SUMMARY_ROWS:
        assert {"claim", "n", "churn", "speedup", "bytes_per_device"} <= set(row)
        assert row["speedup"] > 1.0
        assert row["bytes_per_device"] > 0
