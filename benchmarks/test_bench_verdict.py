"""Verdict-kernel benchmarks: bitmask set algebra beats frozensets.

Two asserted claims:

* ``Characterizer.characterize_many`` on the bitset kernel is ≥ 3x
  faster than the frozenset baseline at ``n ∈ {1k, 10k}`` with ~5% of
  devices flagged (radii chosen to keep neighbourhood density — and
  hence per-device verdict work — comparable across scales), while
  returning identical verdicts, witnesses and cost counters;
* the online service with cross-tick motion-family reuse recomputes
  *strictly fewer* families than without, on identical 1%-churn update
  streams, while remaining verdict-identical tick by tick.

Every run appends rows to a ``BENCH_verdict.json`` summary written at
module teardown (path overridable via the ``BENCH_VERDICT_JSON`` env
var); CI uploads it as a workflow artifact and feeds it to
``tools/bench_merge.py``.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np
import pytest

from repro.core.characterize import Characterizer
from repro.core.transition import Snapshot, Transition
from repro.online import OnlineCharacterizationService, QosUpdate, ServiceConfig

#: (n, r) grid for the kernel claim; r keeps ~comparable flagged density
#: inside the 2r ball at both scales (flagged fraction is 5% of n).
SCALES = [(1_000, 0.1), (10_000, 0.03)]

_SUMMARY_ROWS: list = []


@pytest.fixture(scope="module", autouse=True)
def bench_summary_artifact():
    """Collect per-test rows; write the JSON summary after the module."""
    yield
    if not _SUMMARY_ROWS:
        return
    path = os.environ.get("BENCH_VERDICT_JSON", "BENCH_verdict.json")
    with open(path, "w") as handle:
        json.dump({"benchmark": "verdict", "rows": _SUMMARY_ROWS}, handle, indent=2)


# ----------------------------------------------------------------------
# Claim 1: mask kernel beats the frozenset baseline on characterize_many
# ----------------------------------------------------------------------
def _verdict_scenario(n, r, *, frac=0.05, tau=3, seed=0):
    """~5% flagged: coherent clusters of tau+2 (massive-style) plus
    stragglers, so all of Theorems 5/6/7 fire."""
    rng = np.random.default_rng(seed)
    prev = rng.random((n, 2))
    flagged = sorted(
        int(j) for j in rng.choice(n, size=max(8, int(n * frac)), replace=False)
    )
    cur = prev.copy()
    i = 0
    while i < len(flagged):
        group = flagged[i : i + tau + 2]
        center = rng.random(2) * 0.8 + 0.1
        prev[group] = center + rng.normal(0, r / 2, (len(group), 2))
        cur[group] = np.clip(
            prev[group] + rng.normal(0, r / 3, (len(group), 2))
            + rng.normal(0, 0.05, 2),
            0,
            1,
        )
        i += tau + 2 + int(rng.integers(0, 2))
    prev = np.clip(prev, 0, 1)
    return prev, cur, flagged


def _time_kernel(prev, cur, flagged, r, tau, kernel, repeats):
    best = float("inf")
    results = None
    for _ in range(repeats):
        transition = Transition(Snapshot(prev), Snapshot(cur), flagged, r, tau)
        # Warm the vectorized neighbourhood memo outside the timed
        # region, exactly as the engine does for every kernel.
        transition.neighborhoods_batch(flagged)
        transition.neighborhoods_batch(flagged, radius_factor=4.0)
        characterizer = Characterizer(transition, kernel=kernel)
        start = time.perf_counter()
        results = characterizer.characterize_many(flagged)
        best = min(best, time.perf_counter() - start)
    return best, results


@pytest.mark.parametrize("n,r", SCALES)
def test_bitset_kernel_beats_frozenset_baseline(n, r):
    tau = 3
    prev, cur, flagged = _verdict_scenario(n, r, tau=tau)
    repeats = 3 if n <= 1_000 else 2
    mask_time, mask_results = _time_kernel(
        prev, cur, flagged, r, tau, "bitset", repeats
    )
    set_time, set_results = _time_kernel(
        prev, cur, flagged, r, tau, "frozenset", repeats
    )

    # Equivalence first: the speed means nothing if the answers drift.
    assert mask_results.keys() == set_results.keys()
    for j in mask_results:
        got, want = mask_results[j], set_results[j]
        assert got.anomaly_type == want.anomaly_type, j
        assert got.rule == want.rule, j
        assert got.witness == want.witness, j
        assert got.cost.as_dict() == want.cost.as_dict(), j

    # The acceptance assertion: ≥ 3x on the verdict hot path (measured
    # ~4.5x; the margin absorbs noisy CI boxes).
    assert mask_time * 3 < set_time, (
        f"bitset {mask_time * 1e3:.1f}ms not 3x faster than frozenset "
        f"{set_time * 1e3:.1f}ms at n={n}"
    )
    _SUMMARY_ROWS.append(
        {
            "claim": "characterize_many",
            "n": n,
            "r": r,
            "flagged": len(flagged),
            "bitset_seconds": mask_time,
            "frozenset_seconds": set_time,
            "speedup": set_time / mask_time,
        }
    )


# ----------------------------------------------------------------------
# Claim 2: cross-tick motion-family reuse recomputes fewer families
# ----------------------------------------------------------------------
def _service_stream(n, churn, *, ticks, tau, seed=0):
    """Setup batch flagging ~2% + per-tick 1%-churn batches."""
    rng = np.random.default_rng(seed)
    base = rng.random((n, 2))
    flagged = sorted(
        int(j) for j in rng.choice(n, size=max(8, n // 50), replace=False)
    )
    positions = base.copy()
    setup = []
    for device in flagged:
        positions[device] = np.clip(positions[device] + 0.05, 0.0, 1.0)
        setup.append(QosUpdate(device, tuple(positions[device]), True))
    healthy = np.array(sorted(set(range(n)) - set(flagged)))
    per_tick = []
    for _ in range(ticks):
        batch = []
        movers = rng.choice(healthy, size=max(1, int(round(churn * n))), replace=False)
        for device in movers:
            device = int(device)
            positions[device] = np.clip(
                positions[device] + rng.normal(0.0, 0.005, 2), 0.0, 1.0
            )
            batch.append(QosUpdate(device, tuple(positions[device]), False))
        for device in flagged[:3]:
            positions[device] = np.clip(
                positions[device] + rng.normal(0.0, 0.002, 2), 0.0, 1.0
            )
            batch.append(QosUpdate(device, tuple(positions[device]), True))
        per_tick.append(batch)
    return base, setup, per_tick


def _run_reuse(base, setup, per_tick, *, reuse, r, tau):
    service = OnlineCharacterizationService(
        base, ServiceConfig(r=r, tau=tau, reuse_motions=reuse)
    )
    service.ingest_many(setup)
    service.end_tick()
    service.end_tick()  # consume the setup move carry before counting
    families_before = service.stats.families_recomputed
    start = time.perf_counter()
    ticks = []
    for batch in per_tick:
        service.ingest_many(batch)
        ticks.append(service.end_tick())
    elapsed = time.perf_counter() - start
    recomputed = service.stats.families_recomputed - families_before
    return elapsed, recomputed, service, ticks


@pytest.mark.parametrize("n,churn", [(1_000, 0.01), (10_000, 0.01)])
def test_motion_reuse_recomputes_fewer_families(n, churn):
    r = 0.03 if n <= 1_000 else 0.01
    tau = 3
    base, setup, per_tick = _service_stream(n, churn, ticks=4, tau=tau)
    _, reuse_families, reuse_service, reuse_ticks = _run_reuse(
        base, setup, per_tick, reuse=True, r=r, tau=tau
    )
    _, full_families, _, full_ticks = _run_reuse(
        base, setup, per_tick, reuse=False, r=r, tau=tau
    )

    # Verdict identity on the same stream, tick by tick.
    for ta, tb in zip(reuse_ticks, full_ticks):
        assert ta.verdicts.keys() == tb.verdicts.keys()
        for j in ta.verdicts:
            a, b = ta.verdicts[j], tb.verdicts[j]
            assert a.anomaly_type == b.anomaly_type, (ta.tick, j)
            assert a.rule == b.rule, (ta.tick, j)
            assert a.witness == b.witness, (ta.tick, j)

    # The acceptance assertion: strictly fewer families recomputed.
    assert reuse_families < full_families, (
        f"reuse recomputed {reuse_families} >= no-reuse {full_families} "
        f"at n={n}"
    )
    assert reuse_service.stats.families_reused > 0
    _SUMMARY_ROWS.append(
        {
            "claim": "motion_reuse",
            "n": n,
            "churn": churn,
            "reuse_families_recomputed": reuse_families,
            "full_families_recomputed": full_families,
            "families_reused": reuse_service.stats.families_reused,
            "speedup": full_families / max(1, reuse_families),
        }
    )


def test_summary_rows_schema():
    """Rows carry what the CI artifact consumers expect."""
    for row in _SUMMARY_ROWS:
        assert {"claim", "n", "speedup"} <= set(row)
        assert row["speedup"] > 1.0
