"""Benchmark regenerating Figure 8 (missed detections, R3 relaxed).

Published shape: the proportion of devices claiming massive while their
real error was isolated stays bounded (< ~10%) and roughly flat in A.
"""

from __future__ import annotations

from repro.experiments import figure8


def test_bench_figure8(benchmark):
    result = benchmark(
        figure8.run,
        steps=2,
        seeds=(0, 1),
        a_values=(10, 30, 50),
        g_values=(0.3, 0.7),
        n=1000,
    )
    values = [row["missed_detection_percent"] for row in result.rows]
    # Bounded: the worst cell stays under the paper's ~10% ceiling with
    # slack for small-sample noise.
    assert max(values) < 15.0
    # Non-trivial: the relaxed generator does produce missed detections.
    assert max(values) > 0.0
    # Roughly flat in A: the spread across A within each G stays small
    # compared to the ceiling (no monotone blow-up with error count).
    for g in (0.3, 0.7):
        series = [
            row["missed_detection_percent"]
            for row in result.rows
            if row["G"] == g
        ]
        assert max(series) - min(series) < 12.0
