"""Benchmark regenerating Table II (repartition of A_k).

Paper values: I 2.54% / M(Th6) 88.34% / U 8.72% / M(Th7) 0.40%,
|A_k| = 95.7, at A = 20, n = 1000, r = 0.03, tau = 3.  The assertions
check the ordering and coarse magnitudes, not exact percentages.
"""

from __future__ import annotations

from repro.experiments import table2


def test_bench_table2(benchmark):
    result = benchmark(
        table2.run, steps=3, seeds=(0, 1), errors_per_step=20, n=1000
    )
    cells = {row["set"]: row["measured_percent"] for row in result.rows}
    isolated = cells["I_k (Theorem 5)"]
    massive6 = cells["M_k (Theorem 6)"]
    unresolved = cells["U_k (Corollary 8)"]
    massive7 = cells["M_k extra (Theorem 7)"]
    mean_flagged = cells["mean |A_k|"]
    # Shape: Theorem 6 dominates by a wide margin; unresolved is a
    # single-digit-to-teens percentage; isolated is a few percent; the
    # Theorem 7 remainder is sub-percent; |A_k| is near the paper's 95.7.
    assert massive6 > 70.0
    assert 0.0 < isolated < 10.0
    assert 0.0 < unresolved < 25.0
    assert massive7 < 2.0
    assert massive6 > unresolved > massive7
    assert 70.0 < mean_flagged < 120.0
