"""Benchmarks for the three ablations DESIGN.md defines (A1–A3)."""

from __future__ import annotations

import pytest

from repro.experiments import (
    ablation_locality,
    ablation_tessellation,
    ablation_theorem7,
)


def test_bench_ablation_tessellation(benchmark):
    """A1: no tessellation bucket size beats the local characterizer."""
    result = benchmark(
        ablation_tessellation.run,
        steps=2,
        seeds=(0, 1),
        bucket_factors=(1.0, 2.0, 4.0, 8.0, 16.0),
        n=1000,
    )
    rows = {row["method"]: row for row in result.rows}
    ours = rows["local characterization"]
    for factor in (1.0, 2.0, 4.0, 8.0, 16.0):
        tess = rows[f"tessellation {factor:g}r"]
        tess_total = (
            tess["false_massive_percent"] + tess["false_isolated_percent"]
        )
        ours_total = (
            ours["false_massive_percent"] + ours["false_isolated_percent"]
        )
        assert tess_total >= ours_total - 1e-9
    # The dilemma: small buckets split groups, large buckets over-merge.
    small = rows["tessellation 1r"]
    large = rows["tessellation 16r"]
    assert small["false_isolated_percent"] > large["false_isolated_percent"]
    assert large["false_massive_percent"] >= small["false_massive_percent"]


def test_bench_ablation_theorem7(benchmark):
    """A2: the exact search settles every cheap-path abstention."""
    result = benchmark(
        ablation_theorem7.run, steps=2, seeds=(0, 1), errors_per_step=20, n=1000
    )
    values = {row["quantity"]: row["value"] for row in result.rows}
    unresolved = values["cheap-path unresolved (% of A_k)"]
    recovered = values["recovered massive by Th.7 (% of A_k)"]
    confirmed = values["confirmed unresolved by Cor.8 (% of A_k)"]
    assert recovered + confirmed == pytest.approx(unresolved, abs=1e-9)
    # Paper's Table II shape: recoveries are sub-percent rarities.
    assert recovered < 3.0


def test_bench_ablation_locality(benchmark):
    """A3: the 4r knowledge radius loses nothing (100% agreement)."""
    result = benchmark(
        ablation_locality.run, steps=1, seeds=(0,), n=400, errors_per_step=12
    )
    values = {row["quantity"]: row["value"] for row in result.rows}
    assert values["devices checked"] > 0
    assert values["disagreements"] == 0
    assert values["match rate percent"] == 100.0
