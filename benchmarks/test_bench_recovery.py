"""Fault-tolerance cost: supervision overhead and checkpoint latency.

Two claims from the fault-tolerance PR, measured at the acceptance
scale (n=10k, 1% churn):

* arming the supervision machinery (``dispatch_deadline`` + health
  accounting) costs < 3% per tick on the pooled online replay — the
  deadline turns a blocking ``recv`` into ``poll(timeout)`` and the
  health machine is O(1) bookkeeping per run, so a fault-free stream
  pays nearly nothing for its crash insurance;
* a full checkpoint (store planes + tracker + verdict map + stats) of
  a 10k-device service writes in tens of milliseconds and restores
  verdict-identically — cheap enough for an every-tick cadence.

Every run appends rows to a ``BENCH_recovery.json`` summary written at
session end (path overridable via ``BENCH_RECOVERY_JSON``); CI merges
it into ``BENCH_summary.json`` and uploads both.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.engine import CharacterizationEngine, EngineConfig
from repro.online import (
    LoadGenerator,
    LoadProfile,
    OnlineCharacterizationService,
    ServiceConfig,
    drive_load,
    restore_service,
    save_checkpoint,
)

_SUMMARY_ROWS: list = []

N, CHURN = 10_000, 0.01
WORKERS = 6


@pytest.fixture(scope="module", autouse=True)
def bench_summary_artifact():
    """Collect per-test rows; write the JSON summary after the module."""
    yield
    if not _SUMMARY_ROWS:
        return
    path = os.environ.get("BENCH_RECOVERY_JSON", "BENCH_recovery.json")
    with open(path, "w") as handle:
        json.dump(
            {"benchmark": "recovery", "rows": _SUMMARY_ROWS}, handle, indent=2
        )


def _profile():
    return LoadProfile(
        devices=N, services=2, churn=CHURN, flag_rate=0.05, seed=42
    )


def _history(ticks):
    return [
        {
            j: (v.anomaly_type, v.rule, v.witness)
            for j, v in tick.verdicts.items()
        }
        for tick in ticks
    ]


def _verdict_history(result):
    return _history(result.ticks)


def test_supervision_overhead_under_3_percent_per_tick():
    # Paired measurement: two warm pools run the *same* stream in
    # lockstep, tick order alternating, so scheduler drift hits both
    # configurations alike and the median per-tick ratio isolates the
    # supervision machinery itself (a min-of-runs design drowns a sub-1%
    # effect in multi-percent run-to-run noise on a busy box).
    import statistics

    def build(deadline):
        generator = LoadGenerator(_profile())
        engine = CharacterizationEngine(
            EngineConfig(
                backend="process",
                workers=WORKERS,
                min_process_devices=2,
                dispatch_deadline=deadline,
            )
        )
        service = OnlineCharacterizationService(
            generator.initial_positions(),
            ServiceConfig(r=0.01, tau=3, reuse_motions=True),
            engine=engine,
        )
        return service, generator, engine

    plain, gen_plain, engine_plain = build(None)
    armed, gen_armed, engine_armed = build(5.0)
    ticks = 24
    plain_times, armed_times = [], []
    plain_ticks, armed_ticks = [], []
    with engine_plain, engine_armed:
        for _ in range(2):  # warm both pools and flagged sets
            plain.ingest_many(gen_plain.tick_updates())
            plain.end_tick()
            armed.ingest_many(gen_armed.tick_updates())
            armed.end_tick()
        for i in range(ticks):
            pairs = [
                (plain, gen_plain, plain_times, plain_ticks),
                (armed, gen_armed, armed_times, armed_ticks),
            ]
            if i % 2:
                pairs.reverse()
            for service, generator, times, history in pairs:
                service.ingest_many(generator.tick_updates())
                start = time.perf_counter()
                tick = service.end_tick()
                times.append(time.perf_counter() - start)
                history.append(tick)
    assert _history(armed_ticks) == _history(plain_ticks)
    ratio = statistics.median(
        a / p for a, p in zip(armed_times, plain_times)
    )
    overhead = ratio - 1.0
    assert overhead < 0.03, (
        f"supervision overhead {overhead:.1%} >= 3% per tick "
        f"(median armed/plain ratio over {ticks} paired ticks at n={N})"
    )
    _SUMMARY_ROWS.append(
        {
            "claim": "supervision_overhead",
            "n": N,
            "churn": CHURN,
            "ticks": ticks,
            "plain_seconds": sum(plain_times),
            "armed_seconds": sum(armed_times),
            "overhead_percent": 100.0 * overhead,
        }
    )


def test_checkpoint_write_and_restore_latency(tmp_path):
    generator = LoadGenerator(_profile())
    service = OnlineCharacterizationService(
        generator.initial_positions(),
        ServiceConfig(r=0.01, tau=3),
    )
    with service:
        drive_load(service, generator, 3)
        path = tmp_path / "bench.npz"
        write_seconds = min(
            _timed(lambda: save_checkpoint(service, path))
            for _ in range(3)
        )
        reference = _verdict_history(drive_load(service, generator, 1))
    restore_seconds, restored = min(
        (_timed_value(lambda: restore_service(path)) for _ in range(3)),
        key=lambda pair: pair[0],
    )
    with restored:
        generator2 = LoadGenerator(_profile())
        generator2.fast_forward(restored.current_tick)
        resumed = _verdict_history(drive_load(restored, generator2, 1))
    assert resumed == reference
    _SUMMARY_ROWS.append(
        {
            "claim": "checkpoint_latency",
            "n": N,
            "write_seconds": write_seconds,
            "restore_seconds": restore_seconds,
            "bytes": path.stat().st_size,
        }
    )


def _timed(fn):
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def _timed_value(fn):
    start = time.perf_counter()
    value = fn()
    return time.perf_counter() - start, value
