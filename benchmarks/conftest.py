"""Benchmark-suite configuration.

Every benchmark regenerates one paper artifact at reduced-but-honest
scale, wraps the regeneration in ``pytest-benchmark`` timing, and asserts
the published *shape* on the produced rows.  Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations



def pytest_configure(config):
    # Benchmarks are deterministic (seeded); one timing round is
    # representative and keeps the whole suite fast enough to gate CI.
    config.option.benchmark_min_rounds = 1
    config.option.benchmark_warmup = False
