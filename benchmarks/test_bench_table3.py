"""Benchmark regenerating Table III (per-set computational cost).

Paper values: 1.85 maximal motions (I_k), 1.17 dense motions (M_k via
Theorem 6), ~31k tested collections (U_k), ~2.45M total collections
(M_k via Theorem 7).  Our pruned search tests far fewer collections than
the paper's exhaustive scan, so the asserted reproduction target is the
*ordering*: cheap conditions cost units, the exact search costs orders
of magnitude more.
"""

from __future__ import annotations

from repro.experiments import table3


def test_bench_table3(benchmark):
    result = benchmark(
        table3.run,
        steps=3,
        seeds=(0, 1),
        errors_per_step=20,
        n=1000,
        collection_count_cap=100_000,
    )
    cells = {row["cost"]: row["measured"] for row in result.rows}
    cheap_isolated = cells["I_k: maximal motions"]
    cheap_massive = cells["M_k (Th6): maximal dense motions"]
    tested = cells["U_k: tested collections"]
    total = cells["M_k (Th7): all collections (capped)"]
    # Cheap conditions examine a handful of motions per device.
    assert 0.0 < cheap_isolated < 20.0
    assert 0.0 < cheap_massive < 20.0
    # The exact machinery examines collections — at least an order of
    # magnitude beyond the cheap paths whenever it runs at all.
    if tested:
        assert tested > cheap_massive
    if total:
        assert total >= tested
        assert total > 10.0 * cheap_massive
