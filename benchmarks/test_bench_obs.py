"""Observability overhead benchmark: tracing must cost < 2% per tick.

The asserted claim, at ``n = 10k`` with 1% per-tick churn: the
instrumentation PR 7 added to the tick pipeline (stage spans feeding
the registry histogram, per-tick drains, the post-sink merge) costs at
most 2% of a real tick.

The overhead is measured as a ratio of two independently tight numbers
rather than by differencing two end-to-end wall clocks.  A calibration
run against identical null arms showed whole-run differencing on shared
CI hardware carries ±2-3% scheduler/allocator noise — an order of
magnitude above the true effect — so a subtraction of two ~100ms runs
cannot resolve a sub-2% delta:

* the *numerator* replays one tick's worth of tracer work (the exact
  span sequence a serial tick emits, both per-tick drains and the
  post-sink merge) tens of thousands of times, enabled minus disabled —
  a microsecond-scale quantity with sub-percent jitter;
* the *denominator* is the per-tick floor of a real instrumented
  ``n = 10k`` run: the minimum wall clock per tick index across
  repeats (the same seed makes tick ``k`` identical work every repeat).

End-to-end runs of both arms still pin down verdict identity and the
presence/absence of per-tick breakdowns, so the measured tracer is the
one the real pipeline drives, not a synthetic stand-in.

Every run appends one row to a ``BENCH_obs.json`` summary written at
session end (path overridable via the ``BENCH_OBS_JSON`` env var); CI
uploads it as a workflow artifact.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.obs.trace import Tracer
from repro.online import (
    LoadGenerator,
    LoadProfile,
    MetricsSink,
    OnlineCharacterizationService,
    ServiceConfig,
)

#: (devices, churn, allowed overhead fraction).  The ISSUE gate is 2%
#: at n = 10k.
SCALES = [(10_000, 0.01, 0.02)]

TICKS = 12
REPEATS = 3

#: The span sequence one serial tick emits (drive_load's "ingest" plus
#: the five pipeline stages of ``end_tick``).
TICK_STAGES = (
    "ingest",
    "ingest-drain",
    "dirty-region",
    "transition-build",
    "verdict",
    "sinks",
)

_SUMMARY_ROWS: list = []


@pytest.fixture(scope="module", autouse=True)
def bench_summary_artifact():
    """Collect per-test rows; write the JSON summary after the module."""
    yield
    if not _SUMMARY_ROWS:
        return
    path = os.environ.get("BENCH_OBS_JSON", "BENCH_obs.json")
    with open(path, "w") as handle:
        json.dump({"benchmark": "obs", "rows": _SUMMARY_ROWS}, handle, indent=2)


def _run(n, churn, *, traced: bool):
    """One pass over an identical seeded stream, timing each tick."""
    generator = LoadGenerator(LoadProfile(devices=n, churn=churn, seed=7))
    service = OnlineCharacterizationService(
        generator.initial_positions(),
        ServiceConfig(r=0.015, tau=3),
        tracer=Tracer() if traced else Tracer(enabled=False),
    )
    service.add_sink(MetricsSink())
    tick_seconds = []
    ticks = []
    for _ in range(TICKS):
        updates = generator.tick_updates()
        start = time.perf_counter()
        service.ingest_many(updates)
        ticks.append(service.end_tick())
        tick_seconds.append(time.perf_counter() - start)
    service.close()
    verdict_map = {
        tick.tick: {j: v.anomaly_type for j, v in tick.verdicts.items()}
        for tick in ticks
    }
    return tick_seconds, ticks, verdict_map


def _tracer_tick_cost(tracer: Tracer, iterations: int = 20_000) -> float:
    """Seconds one tick's worth of tracer work costs, best of 5 batches.

    Replays exactly what the serial pipeline asks of the tracer each
    tick: one span per stage in ``TICK_STAGES``, the pre-sink drain,
    the sink-stage drain and the post-sink merge into the tick's
    breakdown dict.
    """
    best = float("inf")
    for _ in range(5):
        start = time.perf_counter()
        for _ in range(iterations // 5):
            for stage in TICK_STAGES[:-1]:
                with tracer.span(stage):
                    pass
            breakdown = tracer.drain_stages()
            with tracer.span(TICK_STAGES[-1]):
                pass
            for stage, seconds in tracer.drain_stages().items():
                breakdown[stage] = breakdown.get(stage, 0.0) + seconds
        elapsed = time.perf_counter() - start
        best = min(best, elapsed / (iterations // 5))
    return best


@pytest.mark.parametrize("n,churn,budget", SCALES)
def test_tracing_overhead_under_budget(n, churn, budget):
    floors = {True: [float("inf")] * TICKS, False: [float("inf")] * TICKS}
    verdicts = {}
    ticks = {}
    # One untimed pass per arm warms code paths and page cache — the
    # first run of a session is reliably the slowest.
    _run(n, churn, traced=True)
    _run(n, churn, traced=False)
    for _ in range(REPEATS):
        for traced in (True, False):
            tick_seconds, tick_rows, verdict_map = _run(n, churn, traced=traced)
            floors[traced] = [
                min(floor, sample)
                for floor, sample in zip(floors[traced], tick_seconds)
            ]
            verdicts[traced] = verdict_map
            ticks[traced] = tick_rows

    # The two arms must do identical characterization work.
    assert verdicts[True] == verdicts[False]
    # The traced arm produced per-tick breakdowns, the untraced none —
    # the instrumentation really was live in exactly one arm.
    assert all(t.stage_seconds for t in ticks[True])
    assert all(not t.stage_seconds for t in ticks[False])

    # Incremental cost of the enabled tracer per tick, measured tightly.
    enabled_cost = _tracer_tick_cost(Tracer())
    disabled_cost = _tracer_tick_cost(Tracer(enabled=False))
    tracer_cost = max(0.0, enabled_cost - disabled_cost)

    tick_floor = sum(floors[True]) / TICKS
    overhead = tracer_cost / tick_floor
    assert overhead <= budget, (
        f"tracing overhead {overhead:.2%} exceeds {budget:.0%} at n={n} "
        f"({tracer_cost * 1e6:.1f}us of tracer work per "
        f"{tick_floor * 1e3:.1f}ms tick)"
    )
    _SUMMARY_ROWS.append(
        {
            "claim": "tracing_overhead",
            "n": n,
            "churn": churn,
            "ticks": TICKS,
            "traced_seconds": sum(floors[True]),
            "untraced_seconds": sum(floors[False]),
            "tracer_cost_per_tick_seconds": tracer_cost,
            "tick_floor_seconds": tick_floor,
            "overhead_fraction": overhead,
            "budget_fraction": budget,
            # Merge tooling expects a speedup-shaped figure; here it is
            # the instrumented:null tick-cost ratio (>= 0.98 in budget).
            "speedup": 1.0 / (1.0 + overhead),
        }
    )


def test_summary_rows_schema():
    """Rows carry what the CI artifact consumers expect."""
    for row in _SUMMARY_ROWS:
        assert {
            "claim",
            "n",
            "churn",
            "overhead_fraction",
            "budget_fraction",
            "speedup",
        } <= set(row)
        assert row["overhead_fraction"] <= row["budget_fraction"]
