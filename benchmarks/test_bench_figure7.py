"""Benchmark regenerating Figure 7 (unresolved ratio vs A and G, R3 holds).

Published shape: zero unresolved at A = 1; ratio grows with A;
massive-heavy mixes (small G) sit highest.
"""

from __future__ import annotations

from repro.experiments import figure7


def test_bench_figure7(benchmark):
    result = benchmark(
        figure7.run,
        steps=2,
        seeds=(0, 1),
        a_values=(1, 20, 40, 60),
        g_values=(0.0, 0.5, 1.0),
        n=1000,
    )
    rows = {(row["G"], row["A"]): row["unresolved_ratio_percent"] for row in result.rows}
    # A single error never yields an unresolved configuration.
    for g in (0.0, 0.5, 1.0):
        assert rows[(g, 1)] == 0.0
    # Massive-heavy mixes produce more unresolved configurations than
    # all-isolated mixes at every A beyond 1.
    for a in (20, 40, 60):
        assert rows[(0.0, a)] >= rows[(1.0, a)]
    # The G = 0 curve is materially above zero past the origin.
    assert max(rows[(0.0, a)] for a in (20, 40, 60)) > 1.0
    # All-isolated with R3 enforced stays at (near) zero.
    assert max(rows[(1.0, a)] for a in (20, 40, 60)) < 5.0
