"""Detection-plane benchmarks: array banks beat the scalar loop.

The asserted claim: a vectorized
:class:`~repro.detection.banks.DetectorBank` consumes a multi-step QoS
stream ≥ 5x faster than the per-device scalar
:class:`~repro.detection.composite.DeviceMonitor` loop at
``n ∈ {1k, 10k}``, ``d ∈ {2, 3}``, while producing *identical* flag
sequences (the banks' bit-exact equivalence contract — the speed means
nothing if the flags drift).

Every run appends rows to a ``BENCH_detect.json`` summary written at
module teardown (path overridable via the ``BENCH_DETECT_JSON`` env
var); CI uploads it as a workflow artifact and ``tools/bench_merge.py``
folds it into ``BENCH_summary.json``.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np
import pytest

from repro.detection.banks import DetectorSpec
from repro.detection.composite import DeviceMonitor

#: (n, d) grid for the claim; steps shrink with n to keep the scalar
#: side's wall-clock tolerable in CI.
SCALES = [(1_000, 2), (1_000, 3), (10_000, 2), (10_000, 3)]

_SUMMARY_ROWS: list = []


@pytest.fixture(scope="module", autouse=True)
def bench_summary_artifact():
    """Collect per-test rows; write the JSON summary after the module."""
    yield
    if not _SUMMARY_ROWS:
        return
    path = os.environ.get("BENCH_DETECT_JSON", "BENCH_detect.json")
    with open(path, "w") as handle:
        json.dump({"benchmark": "detect", "rows": _SUMMARY_ROWS}, handle, indent=2)


def _qos_stream(n, d, steps, *, seed=0, anomaly_rate=0.01):
    """A drifting fleet stream with sprinkled jump anomalies."""
    rng = np.random.default_rng(seed)
    base = np.clip(rng.normal(0.85, 0.04, (n, d)), 0.0, 1.0)
    stream = np.empty((steps, n, d))
    for k in range(steps):
        base = np.clip(base + rng.normal(0.0, 0.004, (n, d)), 0.0, 1.0)
        snapshot = base.copy()
        jumpers = rng.random(n) < anomaly_rate
        if jumpers.any():
            snapshot[jumpers] = np.clip(
                snapshot[jumpers] - rng.uniform(0.2, 0.4, (int(jumpers.sum()), d)),
                0.0,
                1.0,
            )
        stream[k] = snapshot
    return stream


def _run_bank(spec, stream):
    steps, n, d = stream.shape
    bank = spec.bank(n, d)
    start = time.perf_counter()
    flags = [bank.observe_batch(stream[k]).flags for k in range(steps)]
    return time.perf_counter() - start, np.array(flags)


def _run_scalar_monitors(spec, stream):
    """The pre-refactor tick path: one DeviceMonitor.observe per device."""
    steps, n, d = stream.shape
    factory = spec.scalar_factory()
    monitors = [DeviceMonitor(factory, d) for _ in range(n)]
    flags = np.zeros((steps, n), dtype=bool)
    start = time.perf_counter()
    for k in range(steps):
        snapshot = stream[k]
        for j, monitor in enumerate(monitors):
            flags[k, j] = monitor.observe(snapshot[j]).abnormal
    return time.perf_counter() - start, flags


@pytest.mark.parametrize("n,d", SCALES)
def test_bank_beats_scalar_device_monitor_loop(n, d):
    steps = 20 if n <= 1_000 else 6
    stream = _qos_stream(n, d, steps, seed=n + d)
    spec = DetectorSpec("step", {"max_step": 0.12})
    bank_time, bank_flags = _run_bank(spec, stream)
    scalar_time, scalar_flags = _run_scalar_monitors(spec, stream)

    # Flag identity first: the vectorized plane must not drift.
    assert np.array_equal(bank_flags, scalar_flags)

    # The acceptance assertion: ≥ 5x on the detection tick path
    # (measured ~50-100x; the margin absorbs noisy CI boxes).
    assert bank_time * 5 < scalar_time, (
        f"bank {bank_time * 1e3:.1f}ms not 5x faster than scalar "
        f"{scalar_time * 1e3:.1f}ms at n={n}, d={d}"
    )
    _SUMMARY_ROWS.append(
        {
            "claim": "observe_batch",
            "n": n,
            "d": d,
            "steps": steps,
            "bank_seconds": bank_time,
            "scalar_seconds": scalar_time,
            "speedup": scalar_time / bank_time,
        }
    )


def test_all_families_flag_identical_at_scale():
    """Every family's bank matches its scalar loop on a 1k-device stream."""
    n, d, steps = 1_000, 2, 12
    stream = _qos_stream(n, d, steps, seed=7)
    specs = {
        "step": DetectorSpec("step", {"max_step": 0.1}),
        "band": DetectorSpec("band", {"low": 0.5}),
        "ewma": DetectorSpec("ewma", {"alpha": 0.3, "nsigma": 4.0, "warmup": 4}),
        "shewhart": DetectorSpec("shewhart", {"window": 6, "nsigma": 4.0, "warmup": 3}),
        "cusum": DetectorSpec("cusum", {"threshold": 0.2, "drift": 0.01, "warmup": 4}),
        "holt-winters": DetectorSpec("holt-winters", {"band": 5.0, "warmup": 4}),
        "kalman": DetectorSpec("kalman", {"nsigma": 5.0, "warmup": 3}),
    }
    for family, spec in specs.items():
        bank_time, bank_flags = _run_bank(spec, stream)
        ref = spec.bank(n, d, plane="scalar")
        ref_flags = np.array(
            [ref.observe_batch(stream[k]).flags for k in range(steps)]
        )
        assert np.array_equal(bank_flags, ref_flags), family
