#!/usr/bin/env python
"""Sharded serving walkthrough: spatial scale-out with halo exchange.

Everything the sharded-topology PR adds, in one script:

1. partition a synthetic population across four spatial shards behind
   one :class:`ShardedService` front door — each shard owns a
   contiguous box of grid cells, its own store partition, dirty-region
   tracker and engine;
2. pump :class:`LoadGenerator` traffic through it: events fan out to
   their owning shards, movers migrate between shards mid-stream, and
   each tick the shards exchange a halo band of boundary rows over
   shared memory before characterizing in parallel;
3. snapshot the per-shard metrics plane
   (``repro_shard_devices{shard=...}``, per-shard stage latencies)
   plus the merged tick stage breakdown;
4. drive the *same* stream through one big single service: the merged
   verdict totals are identical — sharding is invisible in the output.

Run:  python examples/sharded_serve.py
      python examples/sharded_serve.py --devices 5000 --ticks 20
"""

import argparse

from repro.online import (
    LoadGenerator,
    LoadProfile,
    MetricsSink,
    OnlineCharacterizationService,
    ServiceConfig,
    ShardedService,
    drive_load,
)


def _profile(args):
    return LoadProfile(
        devices=args.devices,
        services=2,
        churn=0.05,
        flag_rate=0.2,
        seed=args.seed,
    )


def _verdict_totals(ticks):
    totals = {}
    for tick in ticks:
        for verdict in tick.verdicts.values():
            name = verdict.anomaly_type.name.lower()
            totals[name] = totals.get(name, 0) + 1
    return totals


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--devices", type=int, default=1000)
    parser.add_argument("--ticks", type=int, default=12)
    parser.add_argument("--topology-shards", type=int, default=4)
    parser.add_argument(
        "--topology-workers", choices=("thread", "process"), default="thread"
    )
    parser.add_argument("--seed", type=int, default=17)
    args = parser.parse_args()
    cfg = ServiceConfig(r=0.03, tau=2)

    # Leg 1: the sharded run.
    generator = LoadGenerator(_profile(args))
    metrics = MetricsSink()
    with ShardedService(
        generator.initial_positions(),
        cfg,
        topology_shards=args.topology_shards,
        topology_workers=args.topology_workers,
        parallel=True,
        sinks=(metrics,),
    ) as service:
        topology = service.topology
        print(
            f"topology      : {service.n_shards} shards "
            f"({args.topology_workers} workers), grid "
            f"{topology.grid}, halo band {topology.halo_rings} cells"
        )
        print(f"  initial shard sizes: {service.shard_sizes()}")
        result = drive_load(service, generator, args.ticks)
        sharded_ticks = result.ticks

        print(
            f"\nsharded run   : {args.ticks} ticks, "
            f"{result.elapsed_seconds * 1e3:.1f} ms total"
        )
        print(f"  final shard sizes  : {service.shard_sizes()}")
        registry = service.tracer.registry
        for shard in range(service.n_shards):
            devices = registry.gauge(
                "repro_shard_devices", labelnames=("shard",)
            ).labels(shard=str(shard)).value
            flagged = registry.gauge(
                "repro_shard_flagged_devices", labelnames=("shard",)
            ).labels(shard=str(shard)).value
            print(
                f"  shard {shard}: devices={int(devices)} "
                f"flagged={int(flagged)}"
            )
        stage_totals = {}
        for tick in sharded_ticks:
            for stage, seconds in tick.stage_seconds.items():
                stage_totals[stage] = stage_totals.get(stage, 0.0) + seconds
        breakdown = ", ".join(
            f"{stage}={seconds * 1e3:.1f}ms"
            for stage, seconds in sorted(stage_totals.items())
        )
        print(f"  stage totals: {breakdown}")
    sharded_totals = _verdict_totals(sharded_ticks)
    print(f"  verdict totals: {sharded_totals}")

    # Leg 2: one big service fed the identical stream.
    generator = LoadGenerator(_profile(args))
    with OnlineCharacterizationService(
        generator.initial_positions(), cfg
    ) as single:
        reference = drive_load(single, generator, args.ticks).ticks
    single_totals = _verdict_totals(reference)
    print(f"\nsingle service: verdict totals: {single_totals}")

    match = sharded_totals == single_totals
    print(f"\nverdict totals identical to the single service: {match}")
    if not match:
        raise SystemExit(1)


if __name__ == "__main__":
    main()
