#!/usr/bin/env python
"""Quickstart for the online characterization service, end to end.

Part 1 — replay: the same two-day, 120-gateway trace as
``trace_replay.py`` (diurnal cycles, one massive outage, one flaky
gateway), but driven through the *online* pipeline: detectors turn
consecutive snapshots into report-on-change events, the service applies
them to its sharded store, invalidates only the verdicts whose ``4r``
neighbourhoods the events touched, and serves the rest from cache —
while staying verdict-identical to batch recharacterization.

Part 2 — load: a synthetic scenario stream (1% churn, coordinated
bursts) pumped through the service, the shape of a scale run
(``python -m repro.cli serve`` is the CLI twin of this loop).

Run:  python examples/online_replay.py
"""

import tracemalloc

import numpy as np

from repro.core.types import AnomalyType
from repro.detection import StepThresholdDetector
from repro.io import Incident, TraceConfig, generate_trace
from repro.online import (
    LoadGenerator,
    LoadProfile,
    MetricsSink,
    OnlineCharacterizationService,
    ReportSink,
    ServiceConfig,
    drive_load,
    replay_trace_online,
)

N_DEVICES = 120


def replay_part() -> None:
    config = TraceConfig(
        devices=N_DEVICES,
        services=2,
        steps=48,
        diurnal_period=24,
        diurnal_amplitude=0.05,
        noise_sigma=0.003,
        seed=12,
    )
    incidents = [
        Incident(start=18, duration=3, devices=tuple(range(40, 50)), service=0, drop=0.35),
        Incident(start=30, duration=4, devices=(7,), service=1, drop=0.5),
    ]
    trace = generate_trace(config, incidents)

    # Sinks observe every finished tick live: here, operator-style
    # reports for massive events only (the OTT policy as a sink).
    reports = ReportSink(kinds=(AnomalyType.MASSIVE,))
    metrics = MetricsSink()
    service = OnlineCharacterizationService(
        trace[0].qos,
        ServiceConfig(r=0.03, tau=3, shards=8),
        sinks=(reports, metrics),
    )
    result = replay_trace_online(
        trace, lambda: StepThresholdDetector(max_step=0.12), service=service
    )

    print(f"replayed {len(result.ticks)} intervals, "
          f"{result.total_updates} events")
    print(f"verdicts recomputed: {result.total_recomputed}, "
          f"served from cache: {result.total_reused}")
    outage_tick = result.ticks[17]  # trace step 18
    assert sorted(outage_tick.flagged) == list(range(40, 50))
    assert all(v.is_massive for v in outage_tick.verdicts.values())
    flaky_tick = result.ticks[29]   # trace step 30
    assert list(flaky_tick.flagged) == [7]
    assert flaky_tick.verdicts[7].is_isolated
    massive_reports = {device for _, device, _ in reports.rows}
    assert set(range(40, 50)) <= massive_reports and 7 not in massive_reports
    print("online replay OK: outage certified massive, flaky gateway "
          "isolated,\nreports filtered by sink — identical to the batch "
          "replay, at a fraction of the work.\n")


def load_part() -> None:
    profile = LoadProfile(
        devices=2_000,
        churn=0.01,          # 1% of the fleet reports per tick
        flag_rate=0.1,
        burst_every=5,       # a coordinated 8-device jump every 5 ticks
        burst_size=8,
        seed=3,
    )
    generator = LoadGenerator(profile)
    service = OnlineCharacterizationService(
        generator.initial_positions(),
        ServiceConfig(r=0.02, tau=3, shards=16, max_batch=512),
    )
    result = drive_load(service, generator, ticks=20)
    stats = service.stats
    throughput = result.total_updates / max(result.elapsed_seconds, 1e-9)
    print(f"scenario run: {stats.ticks} ticks, {stats.updates_applied} events, "
          f"{throughput:,.0f} events/s")
    print(f"recomputed {stats.verdicts_recomputed} verdicts, reused "
          f"{stats.verdicts_reused}, index reuses {stats.index_reuses}")
    assert stats.verdicts_recomputed > 0

    # The columnar store's memory story: a device is a row across a few
    # flat columns, not a Python object graph.
    store = service.store
    print(f"store memory: {store.nbytes:,} bytes total, "
          f"{store.bytes_per_device:.0f} bytes/device "
          f"(n={store.n}, d={store.dim})")

    # And its allocation story: one steady non-verdict tick allocates a
    # handful of numpy temporaries — no per-device object plane.
    flags = np.zeros(store.n, dtype=bool)
    positions = store.current_positions(copy=True)
    service.feed_snapshot(positions, flags)  # settle: clear leftover flags
    movers = np.random.default_rng(0).choice(store.n, size=20, replace=False)
    positions[movers] = np.clip(positions[movers] + 0.005, 0.0, 1.0)
    tracemalloc.start()
    service.feed_snapshot(positions, flags)
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    print(f"steady tick allocation peak: {peak:,} bytes "
          f"({peak / store.n:.1f} bytes/device)")
    print("load generator OK — scale this with "
          "`python -m repro.cli serve --devices 1000000`.")


def main() -> None:
    replay_part()
    load_part()


if __name__ == "__main__":
    main()
