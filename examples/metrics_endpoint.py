#!/usr/bin/env python
"""Live metrics endpoint walkthrough: drive load, scrape, read quantiles.

Everything PR 7's observability plane exposes, in one script:

1. build an instrumented :class:`OnlineCharacterizationService` (stage
   spans on, :class:`MetricsSink` verdict counters attached);
2. start a :class:`MetricsServer` on an ephemeral port — the same
   stdlib HTTP endpoint ``python -m repro.cli serve --metrics-port``
   wires up — serving ``/metrics`` (Prometheus text), ``/metrics.json``
   and ``/healthz``;
3. pump a synthetic churn stream through the service while the endpoint
   is live, then scrape it over HTTP like Prometheus would;
4. derive per-stage p50/p95 latencies from the scraped histogram — the
   same interpolation ``histogram_quantile`` performs server-side.

Run:  python examples/metrics_endpoint.py
      python examples/metrics_endpoint.py --format json
"""

import argparse
import json

from repro.obs import MetricsServer, fetch_metrics, get_registry, get_tracer
from repro.online import (
    LoadGenerator,
    LoadProfile,
    MetricsSink,
    OnlineCharacterizationService,
    ServiceConfig,
    drive_load,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--devices", type=int, default=2000)
    parser.add_argument("--ticks", type=int, default=20)
    parser.add_argument("--churn", type=float, default=0.02)
    parser.add_argument(
        "--format",
        choices=("prometheus", "json"),
        default="prometheus",
        help="exposition format to print after the run",
    )
    args = parser.parse_args()

    generator = LoadGenerator(
        LoadProfile(devices=args.devices, churn=args.churn, seed=11)
    )
    service = OnlineCharacterizationService(
        generator.initial_positions(),
        ServiceConfig(r=0.03, tau=2),
        tracer=get_tracer(),
    )
    service.add_sink(MetricsSink())

    # Ephemeral port (0): no clash with anything else on the machine.
    with MetricsServer(get_registry()) as server:
        print(f"serving {server.url}/metrics while the load runs...\n")
        result = drive_load(service, generator, args.ticks)

        # Scrape over HTTP exactly like a Prometheus agent would.
        scraped = fetch_metrics(server.url, format=args.format)

    service.close()

    throughput = args.ticks / result.elapsed_seconds
    print(
        f"drove {args.ticks} ticks over {args.devices} devices "
        f"({throughput:.0f} ticks/s); run-level stage totals:"
    )
    for stage, seconds in sorted(result.stage_seconds.items()):
        print(f"  {stage:>18}: {seconds * 1e3:8.2f} ms")

    # Per-stage latency quantiles, interpolated from the *scraped*
    # histogram snapshot (not the in-process objects) — proof the
    # export plane carries enough to reconstruct them downstream.
    payload = json.loads(
        scraped
        if args.format == "json"
        else fetch_local_json()
    )
    stage_hist = payload.get("repro_stage_seconds", {})
    print("\nper-span latency quantiles (from the scrape):")
    for sample in stage_hist.get("samples", ()):
        quantiles = sample.get("quantiles", {})
        if not quantiles:
            continue
        stage = sample["labels"].get("stage", "?")
        print(
            f"  {stage:>18}: p50 {quantiles['p50'] * 1e6:7.1f} us   "
            f"p95 {quantiles['p95'] * 1e6:7.1f} us   "
            f"(count {sample['count']})"
        )

    print(f"\nscraped /{'metrics.json' if args.format == 'json' else 'metrics'}:")
    print(scraped)


def fetch_local_json() -> str:
    """Render the local registry as JSON (quantile source when the
    scrape itself was Prometheus text)."""
    from repro.obs import render_json

    return render_json(get_registry())


if __name__ == "__main__":
    main()
