#!/usr/bin/env python
"""Fault-tolerant serving walkthrough: chaos, checkpoints, resume.

Everything the fault-tolerance PR adds, in one script:

1. run an online stream over the supervised worker pool while a
   :class:`FaultPlan` kills workers and drops replies at probability
   0.2 per dispatch — the dispatch deadline catches every silent
   worker, respawns it and retries, so the stream never stalls;
2. checkpoint every tick through :class:`CheckpointWriter` (atomic
   write-then-rename, newest few kept);
3. "crash" mid-stream, then :func:`restore_service` from the newest
   checkpoint into a fresh service, fast-forward the load generator
   and finish the run;
4. compare against an uninterrupted fault-free serial run: the verdict
   totals are identical — faults and restores are invisible in the
   output stream.

Run:  python examples/fault_tolerant_serve.py
      python examples/fault_tolerant_serve.py --devices 2000 --ticks 24
"""

import argparse
import tempfile
from pathlib import Path

from repro.engine import CharacterizationEngine, EngineConfig
from repro.online import (
    CheckpointWriter,
    LoadGenerator,
    LoadProfile,
    MetricsSink,
    OnlineCharacterizationService,
    ServiceConfig,
    drive_load,
    latest_checkpoint,
    restore_service,
)
from repro.robust.chaos import FaultPlan, inject


def _profile(args):
    return LoadProfile(
        devices=args.devices,
        services=2,
        churn=0.05,
        flag_rate=0.2,
        seed=args.seed,
    )


def _verdict_totals(ticks):
    totals = {}
    for tick in ticks:
        for verdict in tick.verdicts.values():
            name = verdict.anomaly_type.name.lower()
            totals[name] = totals.get(name, 0) + 1
    return totals


def _pool_engine(args):
    return CharacterizationEngine(
        EngineConfig(
            backend="process",
            workers=args.workers,
            min_process_devices=1,
            dispatch_deadline=2.0,
            retry_backoff=0.01,
            serial_fallback_after=1_000,  # stay on the pool path
        )
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--devices", type=int, default=500)
    parser.add_argument("--ticks", type=int, default=12)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument(
        "--crash-after", type=int, default=None,
        help="tick after which the first run 'crashes' (default: half)",
    )
    args = parser.parse_args()
    crash_after = args.crash_after or args.ticks // 2

    # Reference: fault-free, serial, uninterrupted.
    generator = LoadGenerator(_profile(args))
    with OnlineCharacterizationService(
        generator.initial_positions(), ServiceConfig(r=0.05, tau=2)
    ) as service:
        reference = drive_load(service, generator, args.ticks).ticks
    print(f"reference run : {args.ticks} ticks, serial, no faults")
    print(f"  verdict totals: {_verdict_totals(reference)}")

    with tempfile.TemporaryDirectory(prefix="repro-ckpt-") as ckpt_dir:
        # Leg 1: pooled, under fire, checkpointing every tick — then
        # the process "dies" (we simply abandon the service).
        plan = FaultPlan(
            seed=args.seed, kill_probability=0.1, drop_probability=0.1
        )
        generator = LoadGenerator(_profile(args))
        engine = _pool_engine(args)
        service = OnlineCharacterizationService(
            generator.initial_positions(),
            ServiceConfig(r=0.05, tau=2),
            engine=engine,
        )
        metrics = MetricsSink()
        service.add_sink(metrics)
        service.add_sink(CheckpointWriter(service, ckpt_dir, keep=3))
        with engine:
            with inject(plan) as injector:
                head = drive_load(service, generator, crash_after).ticks
        print(
            f"\nleg 1 (chaos) : {crash_after} ticks on {args.workers} "
            f"pooled workers, faults injected: {dict(injector.injected)}"
        )
        print(f"  pool health at 'crash': {engine.backend.health}")

        # Leg 2: a fresh service restores the newest checkpoint,
        # fast-forwards the generator and finishes the stream.
        newest = latest_checkpoint(ckpt_dir)
        restored = restore_service(newest)
        generator = LoadGenerator(_profile(args))
        generator.fast_forward(restored.current_tick)
        with restored:
            tail = drive_load(
                restored, generator, args.ticks - restored.current_tick
            ).ticks
        print(
            f"leg 2 (resume): restored {Path(newest).name} at tick "
            f"{crash_after}, ran {len(tail)} more ticks"
        )

    resumed_totals = _verdict_totals(list(head) + list(tail))
    print(f"  verdict totals: {resumed_totals}")
    match = resumed_totals == _verdict_totals(reference)
    print(f"\nverdict totals identical to the reference: {match}")
    if not match:
        raise SystemExit(1)


if __name__ == "__main__":
    main()
