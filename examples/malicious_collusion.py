#!/usr/bin/env python
"""Collusion attack & defense: the paper's Section VIII future work, built.

Scenario: a home gateway (the victim) suffers a genuine local fault.
Under the ISP policy it would report itself to the operator.  A coalition
of compromised devices forges trajectories shadowing the victim's, so the
victim concludes "massive anomaly — the network's problem, not mine" and
stays silent: the defect is suppressed.

The f-tolerant characterizer hardens the density test to ``tau + f`` and
turns the forged consensus into an explicit SUSPECT verdict instead.

Run:  python examples/malicious_collusion.py
"""

import numpy as np

from repro.core import Characterizer, Transition
from repro.core.types import AnomalyType
from repro.robust import MimicryAttack, RobustCharacterizer, RobustLabel

R, TAU, F = 0.03, 3, 3


def main() -> None:
    rng = np.random.default_rng(21)
    # Healthy fleet; device 0 suffers its own fault.
    prev = np.clip(rng.normal(0.85, 0.03, (60, 2)), 0, 1)
    cur = prev.copy()
    cur[0] = [0.25, 0.4]
    honest = Transition.from_arrays(prev, cur, [0], r=R, tau=TAU)

    verdict = Characterizer(honest).characterize(0)
    print("without attackers:")
    print(f"  victim verdict: {verdict.anomaly_type}  (reports itself to the ISP)")
    assert verdict.anomaly_type is AnomalyType.ISOLATED

    print(f"\nmounting mimicry attack: {F} colluders shadow the victim's trajectory")
    outcome = MimicryAttack(forged_count=F, seed=5).mount(honest, victim=0)
    naive = Characterizer(outcome.transition).characterize(0)
    print("naive characterizer on the attacked neighbourhood:")
    print(f"  victim verdict: {naive.anomaly_type}  <-- report suppressed!")
    assert naive.anomaly_type is AnomalyType.MASSIVE

    robust = RobustCharacterizer(outcome.transition, f=F)
    defended = robust.characterize(0)
    print(f"\nf-tolerant characterizer (f = {F}):")
    print(f"  victim verdict: {defended.label}")
    assert defended.label is not RobustLabel.MASSIVE
    print(
        "  the forged consensus cannot clear the hardened tau + f bar: the\n"
        "  device is flagged SUSPECT and the operator investigates."
    )

    # The price of tolerance: a genuine event must now be larger to be
    # certified. Show the boundary explicitly.
    print("\ncertification boundary under f =", F)
    for size in (TAU + 1, TAU + F, TAU + F + 1):
        prev2 = np.clip(rng.normal(0.8, 0.004, (size + 20, 2)), 0, 1)
        cur2 = prev2.copy()
        cur2[:size] = np.clip(cur2[:size] - [0.35, 0.2], 0, 1)
        t2 = Transition.from_arrays(prev2, cur2, range(size), r=R, tau=TAU)
        label = RobustCharacterizer(t2, f=F).characterize(0).label
        print(f"  co-moving group of {size:>2} devices -> {label}")
    print(
        "\ngroups beyond tau + f are certified MASSIVE even under attack;\n"
        "smaller ones stay SUSPECT — the completeness price of tolerance."
    )


if __name__ == "__main__":
    main()
