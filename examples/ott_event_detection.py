#!/usr/bin/env python
"""OTT scenario: detect network-level events from the edge.

The paper's second deployment: an over-the-top operator (streaming
service) rides on ISPs it does not control.  Its player instances run the
OTT reporting policy — notify **only massive** anomalies — so the
operator learns about network-level incidents within one monitoring tick,
while per-household glitches (which would otherwise dominate its alert
stream) stay local.

The script also shows detector choice mattering: players use a CUSUM
detector, which catches a *gradual* network degradation that a naive
step-threshold detector misses.

Run:  python examples/ott_event_detection.py
"""

from repro.detection import DetectorSpec
from repro.network import (
    GatewayFault,
    IspTopology,
    NetworkFault,
    NetworkMonitor,
    ReportingPolicy,
    TopologyConfig,
)


def main() -> None:
    topology = IspTopology(
        TopologyConfig(
            cores=3,
            aggregations_per_core=2,
            access_per_aggregation=3,
            gateways_per_access=15,
        )
    )
    monitor = NetworkMonitor(
        topology,
        policy=ReportingPolicy.OTT,
        detector_spec=DetectorSpec(
            "cusum", {"threshold": 0.08, "drift": 0.004, "warmup": 4}
        ),
        noise_sigma=0.001,
        seed=11,
    )
    print(f"OTT monitoring {topology.n_gateways} player endpoints (CUSUM detectors)")

    # Warm up the detectors on nominal traffic.
    for result in monitor.run(6):
        assert not result.reports

    # A household-level problem: should NOT reach the OTT operator.
    monitor.injector.inject(GatewayFault(device_id=42, severity=0.5, duration=2))
    result = monitor.tick()
    print(
        f"tick {result.tick}: household fault -> {len(result.flagged)} flagged, "
        f"{len(result.reports)} OTT alerts (expected 0)"
    )
    assert result.reports == []
    monitor.tick()  # let it expire

    # A *gradual* aggregation-router degradation: 12% loss ramping in.
    # CUSUM accumulates the small persistent shift and raises within a
    # few ticks; the co-moving neighbourhood then certifies "massive".
    monitor.tick()  # recovery transition of the household fault
    monitor.injector.inject(NetworkFault("agg-0-0", severity=0.12, duration=6))
    alerts = []
    for _ in range(5):
        result = monitor.tick()
        alerts.extend(result.reports)
        if result.reports:
            print(
                f"tick {result.tick}: NETWORK EVENT detected — "
                f"{len(result.reports)} endpoints report massive anomaly"
            )
            break
        print(f"tick {result.tick}: CUSUM still accumulating evidence ...")
    assert alerts, "the gradual network event must be detected"
    impacted_footprint = {
        topology.graph.nodes[g]["device_id"]
        for g in topology.gateways_behind("agg-0-0")
    }
    reporters = {report.device_id for report in alerts}
    assert reporters <= impacted_footprint
    print(
        f"footprint check OK: all {len(reporters)} reporters sit behind agg-0-0 "
        f"(footprint {len(impacted_footprint)} endpoints)"
    )
    print("OTT scenario OK: network event surfaced, household noise suppressed.")


if __name__ == "__main__":
    main()
