#!/usr/bin/env python
"""ISP scenario: gateways self-diagnose so only real defects reach support.

The paper's motivating deployment: an ISP operates ~1000 home gateways.
Under the ISP reporting policy a gateway notifies the operator **only**
when its QoS degradation is isolated (its own hardware/software); when a
router fault degrades a whole neighbourhood, every impacted gateway
recognizes the event as massive and stays silent — no call-center flood.

The script runs a 960-gateway ISP topology through four phases:
nominal operation, a DSLAM (access node) outage, a single faulty gateway,
and a core-router degradation, printing what the operator receives.

Run:  python examples/isp_gateway_monitoring.py
"""

from repro.network import (
    GatewayFault,
    IspTopology,
    NetworkFault,
    NetworkMonitor,
    ReportingPolicy,
)


def banner(text: str) -> None:
    print()
    print("=" * 64)
    print(text)
    print("=" * 64)


def describe(result) -> None:
    print(
        f"tick {result.tick}: {len(result.flagged)} gateways flagged, "
        f"{len(result.reports)} report(s) sent to the operator"
    )
    for report in result.reports:
        print(
            f"  -> support ticket from device {report.device_id} "
            f"({report.gateway}): {report.anomaly_type} anomaly"
        )


def main() -> None:
    topology = IspTopology()  # 4 cores x 3 agg x 4 access x 20 gateways
    monitor = NetworkMonitor(topology, policy=ReportingPolicy.ISP, seed=3)
    print(f"monitoring {topology.n_gateways} gateways, policy = ISP")

    banner("Phase 1 — nominal operation (3 ticks)")
    for result in monitor.run(3):
        describe(result)

    banner("Phase 2 — DSLAM outage: acc-0-0-0 drops to 55% health")
    monitor.injector.inject(NetworkFault("acc-0-0-0", severity=0.45, duration=2))
    result = monitor.tick()
    describe(result)
    massive = sum(1 for v in result.verdicts.values() if v.is_massive)
    print(f"  ({massive} gateways self-classified MASSIVE and stayed silent)")
    assert result.reports == [], "a network event must not reach support"
    monitor.tick()  # outage continues; recovery transition comes next tick

    banner("Phase 3 — recovery plus one genuinely broken gateway (id 500)")
    monitor.injector.inject(GatewayFault(device_id=500, severity=0.6, duration=2))
    result = monitor.tick()
    describe(result)
    assert [r.device_id for r in result.reports] == [500]
    monitor.tick()
    result = monitor.tick()  # gateway 500 recovers: also an isolated event
    describe(result)
    assert [r.device_id for r in result.reports] == [500]
    print("  (the recovery jump is itself an isolated anomaly — one more ticket)")
    monitor.tick()  # settle

    banner("Phase 4 — core router degradation: core-1 at 70% health")
    monitor.injector.inject(NetworkFault("core-1", severity=0.3, duration=1))
    result = monitor.tick()
    describe(result)
    print(
        f"  (core fault hit {len(result.flagged)} gateways; "
        f"{len(result.reports)} tickets raised)"
    )
    assert result.reports == []

    print()
    print("ISP scenario OK: the only support tickets across every phase came")
    print("from the one gateway whose own equipment was at fault (its failure")
    print("and its recovery); both network events stayed off the call center.")


if __name__ == "__main__":
    main()
