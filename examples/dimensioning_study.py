#!/usr/bin/env python
"""Dimensioning study: choose (r, tau) for your fleet like Section VII-A.

Given a fleet size ``n`` and a per-device isolated-error rate ``b``, the
paper tunes the consistency radius ``r`` and density threshold ``tau``
so that the probability of more than ``tau`` independent isolated errors
striking one neighbourhood is negligible — otherwise isolated errors
masquerade as massive ones.

The script reproduces both Figure 6 analyses for a configurable fleet
and prints the recommended operating points.

Run:  python examples/dimensioning_study.py [n] [b]
"""

import sys

from repro.analysis import (
    expected_vicinity_size,
    isolated_overflow_probability,
    recommend_parameters,
    vicinity_size_cdf,
)


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 1000
    b = float(sys.argv[2]) if len(sys.argv) > 2 else 0.005
    print(f"fleet size n = {n}, isolated error rate b = {b}\n")

    print("Vicinity sizes (Figure 6a): how many neighbours must a device track?")
    print(f"{'r':>7} {'E[N_r]':>8} {'P{N_r <= 2 E[N_r]}':>20}")
    for r in (0.02, 0.03, 0.05, 0.1):
        expected = expected_vicinity_size(n, r)
        bound = int(2 * expected) + 1
        prob = float(vicinity_size_cdf(n, r, [bound])[0])
        print(f"{r:>7} {expected:>8.1f} {prob:>20.5f}")
    print()

    print("Overflow risk (Figure 6b): P{more than tau isolated errors collide}")
    print(f"{'tau':>4} " + " ".join(f"{r:>10}" for r in (0.02, 0.03, 0.05)))
    for tau in (2, 3, 4, 5):
        row = " ".join(
            f"{isolated_overflow_probability(n, r, tau, b):>10.2e}"
            for r in (0.02, 0.03, 0.05)
        )
        print(f"{tau:>4} {row}")
    print()

    print("Recommended operating points (overflow < 1e-3, smallest vicinity):")
    points = recommend_parameters(n, b, epsilon=1e-3)
    for point in points[:5]:
        print(
            f"  r = {point.r:.3f}, tau = {point.tau}: "
            f"overflow = {point.overflow_probability:.2e}, "
            f"E[vicinity] = {point.expected_vicinity:.1f}"
        )
    paper_like = [p for p in points if abs(p.r - 0.03) < 1e-9 and p.tau == 3]
    if paper_like:
        print(
            "\nThe paper's choice (r = 0.03, tau = 3) is admissible for this "
            "fleet — same conclusion as Section VII-A."
        )


if __name__ == "__main__":
    main()
