#!/usr/bin/env python
"""Sweep every detector family over one incident-laden trace.

Generates a synthetic fleet trace with scheduled ground-truth incidents
(one massive gateway-cluster outage, one gradual degradation, one flaky
loner), runs each detector family's *vectorized bank* over it, and
scores the resulting flag streams with
:func:`repro.analysis.metrics.detection_accuracy`: device-step precision
and recall, incident recall, and mean detection latency — the numbers
that actually pick a detector for a deployment.

Also demonstrates the equivalence contract: for one family the scalar
reference plane is run side by side and its flags are asserted
identical to the bank's.

Run:  python examples/detector_comparison.py
"""

from __future__ import annotations

from repro.analysis.metrics import detection_accuracy
from repro.detection import DetectorSpec
from repro.io import Incident, TraceConfig, generate_trace, replay_trace

DEVICES = 150
STEPS = 60
WARMUP = 12  # steps excluded from device-step scoring (detector warm-up)

SPECS = {
    "step": DetectorSpec("step", {"max_step": 0.12}),
    "band": DetectorSpec("band", {"low": 0.55}),
    "ewma": DetectorSpec("ewma", {"alpha": 0.3, "nsigma": 5.0, "min_std": 5e-3}),
    "shewhart": DetectorSpec("shewhart", {"window": 12, "nsigma": 5.0, "min_std": 8e-3}),
    "cusum": DetectorSpec("cusum", {"threshold": 0.25, "drift": 0.02, "warmup": 10}),
    "holt-winters": DetectorSpec(
        "holt-winters", {"band": 6.0, "min_deviation": 8e-3, "warmup": 10}
    ),
    "kalman": DetectorSpec("kalman", {"nsigma": 7.0, "measurement_var": 5e-4}),
}


def main() -> None:
    config = TraceConfig(
        devices=DEVICES,
        services=2,
        steps=STEPS,
        diurnal_amplitude=0.04,
        noise_sigma=0.003,
        seed=23,
    )
    incidents = [
        # Massive: a 12-gateway cluster drops sharply for 4 steps.
        Incident(start=20, duration=4, devices=tuple(range(30, 42)), service=0, drop=0.3),
        # Isolated: one flaky gateway, deep drop.
        Incident(start=34, duration=3, devices=(7,), service=1, drop=0.45),
        # A second cluster event later in the trace.
        Incident(start=48, duration=4, devices=tuple(range(90, 100)), service=0, drop=0.25),
    ]
    trace = generate_trace(config, incidents)
    print(
        f"trace: {STEPS} steps x {DEVICES} devices, "
        f"{len(incidents)} scheduled incidents\n"
    )
    header = (
        f"{'family':<14} {'precision':>9} {'recall':>7} {'f1':>6} "
        f"{'incidents':>9} {'latency':>8}"
    )
    print(header)
    print("-" * len(header))
    for family, spec in sorted(SPECS.items()):
        results = replay_trace(trace, detector=spec)
        accuracy = detection_accuracy(
            [r.flagged for r in results], incidents, warmup_steps=WARMUP
        )
        print(
            f"{family:<14} {accuracy.precision:>9.3f} {accuracy.recall:>7.3f} "
            f"{accuracy.f1:>6.3f} "
            f"{accuracy.detected_incidents:>4}/{accuracy.total_incidents:<4} "
            f"{accuracy.mean_latency:>8.2f}"
        )

    # Equivalence spot check: the scalar reference plane flags the same.
    spec = SPECS["ewma"]
    bank_flags = [r.flagged for r in replay_trace(trace, detector=spec)]
    scalar_flags = [
        r.flagged for r in replay_trace(trace, detector=spec, detection="scalar")
    ]
    assert bank_flags == scalar_flags
    print(
        "\nequivalence: ewma bank flags == scalar reference flags on all "
        f"{STEPS} steps"
    )


if __name__ == "__main__":
    main()
