#!/usr/bin/env python
"""Replay a recorded QoS trace through the full monitoring stack.

Generates a two-day synthetic trace for a 120-gateway fleet — diurnal
congestion cycles, measurement noise, one massive incident (a 10-gateway
outage) and one isolated incident (a single flaky gateway) — serializes
it to the JSON-lines trace format, reads it back, and replays it through
step-threshold detectors plus the local characterizer.

This is the workflow for users with their *own* monitoring data: dump it
as a trace file, replay, and get per-interval isolated/massive verdicts.

Run:  python examples/trace_replay.py
"""

from collections import Counter

from repro.detection import DetectorSpec
from repro.io import (
    Incident,
    TraceConfig,
    generate_trace,
    read_trace,
    replay_trace,
    write_trace,
)

N_DEVICES = 120


def main() -> None:
    config = TraceConfig(
        devices=N_DEVICES,
        services=2,
        steps=48,            # two "days" at hourly snapshots
        diurnal_period=24,
        diurnal_amplitude=0.05,
        noise_sigma=0.003,
        seed=12,
    )
    incidents = [
        Incident(start=18, duration=3, devices=tuple(range(40, 50)), service=0, drop=0.35),
        Incident(start=30, duration=4, devices=(7,), service=1, drop=0.5),
    ]
    trace = generate_trace(config, incidents)

    # Round-trip through the on-disk format, as a real deployment would.
    serialized = write_trace(trace)
    print(f"trace: {len(trace)} steps x {N_DEVICES} devices, "
          f"{len(serialized) / 1024:.0f} KiB serialized")
    trace = read_trace(serialized)

    # Detection runs as one vectorized bank over the whole fleet; the
    # spec would build the scalar reference loop with plane="scalar".
    results = replay_trace(
        trace, detector=DetectorSpec("step", {"max_step": 0.12}), r=0.03, tau=3
    )

    print(f"\n{'step':>4} {'flagged':>8}  verdicts")
    interesting = 0
    for outcome in results:
        if not outcome.flagged:
            continue
        interesting += 1
        counts = Counter(str(v.anomaly_type) for v in outcome.verdicts.values())
        print(f"{outcome.step:>4} {len(outcome.flagged):>8}  {dict(counts)}")

    onset_massive = results[18]
    assert sorted(onset_massive.flagged) == list(range(40, 50))
    assert all(v.is_massive for v in onset_massive.verdicts.values())
    onset_isolated = results[30]
    assert onset_isolated.flagged == [7]
    assert onset_isolated.verdicts[7].is_isolated

    print(
        f"\nreplay OK: {interesting} anomalous intervals; the 10-gateway "
        "outage was certified massive\nat onset and recovery, the flaky "
        "gateway isolated — straight from a trace file."
    )


if __name__ == "__main__":
    main()
