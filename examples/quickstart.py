#!/usr/bin/env python
"""Quickstart: characterize anomalies in two snapshots of a fleet.

Builds a 200-device fleet watching two services, injects one network-wide
event (12 devices' QoS collapses together) and one local fault (a single
device drifts off on its own), and asks each impacted device to decide —
from its 4r neighbourhood only — whether its anomaly was massive or
isolated.

Characterization goes through :class:`repro.CharacterizationEngine`, the
recommended entry point: it batch-computes every flagged device's
neighbourhood in one vectorized pass and can fan the per-device work out
to a process pool (``EngineConfig(backend="process", workers=4)``) for
large fleets.  One engine instance is meant to be kept for a whole run —
it shares motion caches across devices and aggregates statistics across
transitions.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import CharacterizationEngine, EngineConfig, Transition

RNG = np.random.default_rng(7)
N_DEVICES = 200
R = 0.03   # consistency impact radius
TAU = 3    # more than TAU co-moving devices = massive


def main() -> None:
    # Snapshot at time k-1: healthy fleet, QoS clustered near (0.9, 0.9).
    previous = np.clip(RNG.normal(0.9, 0.02, size=(N_DEVICES, 2)), 0, 1)
    current = previous.copy()

    # A network event degrades 12 devices identically (restriction R2:
    # same error, same trajectory).
    network_victims = list(range(12))
    current[network_victims] -= [0.45, 0.30]

    # A local fault hits a single device in a different way.
    local_victim = 77
    current[local_victim] = [0.2, 0.85]

    current = np.clip(current, 0, 1)
    flagged = network_victims + [local_victim]

    transition = Transition.from_arrays(previous, current, flagged, r=R, tau=TAU)
    engine = CharacterizationEngine(EngineConfig(backend="serial"))
    verdicts = engine.characterize(transition)

    print(f"{'device':>6}  {'verdict':<10}  {'decided by':<12}")
    for device, verdict in sorted(verdicts.items()):
        print(
            f"{device:>6}  {str(verdict.anomaly_type):<10}  "
            f"{str(verdict.rule):<12}"
        )

    massive = [d for d, v in verdicts.items() if v.is_massive]
    isolated = [d for d, v in verdicts.items() if v.is_isolated]
    print()
    print(f"network-event devices (expected {sorted(network_victims)}): {sorted(massive)}")
    print(f"local-fault devices   (expected [{local_victim}]): {sorted(isolated)}")
    assert sorted(massive) == network_victims
    assert isolated == [local_victim]
    print("quickstart OK: verdicts match the injected ground truth")
    print(f"engine stats: {engine.stats.as_dict()}")


if __name__ == "__main__":
    main()
