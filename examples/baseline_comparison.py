#!/usr/bin/env python
"""Head-to-head: local characterization vs the related-work baselines.

Runs one simulated interval of the Section VII workload and classifies
every impacted device three ways:

* the paper's local characterization (Theorems 5–7);
* a FixMe-style fixed tessellation at several bucket sizes ([1]);
* a centralized k-means monitor at the management node ([15]).

Scores everything against the simulator's ground-truth ledger and prints
accuracy plus the centralized scheme's communication bill.

Run:  python examples/baseline_comparison.py
"""

from repro.baselines import CentralizedClusteringMonitor, TessellationDetector
from repro.core.characterize import Characterizer
from repro.core.types import AnomalyType
from repro.simulation import SimulationConfig, Simulator


def score(verdicts, truly_massive, flagged):
    """Return (correct, false_massive, false_isolated, abstained)."""
    correct = fm = fi = ab = 0
    for device in flagged:
        verdict = verdicts[device].anomaly_type
        really = device in truly_massive
        if verdict is AnomalyType.UNRESOLVED:
            ab += 1
        elif verdict is AnomalyType.MASSIVE:
            correct += really
            fm += not really
        else:
            correct += not really
            fi += really
    return correct, fm, fi, ab


def main() -> None:
    config = SimulationConfig(
        n=1000, errors_per_step=25, isolated_probability=0.3, seed=17
    )
    step = Simulator(config).step()
    transition = step.transition
    flagged = transition.flagged_sorted
    truly_massive = step.truth.truly_massive(config.tau)
    print(
        f"one interval: |A_k| = {len(flagged)}, "
        f"{len(truly_massive)} devices truly hit by massive errors\n"
    )

    header = f"{'method':<28} {'correct':>8} {'f-massive':>10} {'f-isolated':>11} {'abstained':>10}"
    print(header)
    print("-" * len(header))

    ours = Characterizer(transition).characterize_all()
    row = score(ours, truly_massive, flagged)
    print(f"{'local characterization':<28} {row[0]:>8} {row[1]:>10} {row[2]:>11} {row[3]:>10}")

    for factor in (1, 2, 4, 16):
        tess = TessellationDetector(transition, factor * config.r).classify_all()
        row = score(tess, truly_massive, flagged)
        print(
            f"{f'tessellation {factor}r buckets':<28} "
            f"{row[0]:>8} {row[1]:>10} {row[2]:>11} {row[3]:>10}"
        )

    central = CentralizedClusteringMonitor(transition, seed=0)
    row = score(central.classify_all(), truly_massive, flagged)
    print(f"{'centralized k-means':<28} {row[0]:>8} {row[1]:>10} {row[2]:>11} {row[3]:>10}")

    print()
    print(
        f"communication: centralized scheme uploaded "
        f"{central.messages_uploaded} trajectories this interval;"
    )
    print(
        "the local scheme uploaded 0 (devices decide in-place and report "
        "only what the policy asks for)."
    )


if __name__ == "__main__":
    main()
