#!/usr/bin/env python
"""Merge every ``BENCH_*.json`` summary into one ``BENCH_summary.json``.

Each benchmark module (``benchmarks/test_bench_online.py``,
``benchmarks/test_bench_verdict.py``, ...) writes a per-run summary of
the shape ``{"benchmark": <name>, "rows": [{"claim": ..., "speedup":
...}, ...]}``.  This tool collects them into a single artifact keyed by
benchmark and claim, with min/median/max speedups per claim, so the
perf trajectory across PRs is visible at a glance (CI uploads the
merged file; diffing two of them shows exactly which claim regressed).

Usage::

    python tools/bench_merge.py [--dir .] [--out BENCH_summary.json]

Exits non-zero when a summary file is unreadable; an empty directory
(no ``BENCH_*.json`` at all) produces an empty-but-valid summary so the
CI step never fails on partial benchmark runs.
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import statistics
import subprocess
import sys
from typing import Dict, List, Optional


def _git_revision(directory: str) -> Optional[str]:
    """Best-effort commit id, recorded so artifacts are comparable."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=directory,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    return out.stdout.strip() or None if out.returncode == 0 else None


def merge_summaries(directory: str) -> Dict[str, object]:
    """Read every ``BENCH_*.json`` under ``directory`` and merge them."""
    pattern = os.path.join(directory, "BENCH_*.json")
    merged: Dict[str, Dict[str, Dict[str, object]]] = {}
    sources: List[str] = []
    for path in sorted(glob.glob(pattern)):
        name = os.path.basename(path)
        if name == "BENCH_summary.json":
            continue  # never merge a previous merge
        with open(path) as handle:
            payload = json.load(handle)
        benchmark = str(payload.get("benchmark") or name)
        rows = payload.get("rows") or []
        if not isinstance(rows, list):
            raise ValueError(f"{path}: 'rows' must be a list")
        sources.append(name)
        claims = merged.setdefault(benchmark, {})
        for row in rows:
            claim = str(row.get("claim", "unlabelled"))
            entry = claims.setdefault(claim, {"rows": []})
            entry["rows"].append(row)
    for claims in merged.values():
        for entry in claims.values():
            speedups = [
                float(row["speedup"])
                for row in entry["rows"]
                if isinstance(row.get("speedup"), (int, float))
            ]
            if speedups:
                entry["min_speedup"] = min(speedups)
                entry["median_speedup"] = statistics.median(speedups)
                entry["max_speedup"] = max(speedups)
    return {
        "revision": _git_revision(directory),
        "sources": sources,
        "benchmarks": merged,
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Merge BENCH_*.json files into BENCH_summary.json"
    )
    parser.add_argument(
        "--dir", default=".", help="directory holding the BENCH_*.json files"
    )
    parser.add_argument(
        "--out", default="BENCH_summary.json", help="merged output path"
    )
    args = parser.parse_args(argv)
    summary = merge_summaries(args.dir)
    with open(args.out, "w") as handle:
        json.dump(summary, handle, indent=2)
        handle.write("\n")
    n_claims = sum(len(c) for c in summary["benchmarks"].values())
    print(
        f"merged {len(summary['sources'])} file(s), "
        f"{len(summary['benchmarks'])} benchmark(s), {n_claims} claim(s) "
        f"-> {args.out}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
