"""Error injection: one interval of the Section VII-A generative process.

Per interval ``[k-1, k]``, ``A`` errors are injected.  Each error:

1. picks an *anchor* device uniformly among the not-yet-impacted ones
   (Restriction R1: a device is hit by at most one error per interval);
   a massive error re-draws its anchor until the ball of radius ``r``
   around it holds more than ``tau`` candidates (when
   ``require_dense_ball`` is set), so its ground truth is genuinely
   massive;
2. collects the devices inside the ball of radius ``r`` centred at the
   anchor (positions at ``k-1``), excluding already-impacted ones;
3. draws the impacted subset — with probability ``G`` an *isolated* error
   impacting 1..tau of them, otherwise a *massive* error impacting
   tau+1..all of them (tau..all in the relaxed regime);
4. relocates the whole group by a common translation to a uniformly drawn
   target centre in ``[r, 1-r]^d`` (Restriction R2: same error, same
   trajectory; the margin keeps the group inside the unit cube without
   clipping, so the group stays r-consistent at time ``k``).

R3 regimes
----------
*Enforced* (Figure 7 / Tables II–III): target centres of isolated errors
are rejection-sampled to stay at least ``r3_separation_factor * r`` away
from every other error's target (and massive targets away from isolated
ones).  Devices of different errors then end the interval strictly
farther than ``2r`` apart, so no isolated-error device can join a
tau-dense motion: Restriction R3 holds by construction.

*Relaxed* (Figures 8–9): no separation, massive anchors are not re-drawn
(degenerate massive errors of at most ``tau`` devices occur in thin
regions), and with probability ``correlated_error_probability`` an error
is *correlated* with an earlier error of the interval — anchored in its
source neighbourhood and relocated next to its target — modelling the
"simultaneous or temporally close errors" with similar effects that
Restrictions R1–R3 deliberately exclude.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.geometry import points_within
from repro.simulation.config import SimulationConfig
from repro.simulation.ledger import ErrorKind, ErrorRecord, GroundTruthLedger, StepTruth

__all__ = ["inject_errors"]


def _draw_target(
    rng: np.random.Generator,
    config: SimulationConfig,
    kind: ErrorKind,
    placed: List[Tuple[np.ndarray, ErrorKind]],
) -> Tuple[np.ndarray, bool]:
    """Draw a relocation centre, honouring R3 separation when enabled.

    Returns ``(center, respected)`` where ``respected`` is false iff the
    rejection budget ran out and the last draw was accepted anyway.
    """
    lo, hi = config.r, 1.0 - config.r
    min_gap = config.r3_separation_factor * config.r

    def conflicts(center: np.ndarray) -> bool:
        if not config.enforce_r3:
            return False
        for other_center, other_kind in placed:
            # Isolated errors must stay away from everything; massive
            # errors only need to stay away from isolated ones (massive
            # superposition is legal and is what produces unresolved
            # configurations).
            if kind is ErrorKind.MASSIVE and other_kind is ErrorKind.MASSIVE:
                continue
            if float(np.max(np.abs(center - other_center))) < min_gap:
                return True
        return False

    center = rng.uniform(lo, hi, size=config.dim)
    for _ in range(config.r3_max_retries):
        if not conflicts(center):
            return center, True
        center = rng.uniform(lo, hi, size=config.dim)
    return center, False


def _ball_members(
    previous: np.ndarray, available: Sequence[int], anchor: int, r: float
) -> List[int]:
    """Available devices within uniform distance ``r`` of the anchor,
    anchor excluded."""
    avail = list(available)
    hits = points_within(previous[avail], previous[anchor], r)
    return [avail[i] for i in hits if avail[i] != anchor]


def _pick_anchor(
    rng: np.random.Generator,
    config: SimulationConfig,
    previous: np.ndarray,
    available: Sequence[int],
    kind: ErrorKind,
) -> Tuple[int, List[int]]:
    """Pick an anchor (re-drawing for massive errors until the ball is
    dense enough, when configured) and return it with its ball."""
    avail = list(available)
    anchor = int(avail[rng.integers(len(avail))])
    ball = _ball_members(previous, avail, anchor, config.r)
    if kind is ErrorKind.MASSIVE and config.require_dense_ball:
        retries = config.r3_max_retries
        while len(ball) < config.tau and retries > 0:
            anchor = int(avail[rng.integers(len(avail))])
            ball = _ball_members(previous, avail, anchor, config.r)
            retries -= 1
    return anchor, ball


def _correlated_parent(
    rng: np.random.Generator,
    config: SimulationConfig,
    truth: StepTruth,
    kind: ErrorKind,
) -> Tuple[Optional[ErrorRecord], bool]:
    """Return ``(parent, is_superposition)`` for a correlated placement.

    Two distinct mechanisms (see the module docstring):

    * *massive superposition* — a massive error stacking onto an earlier
      massive error of the interval; legal under R3, active in both
      regimes, and the source of unresolved configurations;
    * *R3-violating correlation* — relaxed regime only: any error (in
      practice the isolated ones matter) stacking onto any earlier error,
      producing the model/ground-truth divergence of Figure 8.
    """
    if kind is ErrorKind.MASSIVE:
        massive_parents = [
            rec for rec in truth.records if rec.kind is ErrorKind.MASSIVE
        ]
        if massive_parents:
            # Pairwise superposition: the chance of colliding with *some*
            # earlier massive error grows with how many are concurrent —
            # this is what makes |U_k|/|A_k| grow with A (Figure 7) and
            # shrink when sampling splits the load (Section VII-C).
            p_pair = config.massive_superposition_probability
            prob = 1.0 - (1.0 - p_pair) ** len(massive_parents)
            if rng.random() < prob:
                return massive_parents[int(rng.integers(len(massive_parents)))], True
    if config.enforce_r3 or not truth.records:
        return None, False
    if rng.random() >= config.correlated_error_probability:
        return None, False
    return truth.records[int(rng.integers(len(truth.records)))], False


def inject_errors(
    config: SimulationConfig,
    rng: np.random.Generator,
    previous: np.ndarray,
    truth: StepTruth,
    ledger: GroundTruthLedger,
) -> Tuple[np.ndarray, Set[int]]:
    """Inject one interval's errors; return ``(positions_k, A_k)``.

    ``previous`` is the ``(n, d)`` position array at time ``k-1`` (not
    modified); the returned array is the time-``k`` state.
    """
    current = previous.copy()
    impacted: Set[int] = set()
    placed_targets: List[Tuple[np.ndarray, ErrorKind]] = []
    n = config.n
    for _ in range(config.errors_per_step):
        available = [j for j in range(n) if j not in impacted]
        if not available:
            break
        kind = (
            ErrorKind.ISOLATED
            if rng.random() < config.isolated_probability
            else ErrorKind.MASSIVE
        )
        parent, is_superposition = _correlated_parent(rng, config, truth, kind)
        if parent is not None and is_superposition:
            # Superposed massive error: anchor near the parent's source so
            # the groups are close at k-1 as well as at k.
            near_source = [
                j
                for j in available
                if float(np.max(np.abs(previous[j] - previous[parent.anchor])))
                <= 2.0 * config.r
            ]
            if near_source:
                anchor = int(near_source[rng.integers(len(near_source))])
                ball = _ball_members(previous, available, anchor, config.r)
            else:
                parent = None
        elif parent is not None:
            # R3-violating correlation: draw the victims from the parent's
            # own source ball and reuse the parent's displacement, so the
            # correlated devices *merge into* the parent's motion at both
            # snapshots (missed detections) instead of chaining next to it
            # (which would inflate the unresolved ratio — the paper reports
            # R3 violations leave |U_k| untouched, Figure 9).
            same_ball = [
                j
                for j in available
                if float(np.max(np.abs(previous[j] - previous[parent.anchor])))
                <= config.r
            ]
            if same_ball:
                anchor = int(same_ball[rng.integers(len(same_ball))])
                ball = [j for j in same_ball if j != anchor]
            else:
                parent = None
        if parent is None:
            anchor, ball = _pick_anchor(rng, config, previous, available, kind)
        rng.shuffle(ball)
        if kind is ErrorKind.ISOLATED:
            count = int(rng.integers(1, min(config.tau, 1 + len(ball)) + 1))
        else:
            low = config.tau + 1 if config.require_dense_ball else config.tau
            low = min(low, 1 + len(ball))
            count = int(rng.integers(low, 1 + len(ball) + 1))
        members = frozenset([anchor] + ball[: count - 1])
        if parent is not None and is_superposition:
            # Superposed massive error: land at a partial offset from the
            # parent target so the two dense motions overlap without
            # merging (the Figure 3 pattern).
            offset = rng.uniform(-1.5 * config.r, 1.5 * config.r, size=config.dim)
            target = np.clip(
                np.asarray(parent.target_center) + offset, config.r, 1 - config.r
            )
            respected = True  # superposition of massive errors is R3-legal
        elif parent is not None:
            # R3-violating correlation: identical displacement to the
            # parent, so parent and child groups form one motion.
            displacement = np.asarray(parent.target_center) - previous[parent.anchor]
            target = np.clip(previous[anchor] + displacement, 0.0, 1.0)
            respected = False
        else:
            target, respected = _draw_target(rng, config, kind, placed_targets)
        placed_targets.append((target, kind))
        displacement = target - previous[anchor]
        for member in members:
            current[member] = np.clip(previous[member] + displacement, 0.0, 1.0)
        impacted.update(members)
        truth.records.append(
            ErrorRecord(
                error_id=ledger.next_error_id(),
                kind=kind,
                anchor=anchor,
                members=members,
                target_center=tuple(float(x) for x in target),
                r3_respected=respected,
            )
        )
    return current, impacted
