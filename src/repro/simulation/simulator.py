"""Discrete-time simulator driving the Section VII evaluation.

:class:`Simulator` owns the system state: an ``(n, d)`` position array
initialized uniformly over the QoS space (the paper's ``S_0``), advanced
one interval at a time by :func:`repro.simulation.generator.inject_errors`.
Each :meth:`Simulator.step` returns a :class:`SimulationStep` bundling the
:class:`~repro.core.transition.Transition` (what the devices can see) with
the :class:`~repro.simulation.ledger.StepTruth` (what really happened) —
keeping the two rigorously separate is what lets the experiments measure
missed detections honestly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.core.transition import Snapshot, Transition
from repro.core.types import Characterization
from repro.engine import CharacterizationEngine, EngineConfig
from repro.simulation.config import SimulationConfig
from repro.simulation.generator import inject_errors
from repro.simulation.ledger import GroundTruthLedger, StepTruth

__all__ = ["SimulationStep", "Simulator"]


@dataclass
class SimulationStep:
    """One simulated interval: observable transition plus ground truth."""

    step: int
    transition: Transition
    truth: StepTruth

    def characterize(
        self, engine: Optional[CharacterizationEngine] = None, **kwargs
    ) -> Dict[int, Characterization]:
        """Run the local characterization on this step's flagged devices.

        Routed through a :class:`~repro.engine.CharacterizationEngine`; a
        caller holding one for a whole run should pass it so motion
        caches and batch passes are shared.  Keyword arguments become
        :class:`~repro.engine.EngineConfig` fields (which include every
        :class:`~repro.core.characterize.Characterizer` knob).
        """
        if engine is None:
            engine = CharacterizationEngine(EngineConfig(**kwargs))
        elif kwargs:
            raise TypeError("pass either an engine or keyword overrides, not both")
        return engine.characterize(self.transition)


class Simulator:
    """Stateful discrete-time simulator of the monitored system.

    Parameters
    ----------
    config:
        The scenario parameters.
    rng:
        Optional numpy Generator; defaults to one seeded from
        ``config.seed`` so runs are reproducible by construction.
    engine:
        Optional shared :class:`~repro.engine.CharacterizationEngine` used
        by :meth:`run_characterized` (and available to callers via
        :attr:`engine`); defaults to a serial engine built lazily.
    """

    def __init__(
        self,
        config: SimulationConfig,
        rng: Optional[np.random.Generator] = None,
        engine: Optional[CharacterizationEngine] = None,
    ) -> None:
        self._config = config
        self._rng = rng if rng is not None else np.random.default_rng(config.seed)
        self._positions = self._rng.random((config.n, config.dim))
        self._ledger = GroundTruthLedger()
        self._step = 0
        self._engine = engine

    @property
    def config(self) -> SimulationConfig:
        """The scenario parameters."""
        return self._config

    @property
    def engine(self) -> CharacterizationEngine:
        """The characterization engine shared across this run's steps."""
        if self._engine is None:
            self._engine = CharacterizationEngine()
        return self._engine

    @property
    def ledger(self) -> GroundTruthLedger:
        """Ground truth accumulated so far."""
        return self._ledger

    @property
    def current_step(self) -> int:
        """Number of completed intervals."""
        return self._step

    @property
    def positions(self) -> np.ndarray:
        """Current system state (read-only copy)."""
        return self._positions.copy()

    def step(self) -> SimulationStep:
        """Advance one interval and return what happened."""
        self._step += 1
        truth = self._ledger.new_step(self._step)
        previous = self._positions
        current, flagged = inject_errors(
            self._config, self._rng, previous, truth, self._ledger
        )
        self._positions = current
        transition = Transition(
            Snapshot(previous),
            Snapshot(current),
            flagged,
            self._config.r,
            self._config.tau,
        )
        return SimulationStep(step=self._step, transition=transition, truth=truth)

    def run(self, steps: int) -> List[SimulationStep]:
        """Advance ``steps`` intervals and collect the results."""
        return [self.step() for _ in range(steps)]

    def run_characterized(
        self, steps: int
    ) -> List[Tuple[SimulationStep, Dict[int, Characterization]]]:
        """Advance ``steps`` intervals, characterizing each through the
        run's shared engine (one batch neighbourhood pass per interval,
        engine statistics aggregated across the run)."""
        engine = self.engine
        return [
            (step, step.characterize(engine=engine))
            for step in (self.step() for _ in range(steps))
        ]

    def __iter__(self) -> Iterator[SimulationStep]:
        """Endless iterator of simulation steps (callers break)."""
        while True:
            yield self.step()
