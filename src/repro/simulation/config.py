"""Simulation configuration (the knobs of Section VII-A).

The paper's evaluation sweeps four quantities — system size ``n``, number
of errors per interval ``A``, isolated-error probability ``G`` and the
model parameters ``(r, tau)`` — around the operating point
``n = 1000, d = 2, r = 0.03, tau = 3, b = 0.005``.
:class:`SimulationConfig` captures all of them plus the reproduction
switches (R3 enforcement, seeding).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.errors import ConfigurationError
from repro.core.geometry import validate_radius

__all__ = ["SimulationConfig", "PAPER_DEFAULTS"]


@dataclass(frozen=True)
class SimulationConfig:
    """Parameters of one simulated system.

    Attributes
    ----------
    n:
        Number of monitored devices.
    dim:
        Number of services per device (``d``; the paper uses 2).
    r:
        Consistency impact radius (paper: 0.03).
    tau:
        Density threshold (paper: 3).
    errors_per_step:
        ``A``: number of errors injected per interval ``[k-1, k]``
        (paper sweeps 1..80, default operating point 20).
    isolated_probability:
        ``G``: probability that an injected error is isolated (the
        complement is a massive / network error).
    isolated_error_rate:
        ``b``: per-device probability of an isolated error per interval;
        used by the dimensioning analytics (paper: 0.005).
    enforce_r3:
        When true, isolated errors are re-drawn so that their impacted
        devices cannot land inside a tau-dense motion (Restriction R3
        holds by construction, the Figure 7 / Table II regime).  When
        false, isolated errors may pile up and violate R3 (the Figure 8 /
        Figure 9 regime).
    require_dense_ball:
        When true (default), a massive error re-draws its anchor until the
        ball of radius ``r`` around it holds more than ``tau`` devices, so
        every massive error genuinely impacts more than ``tau`` devices.
        Without this, thin regions produce *degenerate* massive errors of
        at most ``tau`` devices — ground-truth isolated — which is one way
        Restriction R3 breaks; set it false in the relaxed regime.
    correlated_error_probability:
        Only used when ``enforce_r3`` is false.  With this probability an
        injected error is *correlated* with an earlier error of the same
        interval: its anchor is drawn from the earlier error's source
        neighbourhood and its target lands next to the earlier target.
        This models the "simultaneous or temporally close errors" with
        similar effects that Section III-C explicitly rules out via
        R1–R3: the correlated devices co-move with the earlier group,
        join its tau-dense motion, and are therefore claimed massive by
        the model even when their own error was isolated — the missed
        detections Figure 8 quantifies.
    massive_superposition_probability:
        *Per-pair* probability that a massive error *superposes* on one
        given earlier massive error of the same interval (the chance of
        superposing on *some* earlier error is
        ``1 - (1 - p)^{#earlier}``, so superposition frequency grows with
        error concurrency).  A superposed error is anchored in its
        parent's source neighbourhood and relocated to a target offset by
        roughly ``1.5 r`` from the parent target; the two groups then
        form partially-overlapping tau-dense motions — the Figure 3
        pattern — whose fringe devices are unresolved.  The paper states
        that "unresolved configurations are essentially due to the
        superposition of massive errors" but its generator description
        (independent uniform relocation) cannot produce such overlaps at
        the reported rates, because a cross-error motion requires the
        groups to be close at *both* snapshots; this knob makes the
        superposition mechanism explicit, and the pairwise scaling gives
        the growth-in-``A`` of Figure 7 and the decrease-under-faster-
        sampling of Section VII-C for free.  Active in both R3 regimes:
        superposed massive errors do not violate R3 (their devices really
        were hit by errors impacting many devices).  See DESIGN.md,
        "Substitutions".
    r3_separation_factor:
        Minimum separation between relocation targets of distinct errors,
        as a multiple of ``r``, when ``enforce_r3`` is set.  Five radii
        guarantee devices of different errors stay strictly farther than
        ``2r`` apart.
    r3_max_retries:
        Rejection-sampling budget per error before giving up (a give-up is
        recorded in the ledger rather than silently accepted).
    seed:
        Root RNG seed.
    """

    n: int = 1000
    dim: int = 2
    r: float = 0.03
    tau: int = 3
    errors_per_step: int = 20
    isolated_probability: float = 0.5
    isolated_error_rate: float = 0.005
    enforce_r3: bool = True
    require_dense_ball: bool = True
    correlated_error_probability: float = 0.0
    massive_superposition_probability: float = 0.018
    r3_separation_factor: float = 5.0
    r3_max_retries: int = 200
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n < 2:
            raise ConfigurationError(f"n must be >= 2, got {self.n!r}")
        if self.dim < 1:
            raise ConfigurationError(f"dim must be >= 1, got {self.dim!r}")
        validate_radius(self.r)
        if not 1 <= self.tau <= self.n - 1:
            raise ConfigurationError(
                f"tau must lie in [1, n-1] = [1, {self.n - 1}], got {self.tau!r}"
            )
        if self.errors_per_step < 0:
            raise ConfigurationError(
                f"errors_per_step must be >= 0, got {self.errors_per_step!r}"
            )
        if not 0.0 <= self.isolated_probability <= 1.0:
            raise ConfigurationError(
                f"G must lie in [0, 1], got {self.isolated_probability!r}"
            )
        if not 0.0 <= self.isolated_error_rate <= 1.0:
            raise ConfigurationError(
                f"b must lie in [0, 1], got {self.isolated_error_rate!r}"
            )
        if self.r3_separation_factor < 4.0:
            raise ConfigurationError(
                "r3_separation_factor below 4 cannot guarantee separation "
                f"beyond 2r; got {self.r3_separation_factor!r}"
            )
        if not 0.0 <= self.correlated_error_probability <= 1.0:
            raise ConfigurationError(
                "correlated_error_probability must lie in [0, 1], got "
                f"{self.correlated_error_probability!r}"
            )
        if not 0.0 <= self.massive_superposition_probability <= 1.0:
            raise ConfigurationError(
                "massive_superposition_probability must lie in [0, 1], got "
                f"{self.massive_superposition_probability!r}"
            )

    def with_overrides(self, **kwargs) -> "SimulationConfig":
        """Return a copy with some fields replaced (sweep helper)."""
        return replace(self, **kwargs)

    def relaxed_r3(
        self, correlated_error_probability: float = 0.15
    ) -> "SimulationConfig":
        """Return the Figure 8 / Figure 9 variant of this configuration.

        Drops the mechanisms that keep Restriction R3 true: isolated
        errors are no longer separated from other errors, and a fraction
        of errors is *correlated* with an earlier error of the same
        interval (drawn from its source ball, moved by its displacement),
        so devices hit by an isolated error can land inside a tau-dense
        motion.  Massive errors keep their dense source balls
        (``require_dense_ball`` stays true): degenerate massive errors are
        a different pathology, reachable by overriding that flag
        explicitly.
        """
        return replace(
            self,
            enforce_r3=False,
            correlated_error_probability=correlated_error_probability,
        )


#: The operating point of the paper's evaluation (Section VII-A).
PAPER_DEFAULTS = SimulationConfig(
    n=1000,
    dim=2,
    r=0.03,
    tau=3,
    errors_per_step=20,
    isolated_probability=0.5,
    isolated_error_rate=0.005,
)
