"""Section VII-A simulation substrate.

A :class:`~repro.simulation.simulator.Simulator` reproduces the paper's
generative process: uniform initial state over ``[0,1]^d``, ``A`` injected
errors per interval with isolated/massive mix ``G``, group relocation by a
common translation, and a :class:`~repro.simulation.ledger.GroundTruthLedger`
recording the real scenario ``R_k`` the devices must never see.
"""

from repro.simulation.config import PAPER_DEFAULTS, SimulationConfig
from repro.simulation.generator import inject_errors
from repro.simulation.ledger import (
    ErrorKind,
    ErrorRecord,
    GroundTruthLedger,
    StepTruth,
)
from repro.simulation.simulator import SimulationStep, Simulator

__all__ = [
    "ErrorKind",
    "ErrorRecord",
    "GroundTruthLedger",
    "PAPER_DEFAULTS",
    "SimulationConfig",
    "SimulationStep",
    "Simulator",
    "StepTruth",
    "inject_errors",
]
