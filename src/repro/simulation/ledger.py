"""Ground-truth ledger: the real scenario of errors ``R_k``.

The whole point of the paper is that devices (and even an omniscient
observer) do *not* know the real error scenario.  The simulator, however,
does — it injected the errors — and records every injection here so the
evaluation can measure model-vs-reality divergence (Figure 8's missed
detections, the pertinence of Restriction R3).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

__all__ = ["ErrorKind", "ErrorRecord", "StepTruth", "GroundTruthLedger"]


class ErrorKind(enum.Enum):
    """Intent of an injected error."""

    ISOLATED = "isolated"
    MASSIVE = "massive"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class ErrorRecord:
    """One injected error: who it hit and how it moved them.

    ``r3_respected`` is false when the injector could not find a
    relocation target keeping this (isolated) error's devices away from
    every other error's devices — only possible when R3 enforcement is on
    and rejection sampling exhausted its budget.
    """

    error_id: int
    kind: ErrorKind
    anchor: int
    members: FrozenSet[int]
    target_center: Tuple[float, ...]
    r3_respected: bool = True

    @property
    def size(self) -> int:
        """Number of devices the error impacted."""
        return len(self.members)


@dataclass
class StepTruth:
    """Ground truth for one interval ``[k-1, k]`` (the paper's ``R_k``)."""

    step: int
    records: List[ErrorRecord] = field(default_factory=list)

    @property
    def flagged(self) -> FrozenSet[int]:
        """All devices impacted this step (the true ``A_k``)."""
        out: set = set()
        for record in self.records:
            out.update(record.members)
        return frozenset(out)

    def truly_massive(self, tau: int) -> FrozenSet[int]:
        """Devices whose own error impacted more than ``tau`` devices
        (the ``M_{R_k}`` of Definition 7 applied to the real scenario)."""
        out: set = set()
        for record in self.records:
            if record.size > tau:
                out.update(record.members)
        return frozenset(out)

    def truly_isolated(self, tau: int) -> FrozenSet[int]:
        """Devices whose own error impacted at most ``tau`` devices."""
        return self.flagged - self.truly_massive(tau)

    def error_of(self, device: int) -> Optional[ErrorRecord]:
        """Return the error that impacted a device (R1: at most one)."""
        for record in self.records:
            if device in record.members:
                return record
        return None

    @property
    def r3_violation_possible(self) -> bool:
        """True when some isolated error could not be separated."""
        return any(not rec.r3_respected for rec in self.records)


class GroundTruthLedger:
    """Accumulates :class:`StepTruth` entries across a simulation run."""

    def __init__(self) -> None:
        self._steps: Dict[int, StepTruth] = {}
        self._next_error_id = 0

    def new_step(self, step: int) -> StepTruth:
        """Open (and return) the truth record for a new step."""
        truth = StepTruth(step=step)
        self._steps[step] = truth
        return truth

    def next_error_id(self) -> int:
        """Allocate a globally unique error identifier."""
        out = self._next_error_id
        self._next_error_id += 1
        return out

    def step(self, step: int) -> StepTruth:
        """Return the truth for one step (KeyError if never simulated)."""
        return self._steps[step]

    def __len__(self) -> int:
        return len(self._steps)

    def __iter__(self):
        return iter(sorted(self._steps))

    def all_records(self) -> Iterable[ErrorRecord]:
        """Iterate every error record in step order."""
        for step in sorted(self._steps):
            yield from self._steps[step].records
