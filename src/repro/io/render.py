"""Plain-text rendering of experiment results.

The environment is headless, so figures are rendered as aligned ASCII
tables and simple unicode line charts — enough to eyeball whether a
series has the paper's shape (who wins, where it bends) straight from a
terminal or EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.io.records import ExperimentResult

__all__ = ["render_table", "render_series", "format_cell"]


def format_cell(value: Any) -> str:
    """Format one cell: floats get 4 significant digits, rest str()."""
    if isinstance(value, float):
        return f"{value:.4g}"
    if value is None:
        return "-"
    return str(value)


def render_table(result: ExperimentResult) -> str:
    """Render an :class:`ExperimentResult` as an aligned ASCII table."""
    columns = result.columns
    grid = [[format_cell(row.get(col)) for col in columns] for row in result.rows]
    widths = [
        max(len(col), *(len(line[i]) for line in grid)) if grid else len(col)
        for i, col in enumerate(columns)
    ]
    sep = "-+-".join("-" * w for w in widths)
    lines = [
        f"# {result.title} ({result.experiment_id})",
        " | ".join(col.ljust(w) for col, w in zip(columns, widths)),
        sep,
    ]
    for line in grid:
        lines.append(" | ".join(cell.ljust(w) for cell, w in zip(line, widths)))
    return "\n".join(lines)


def render_series(
    result: ExperimentResult,
    x: str,
    y: str,
    group: Optional[str] = None,
    *,
    width: int = 60,
    height: int = 12,
) -> str:
    """Render an x/y sweep as a crude unicode scatter chart.

    ``group`` selects a column whose distinct values become separate
    glyph series (like the G-curves of Figures 7–9).
    """
    glyphs = "ox+*#@%&"
    points: Dict[Any, List] = {}
    for row in result.rows:
        if row.get(x) is None or row.get(y) is None:
            continue
        key = row.get(group) if group else ""
        points.setdefault(key, []).append((float(row[x]), float(row[y])))
    if not points:
        return "(no data)"
    xs = [p[0] for series in points.values() for p in series]
    ys = [p[1] for series in points.values() for p in series]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0
    canvas = [[" "] * width for _ in range(height)]
    legend = []
    for idx, (key, series) in enumerate(sorted(points.items(), key=lambda kv: str(kv[0]))):
        glyph = glyphs[idx % len(glyphs)]
        legend.append(f"{glyph} = {group}={key}" if group else f"{glyph} = {y}")
        for px, py in series:
            col = int((px - x_lo) / x_span * (width - 1))
            row_i = height - 1 - int((py - y_lo) / y_span * (height - 1))
            canvas[row_i][col] = glyph
    lines = [f"# {result.title} — {y} vs {x}"]
    lines.append(f"{y} in [{y_lo:.4g}, {y_hi:.4g}]")
    lines.extend("|" + "".join(row) + "|" for row in canvas)
    lines.append(f"{x} in [{x_lo:.4g}, {x_hi:.4g}]")
    lines.extend(legend)
    return "\n".join(lines)
