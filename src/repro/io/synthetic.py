"""Synthetic QoS trace generation and replay.

The paper's deployments monitor proprietary gateway fleets; this module
provides the public substitute DESIGN.md promises: realistic multi-step
QoS traces (diurnal load cycles, measurement noise, scheduled incidents)
plus a replay pipeline that runs any detector bank over a trace and
characterizes every interval — the full measure → detect → characterize
chain on recorded data instead of a live simulator.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.characterize import Characterizer
from repro.core.errors import ConfigurationError
from repro.core.transition import Snapshot, Transition
from repro.core.types import Characterization
from repro.detection.banks import DetectorSpec, resolve_bank
from repro.detection.base import Detector
from repro.io.traces import TraceStep

__all__ = [
    "Incident",
    "TraceConfig",
    "generate_trace",
    "ReplayResult",
    "replay_trace",
]


@dataclass(frozen=True)
class Incident:
    """A scheduled QoS degradation inside a synthetic trace.

    ``devices`` lists the impacted device ids (one device = isolated
    incident, many = massive); ``drop`` is subtracted from the named
    ``service`` during ``[start, start + duration)``.
    """

    start: int
    duration: int
    devices: Tuple[int, ...]
    service: int
    drop: float

    def __post_init__(self) -> None:
        if self.start < 0 or self.duration < 1:
            raise ConfigurationError("incident needs start >= 0 and duration >= 1")
        if not self.devices:
            raise ConfigurationError("incident must impact at least one device")
        if not 0.0 < self.drop <= 1.0:
            raise ConfigurationError(f"drop must lie in (0, 1], got {self.drop!r}")

    def active_at(self, step: int) -> bool:
        """Whether the incident degrades QoS at a given step."""
        return self.start <= step < self.start + self.duration


@dataclass(frozen=True)
class TraceConfig:
    """Shape of a synthetic trace.

    QoS of device ``j``, service ``s`` at step ``k`` is::

        base[s] - diurnal_amplitude * (1 + sin(2 pi (k + phase_j) / diurnal_period)) / 2
        - active incident drops + N(0, noise_sigma)

    clipped to ``[0, 1]``.  The diurnal term models the evening-peak
    congestion every access network exhibits; the per-device phase jitter
    keeps devices from moving in artificial lockstep.
    """

    devices: int = 100
    services: int = 2
    steps: int = 48
    base_qos: float = 0.92
    diurnal_period: int = 24
    diurnal_amplitude: float = 0.05
    phase_jitter: float = 2.0
    noise_sigma: float = 0.004
    seed: int = 0

    def __post_init__(self) -> None:
        if self.devices < 1 or self.services < 1 or self.steps < 2:
            raise ConfigurationError(
                "need devices >= 1, services >= 1, steps >= 2"
            )
        if not 0.0 < self.base_qos <= 1.0:
            raise ConfigurationError(f"base_qos must lie in (0,1], got {self.base_qos!r}")
        if self.diurnal_period < 2:
            raise ConfigurationError("diurnal_period must be >= 2")
        if self.diurnal_amplitude < 0 or self.noise_sigma < 0:
            raise ConfigurationError("amplitudes must be >= 0")


def generate_trace(
    config: TraceConfig, incidents: Sequence[Incident] = ()
) -> List[TraceStep]:
    """Generate a synthetic QoS trace with scheduled incidents."""
    for incident in incidents:
        if incident.service >= config.services:
            raise ConfigurationError(
                f"incident targets service {incident.service}, trace has "
                f"{config.services}"
            )
        if max(incident.devices) >= config.devices:
            raise ConfigurationError("incident targets an unknown device")
    rng = np.random.default_rng(config.seed)
    phases = rng.uniform(0, config.phase_jitter, config.devices)
    steps: List[TraceStep] = []
    for k in range(config.steps):
        qos = np.full((config.devices, config.services), config.base_qos)
        cycle = (
            1.0 + np.sin(2.0 * math.pi * (k + phases) / config.diurnal_period)
        ) / 2.0
        qos -= config.diurnal_amplitude * cycle[:, None]
        for incident in incidents:
            if incident.active_at(k):
                qos[list(incident.devices), incident.service] -= incident.drop
        if config.noise_sigma:
            qos += rng.normal(0.0, config.noise_sigma, qos.shape)
        steps.append(TraceStep(step=k, qos=np.clip(qos, 0.0, 1.0)))
    return steps


@dataclass
class ReplayResult:
    """Per-interval outcome of replaying a trace."""

    step: int
    flagged: List[int]
    verdicts: Dict[int, Characterization] = field(default_factory=dict)


def replay_trace(
    trace: Sequence[TraceStep],
    detector_factory: Optional[Callable[[], Detector]] = None,
    *,
    detector: Optional[DetectorSpec] = None,
    detection: Optional[str] = None,
    r: float = 0.03,
    tau: int = 3,
    min_abnormal_services: int = 1,
) -> List[ReplayResult]:
    """Run a detector bank over a trace and characterize each interval.

    One :class:`~repro.detection.banks.DetectorBank` consumes the trace
    step by step — all devices in a handful of vectorized operations per
    step; whenever an interval has flagged devices, the corresponding
    :class:`Transition` is characterized locally.  ``detector`` /
    ``detection`` select the family and plane; passing a legacy
    ``detector_factory`` instead runs the scalar reference plane with
    identical flags.
    """
    if not trace:
        raise ConfigurationError("cannot replay an empty trace")
    n, d = trace[0].qos.shape
    bank = resolve_bank(
        n,
        d,
        detector_factory=detector_factory,
        detector=detector,
        detection=detection,
        r=r,
        min_abnormal_services=min_abnormal_services,
    )
    results: List[ReplayResult] = []
    previous: Optional[np.ndarray] = None
    for step in trace:
        qos = step.qos
        flagged = bank.observe_batch(qos).flagged_devices()
        outcome = ReplayResult(step=step.step, flagged=flagged)
        if previous is not None and flagged:
            transition = Transition(
                Snapshot(previous), Snapshot(qos), flagged, r, tau
            )
            outcome.verdicts = Characterizer(transition).characterize_all()
        results.append(outcome)
        previous = qos
    return results
