"""QoS trace (de)serialization.

A *trace* is the raw material of the monitoring pipeline: per step, per
device, per service QoS samples.  The JSON-lines format here lets users
replay recorded traces through the detectors and characterizer — the
"public/synthetic traces" substitution DESIGN.md documents for the
paper's proprietary gateway data.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Iterable, List, Sequence

import numpy as np

from repro.core.errors import TraceFormatError

__all__ = ["TraceStep", "write_trace", "read_trace", "trace_to_arrays"]


@dataclass(frozen=True)
class TraceStep:
    """One snapshot: step index and the ``(n, d)`` QoS matrix."""

    step: int
    qos: np.ndarray

    def __post_init__(self) -> None:
        arr = np.asarray(self.qos, dtype=float)
        if arr.ndim != 2:
            raise TraceFormatError("qos must be an (n, d) matrix")
        object.__setattr__(self, "qos", arr)


def write_trace(steps: Iterable[TraceStep]) -> str:
    """Serialize snapshots as JSON lines (one step per line)."""
    lines = []
    for step in steps:
        lines.append(
            json.dumps({"step": step.step, "qos": step.qos.tolist()})
        )
    return "\n".join(lines) + ("\n" if lines else "")


def read_trace(text: str) -> List[TraceStep]:
    """Parse a JSON-lines trace, validating shape consistency."""
    steps: List[TraceStep] = []
    shape = None
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            payload = json.loads(line)
            step = TraceStep(step=int(payload["step"]), qos=np.array(payload["qos"]))
        except (KeyError, TypeError, ValueError) as exc:
            raise TraceFormatError(f"line {lineno}: {exc}") from exc
        if shape is None:
            shape = step.qos.shape
        elif step.qos.shape != shape:
            raise TraceFormatError(
                f"line {lineno}: shape {step.qos.shape} != first step's {shape}"
            )
        steps.append(step)
    return steps


def trace_to_arrays(steps: Sequence[TraceStep]) -> np.ndarray:
    """Stack a trace into a ``(steps, n, d)`` array."""
    if not steps:
        raise TraceFormatError("empty trace")
    return np.stack([s.qos for s in steps])
