"""Experiment result records.

Every experiment produces an :class:`ExperimentResult`: a named collection
of rows (plain dicts) plus the parameters that generated them.  Keeping
results as data — rather than printing inside the experiment — lets the
benchmark harness, EXPERIMENTS.md generation and tests all consume the
same object.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List

from repro.core.errors import TraceFormatError

__all__ = ["ExperimentResult"]


@dataclass
class ExperimentResult:
    """Rows + provenance for one table or figure.

    Attributes
    ----------
    experiment_id:
        Paper anchor, e.g. ``"table2"`` or ``"figure7"``.
    title:
        Human-readable description.
    parameters:
        The sweep/settings that generated the rows.
    columns:
        Ordered column names.
    rows:
        One dict per row; keys must be a subset of ``columns``.
    """

    experiment_id: str
    title: str
    parameters: Dict[str, Any] = field(default_factory=dict)
    columns: List[str] = field(default_factory=list)
    rows: List[Dict[str, Any]] = field(default_factory=list)

    def add_row(self, **values: Any) -> None:
        """Append a row, growing ``columns`` for any new keys."""
        for key in values:
            if key not in self.columns:
                self.columns.append(key)
        self.rows.append(dict(values))

    def column(self, name: str) -> List[Any]:
        """Extract one column as a list (missing cells become None)."""
        return [row.get(name) for row in self.rows]

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_json(self) -> str:
        """Serialize to a JSON document."""
        return json.dumps(
            {
                "experiment_id": self.experiment_id,
                "title": self.title,
                "parameters": self.parameters,
                "columns": self.columns,
                "rows": self.rows,
            },
            indent=2,
            sort_keys=False,
            default=str,
        )

    @classmethod
    def from_json(cls, text: str) -> "ExperimentResult":
        """Parse a document produced by :meth:`to_json`."""
        try:
            payload = json.loads(text)
            return cls(
                experiment_id=payload["experiment_id"],
                title=payload["title"],
                parameters=payload.get("parameters", {}),
                columns=list(payload.get("columns", [])),
                rows=list(payload.get("rows", [])),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise TraceFormatError(f"malformed experiment result: {exc}") from exc

    def to_csv(self) -> str:
        """Render as CSV (header + rows, cells stringified)."""
        def cell(value: Any) -> str:
            text = "" if value is None else str(value)
            if any(c in text for c in ",\"\n"):
                text = '"' + text.replace('"', '""') + '"'
            return text

        lines = [",".join(self.columns)]
        for row in self.rows:
            lines.append(",".join(cell(row.get(col)) for col in self.columns))
        return "\n".join(lines) + "\n"
