"""Result records, text rendering and trace (de)serialization."""

from repro.io.records import ExperimentResult
from repro.io.synthetic import (
    Incident,
    ReplayResult,
    TraceConfig,
    generate_trace,
    replay_trace,
)
from repro.io.render import format_cell, render_series, render_table
from repro.io.traces import TraceStep, read_trace, trace_to_arrays, write_trace

__all__ = [
    "ExperimentResult",
    "Incident",
    "ReplayResult",
    "TraceConfig",
    "generate_trace",
    "replay_trace",
    "TraceStep",
    "format_cell",
    "read_trace",
    "render_series",
    "render_table",
    "trace_to_arrays",
    "write_trace",
]
