"""Synthetic ISP/OTT network substrate (the paper's motivating deployment).

Build an :class:`~repro.network.topology.IspTopology`, attach a
:class:`~repro.network.monitor.NetworkMonitor`, inject
:class:`~repro.network.faults.NetworkFault` / \
:class:`~repro.network.faults.GatewayFault` events, and watch gateways
self-classify their QoS degradations as isolated or massive — reporting
to the operator only what the chosen policy deems actionable.
"""

from repro.network.faults import FaultInjector, GatewayFault, NetworkFault
from repro.network.monitor import (
    NetworkMonitor,
    Report,
    ReportingPolicy,
    TickResult,
)
from repro.network.services import Service, ServiceCatalog, default_catalog
from repro.network.topology import IspTopology, NodeKind, TopologyConfig

__all__ = [
    "FaultInjector",
    "GatewayFault",
    "IspTopology",
    "NetworkFault",
    "NetworkMonitor",
    "NodeKind",
    "Report",
    "ReportingPolicy",
    "Service",
    "ServiceCatalog",
    "TickResult",
    "TopologyConfig",
    "default_catalog",
]
