"""Services consumed by gateways (the ``d`` QoS dimensions).

Each gateway continuously consumes ``d`` services (IPTV, VoIP, web, ...),
every one hosted on a content server of the topology.  A service's QoS at
a gateway is its nominal quality attenuated by the multiplicative health
of the route — the "chain of equipments and network links from the
providers of consumed services to the monitored devices" of Section III-A.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.core.errors import ConfigurationError
from repro.network.topology import IspTopology

__all__ = ["Service", "ServiceCatalog", "default_catalog"]


@dataclass(frozen=True)
class Service:
    """One service: a name, its hosting server and its nominal quality."""

    index: int
    name: str
    server: str
    base_qos: float = 0.95

    def __post_init__(self) -> None:
        if not 0.0 < self.base_qos <= 1.0:
            raise ConfigurationError(
                f"base_qos must lie in (0, 1], got {self.base_qos!r}"
            )


class ServiceCatalog:
    """The ordered set of services defining the QoS space dimensions."""

    def __init__(self, services: Sequence[Service]) -> None:
        if not services:
            raise ConfigurationError("a catalog needs at least one service")
        for i, service in enumerate(services):
            if service.index != i:
                raise ConfigurationError(
                    f"service {service.name!r} has index {service.index}, "
                    f"expected {i} (catalog order defines QoS dimensions)"
                )
        self._services = list(services)
        # Per-topology routing tables for the vectorized measurement
        # path: (node order, (n, d, max_route) health-index tensor,
        # per-service base QoS).  Weakly keyed by the topology object so
        # a freed topology cannot alias a recycled id() into a stale
        # table, and dead entries are evicted automatically.
        self._route_tables: "weakref.WeakKeyDictionary[IspTopology, Tuple[List[str], np.ndarray, np.ndarray]]" = (
            weakref.WeakKeyDictionary()
        )

    @property
    def dim(self) -> int:
        """Number of services, i.e. the QoS space dimension ``d``."""
        return len(self._services)

    def __iter__(self):
        return iter(self._services)

    def __len__(self) -> int:
        return len(self._services)

    def __getitem__(self, index: int) -> Service:
        return self._services[index]

    def qos_vector(self, topology: IspTopology, gateway: str) -> List[float]:
        """Noise-free QoS of every service at one gateway."""
        return [
            service.base_qos * topology.path_health(gateway, service.server)
            for service in self._services
        ]

    def _route_table(
        self, topology: IspTopology
    ) -> Tuple[List[str], np.ndarray, np.ndarray]:
        """Build (and cache) the index tensor behind :meth:`qos_matrix`."""
        table = self._route_tables.get(topology)
        if table is None:
            nodes = list(topology.graph.nodes)
            node_index = {name: k for k, name in enumerate(nodes)}
            n = topology.n_gateways
            routes = [
                [
                    topology.route(topology.gateway_name(device), service.server)
                    for service in self._services
                ]
                for device in range(n)
            ]
            max_len = max(len(route) for row in routes for route in row)
            # Sentinel slot past the real nodes carries health 1.0, so
            # padded hops multiply exactly by 1 (no-op on IEEE doubles).
            pad = len(nodes)
            index = np.full((n, self.dim, max_len), pad, dtype=np.intp)
            for device, row in enumerate(routes):
                for s, route in enumerate(row):
                    index[device, s, : len(route)] = [
                        node_index[name] for name in route
                    ]
            base = np.array([service.base_qos for service in self._services])
            table = (nodes, index, base)
            self._route_tables[topology] = table
        return table

    def qos_matrix(self, topology: IspTopology) -> np.ndarray:
        """Noise-free QoS of every service at every gateway, ``(n, d)``.

        The vectorized twin of looping :meth:`qos_vector` over the
        fleet: routes are resolved once into an index tensor, so a tick
        reads one health vector and reduces products along the route
        axis.  The product runs hop by hop in route order (not via
        ``np.prod``), so each entry is bit-exact with the scalar
        ``path_health`` accumulation.
        """
        nodes, index, base = self._route_table(topology)
        graph_nodes = topology.graph.nodes
        health = np.empty(len(nodes) + 1)
        for k, name in enumerate(nodes):
            health[k] = graph_nodes[name]["health"]
        health[-1] = 1.0
        hops = health[index]
        path = hops[..., 0]
        for k in range(1, hops.shape[2]):
            path = path * hops[..., k]
        return base[None, :] * path


def default_catalog(topology: IspTopology, dim: int = 2) -> ServiceCatalog:
    """Build ``dim`` services spread round-robin over the servers.

    Two services (the paper's ``d = 2``) hosted on distinct servers give
    network faults direction in the QoS space: a core fault near server 0
    moves gateways along dimension 0, etc.
    """
    if dim < 1:
        raise ConfigurationError(f"dim must be >= 1, got {dim!r}")
    names = ["iptv", "voip", "web", "gaming", "backup", "telemetry"]
    servers = topology.servers
    services = [
        Service(
            index=i,
            name=names[i % len(names)] + (f"-{i}" if i >= len(names) else ""),
            server=servers[i % len(servers)],
            base_qos=0.95,
        )
        for i in range(dim)
    ]
    return ServiceCatalog(services)
