"""Services consumed by gateways (the ``d`` QoS dimensions).

Each gateway continuously consumes ``d`` services (IPTV, VoIP, web, ...),
every one hosted on a content server of the topology.  A service's QoS at
a gateway is its nominal quality attenuated by the multiplicative health
of the route — the "chain of equipments and network links from the
providers of consumed services to the monitored devices" of Section III-A.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.core.errors import ConfigurationError
from repro.network.topology import IspTopology

__all__ = ["Service", "ServiceCatalog", "default_catalog"]


@dataclass(frozen=True)
class Service:
    """One service: a name, its hosting server and its nominal quality."""

    index: int
    name: str
    server: str
    base_qos: float = 0.95

    def __post_init__(self) -> None:
        if not 0.0 < self.base_qos <= 1.0:
            raise ConfigurationError(
                f"base_qos must lie in (0, 1], got {self.base_qos!r}"
            )


class ServiceCatalog:
    """The ordered set of services defining the QoS space dimensions."""

    def __init__(self, services: Sequence[Service]) -> None:
        if not services:
            raise ConfigurationError("a catalog needs at least one service")
        for i, service in enumerate(services):
            if service.index != i:
                raise ConfigurationError(
                    f"service {service.name!r} has index {service.index}, "
                    f"expected {i} (catalog order defines QoS dimensions)"
                )
        self._services = list(services)

    @property
    def dim(self) -> int:
        """Number of services, i.e. the QoS space dimension ``d``."""
        return len(self._services)

    def __iter__(self):
        return iter(self._services)

    def __len__(self) -> int:
        return len(self._services)

    def __getitem__(self, index: int) -> Service:
        return self._services[index]

    def qos_vector(self, topology: IspTopology, gateway: str) -> List[float]:
        """Noise-free QoS of every service at one gateway."""
        return [
            service.base_qos * topology.path_health(gateway, service.server)
            for service in self._services
        ]


def default_catalog(topology: IspTopology, dim: int = 2) -> ServiceCatalog:
    """Build ``dim`` services spread round-robin over the servers.

    Two services (the paper's ``d = 2``) hosted on distinct servers give
    network faults direction in the QoS space: a core fault near server 0
    moves gateways along dimension 0, etc.
    """
    if dim < 1:
        raise ConfigurationError(f"dim must be >= 1, got {dim!r}")
    names = ["iptv", "voip", "web", "gaming", "backup", "telemetry"]
    servers = topology.servers
    services = [
        Service(
            index=i,
            name=names[i % len(names)] + (f"-{i}" if i >= len(names) else ""),
            server=servers[i % len(servers)],
            base_qos=0.95,
        )
        for i in range(dim)
    ]
    return ServiceCatalog(services)
