"""End-to-end monitoring pipeline over the ISP substrate.

Ties every layer of the reproduction together, per tick:

1. :class:`~repro.network.faults.FaultInjector` updates equipment health;
2. each gateway *measures* the end-to-end QoS of its services (path
   health x nominal quality, plus measurement noise);
3. each gateway's :class:`~repro.detection.composite.DeviceMonitor` flags
   abnormal variations (``a_k(j)``);
4. the last two QoS snapshots plus the flagged set form a
   :class:`~repro.core.transition.Transition`, characterized locally;
5. a *reporting policy* turns verdicts into operator notifications:
   ISP mode reports isolated anomalies only (gateways self-diagnose their
   own faults; massive events would flood the call center), OTT mode
   reports massive anomalies only (the over-the-top operator wants
   network-level events).

This is exactly the deployment story of the paper's introduction.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

import dataclasses

from repro.core.errors import ConfigurationError
from repro.core.transition import Snapshot, Transition
from repro.core.types import AnomalyType, Characterization
from repro.engine import CharacterizationEngine, EngineConfig
from repro.detection.banks import (
    BankDetection,
    DetectorBank,
    DetectorSpec,
    resolve_bank,
)
from repro.detection.base import Detector
from repro.network.faults import FaultInjector
from repro.network.services import ServiceCatalog, default_catalog
from repro.network.topology import IspTopology
from repro.obs.trace import get_tracer
from repro.online.service import OnlineCharacterizationService, ServiceConfig

__all__ = ["ReportingPolicy", "Report", "TickResult", "NetworkMonitor"]


class ReportingPolicy(enum.Enum):
    """Who gets notified about what."""

    ISP = "isp"    # report isolated anomalies (local equipment faults)
    OTT = "ott"    # report massive anomalies (network-level events)
    ALL = "all"    # report everything (debugging / call-center baseline)

    def should_report(self, anomaly_type: AnomalyType) -> bool:
        """Whether a verdict of this type is worth an operator report."""
        if self is ReportingPolicy.ALL:
            return True
        if self is ReportingPolicy.ISP:
            return anomaly_type is AnomalyType.ISOLATED
        return anomaly_type is AnomalyType.MASSIVE


@dataclass(frozen=True)
class Report:
    """One operator notification emitted by a gateway."""

    tick: int
    device_id: int
    gateway: str
    anomaly_type: AnomalyType
    position: tuple


@dataclass
class TickResult:
    """Everything observable about one monitoring tick."""

    tick: int
    qos: np.ndarray                       # (n, d) measured QoS
    flagged: List[int]                    # devices with a_k(j) = true
    transition: Optional[Transition]      # None on the first tick
    verdicts: Dict[int, Characterization] = field(default_factory=dict)
    reports: List[Report] = field(default_factory=list)
    # The bank's full per-service verdicts (scores, forecasts, residuals
    # — four fleet-sized arrays).  Attached only under
    # ``NetworkMonitor(keep_detections=True)``: callers commonly retain
    # every TickResult, and pinning 4x (n, d) arrays per tick would
    # reintroduce the per-tick memory growth this layer avoids.  The
    # latest one is always available as ``monitor.last_detection``.
    detection: Optional[BankDetection] = None


class NetworkMonitor:
    """Drives the measure → detect → characterize → report loop.

    Parameters
    ----------
    topology:
        The access network.
    catalog:
        Services to monitor; defaults to a two-service catalog.
    detector_spec:
        Detector configuration for the whole fleet; defaults to the
        step-threshold spec with ``max_step = 4 r`` (a relocation in the
        QoS space is macroscopic by construction).  The tick loop runs
        it as one array-backed
        :class:`~repro.detection.banks.DetectorBank` — ``n x d``
        detector states updated in a few vectorized operations.
    detection:
        Detection plane (``"bank"`` — vectorized, default — or
        ``"scalar"``, the per-device reference loop; flags are
        identical by the banks' equivalence contract).
    keep_detections:
        Attach each tick's full :class:`BankDetection` to its
        :class:`TickResult` (off by default — see
        :attr:`TickResult.detection`).
    detector_factory:
        Legacy escape hatch: a zero-argument scalar-detector factory.
        Opaque factories cannot be vectorized, so this forces the
        scalar plane; prefer ``detector_spec``.
    policy:
        Reporting policy (ISP / OTT / ALL).
    r, tau:
        Characterization parameters.
    noise_sigma:
        Gaussian measurement noise on every QoS sample.
    seed:
        RNG seed for measurement noise.
    engine:
        Optional shared :class:`~repro.engine.CharacterizationEngine`.
        Defaults to a serial engine owned by the monitor; the tick loop
        characterizes through it, so one batch neighbourhood pass and one
        motion cache serve each interval, and a ``process`` engine fans
        large flagged sets out to a persistent worker pool.  The monitor
        closes an engine it built itself (:meth:`close`, or use the
        monitor as a context manager); a caller-provided engine stays
        the caller's to close.
    backend, workers:
        Convenience knobs building the default engine when ``engine`` is
        not given.
    incremental:
        When true, the tick loop routes through an
        :class:`~repro.online.service.OnlineCharacterizationService`
        instead of recharacterizing every flagged gateway: per-tick QoS
        diffs become events, only verdicts whose ``4r`` neighbourhoods
        changed are recomputed, and index work is shared across
        consecutive ticks.  Verdicts are identical either way.
    service_config:
        Knobs for the incremental service (``r``/``tau`` are overridden
        with the monitor's own).
    """

    def __init__(
        self,
        topology: IspTopology,
        catalog: Optional[ServiceCatalog] = None,
        *,
        detector_spec: Optional[DetectorSpec] = None,
        detection: Optional[str] = None,
        keep_detections: bool = False,
        detector_factory: Optional[Callable[[], Detector]] = None,
        policy: ReportingPolicy = ReportingPolicy.ISP,
        r: float = 0.03,
        tau: int = 3,
        noise_sigma: float = 0.002,
        seed: int = 0,
        engine: Optional[CharacterizationEngine] = None,
        backend: str = "serial",
        workers: Optional[int] = None,
        incremental: bool = False,
        service_config: Optional[ServiceConfig] = None,
    ) -> None:
        if noise_sigma < 0:
            raise ConfigurationError(f"noise_sigma must be >= 0, got {noise_sigma!r}")
        self._topology = topology
        self._catalog = catalog or default_catalog(topology)
        self._injector = FaultInjector(topology)
        self._bank: DetectorBank = resolve_bank(
            topology.n_gateways,
            self._catalog.dim,
            detector_factory=detector_factory,
            detector=detector_spec,
            detection=detection,
            r=r,
        )
        self._keep_detections = keep_detections
        self._last_detection: Optional[BankDetection] = None
        self._policy = policy
        self._r = r
        self._tau = tau
        self._noise = noise_sigma
        self._rng = np.random.default_rng(seed)
        self._tick = 0
        self._previous_qos: Optional[np.ndarray] = None
        self._owns_engine = engine is None
        self._engine = engine or CharacterizationEngine(
            EngineConfig(backend=backend, workers=workers)
        )
        self._incremental = incremental
        self._service_config = dataclasses.replace(
            service_config or ServiceConfig(), r=r, tau=tau
        )
        self._service: Optional[OnlineCharacterizationService] = None
        # Batch-mode index sharing: the previous tick's transition, kept
        # only while its current snapshot is this tick's previous one.
        self._last_transition: Optional[Transition] = None

    @property
    def injector(self) -> FaultInjector:
        """The fault scheduler (inject faults through this)."""
        return self._injector

    @property
    def catalog(self) -> ServiceCatalog:
        """The monitored services."""
        return self._catalog

    @property
    def policy(self) -> ReportingPolicy:
        """Current reporting policy."""
        return self._policy

    @property
    def current_tick(self) -> int:
        """Number of completed ticks."""
        return self._tick

    @property
    def engine(self) -> CharacterizationEngine:
        """The characterization engine the tick loop routes through."""
        return self._engine

    @property
    def bank(self) -> DetectorBank:
        """The detector bank flagging ``a_k(j)`` fleet-wide each tick."""
        return self._bank

    @property
    def last_detection(self) -> Optional[BankDetection]:
        """The bank's most recent batch detection (None before tick 1)."""
        return self._last_detection

    @property
    def service(self) -> Optional[OnlineCharacterizationService]:
        """The online service (incremental mode only; None before tick 1)."""
        return self._service

    def close(self) -> None:
        """Release the engine's worker pool, if the monitor owns it.

        The incremental service shares the monitor's engine, so closing
        the monitor covers it too.  Idempotent.
        """
        if self._owns_engine:
            self._engine.close()

    def __enter__(self) -> "NetworkMonitor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _measure_all(self) -> np.ndarray:
        """Measure the QoS of every service at every gateway.

        One vectorized pass: :meth:`~repro.network.services.ServiceCatalog.qos_matrix`
        reduces cached route tables against the current health vector,
        then measurement noise is added fleet-wide.
        """
        qos = self._catalog.qos_matrix(self._topology)
        if self._noise:
            qos += self._rng.normal(0.0, self._noise, qos.shape)
        return np.clip(qos, 0.0, 1.0)

    def tick(self) -> TickResult:
        """Run one monitoring interval."""
        tracer = get_tracer()
        self._tick += 1
        self._injector.tick()
        with tracer.span("measure"):
            qos = self._measure_all()
        with tracer.span("detect"):
            detection = self._bank.observe_batch(qos)
        self._last_detection = detection
        flagged = detection.flagged_devices()
        result = TickResult(
            tick=self._tick,
            qos=qos,
            flagged=flagged,
            transition=None,
            detection=detection if self._keep_detections else None,
        )
        previous = self._previous_qos
        self._previous_qos = qos
        if self._incremental:
            return self._tick_incremental(result, previous, qos, flagged)
        if previous is None or not flagged:
            self._last_transition = None
            return result
        with tracer.span("transition-build"):
            transition = Transition(
                Snapshot(previous),
                Snapshot(qos),
                flagged,
                self._r,
                self._tau,
                index_prev=self._reusable_prev_index(flagged),
            )
        self._last_transition = transition
        result.transition = transition
        with tracer.span("verdict"):
            result.verdicts = self._engine.characterize(transition)
        for device_id, verdict in result.verdicts.items():
            if self._policy.should_report(verdict.anomaly_type):
                result.reports.append(
                    Report(
                        tick=self._tick,
                        device_id=device_id,
                        gateway=self._topology.gateway_name(device_id),
                        anomaly_type=verdict.anomaly_type,
                        position=tuple(float(x) for x in qos[device_id]),
                    )
                )
        return result

    def _reusable_prev_index(self, flagged: Sequence[int]):
        """The previous tick's current-side index, when it still applies.

        Valid exactly when the last tick built a transition (so its
        current snapshot is this tick's previous one) over the same
        flagged set.
        """
        last = self._last_transition
        if last is not None and tuple(flagged) == last.flagged_sorted:
            return last.cur_index
        return None

    def _tick_incremental(
        self,
        result: TickResult,
        previous: Optional[np.ndarray],
        qos: np.ndarray,
        flagged: List[int],
    ) -> TickResult:
        """Characterize through the online service instead of batch."""
        if previous is None:
            # First tick seeds the service state; there is no interval yet.
            self._service = OnlineCharacterizationService(
                qos, self._service_config, engine=self._engine
            )
            return result
        assert self._service is not None
        # The bank's flag vector goes to the service as-is — the columnar
        # snapshot path diffs arrays, no per-gateway list needed.
        assert self._last_detection is not None
        out = self._service.feed_snapshot(qos, self._last_detection.flags)
        result.transition = out.transition
        result.verdicts = dict(out.verdicts)
        for device_id, verdict in result.verdicts.items():
            if self._policy.should_report(verdict.anomaly_type):
                result.reports.append(
                    Report(
                        tick=self._tick,
                        device_id=device_id,
                        gateway=self._topology.gateway_name(device_id),
                        anomaly_type=verdict.anomaly_type,
                        position=tuple(float(x) for x in qos[device_id]),
                    )
                )
        return result

    def run(self, ticks: int) -> List[TickResult]:
        """Run several intervals and collect the results."""
        return [self.tick() for _ in range(ticks)]
