"""Synthetic hierarchical ISP topology.

The paper motivates its algorithm with Internet service providers
operating millions of home gateways.  We model the standard access-network
shape:

    content servers — core ring — aggregation routers — access nodes
    (DSLAMs) — home gateways

as a networkx graph whose nodes carry a ``kind`` attribute and a ``health``
in ``[0, 1]`` (1 = nominal).  A network-level fault degrades the health of
a router or access node and therefore every gateway whose service path
crosses it — the "massive anomaly" of the paper — while a gateway fault
degrades a single leaf — the "isolated anomaly".
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import networkx as nx
import numpy as np

from repro.core.errors import ConfigurationError, UnknownDeviceError

__all__ = ["NodeKind", "TopologyConfig", "IspTopology"]


class NodeKind(enum.Enum):
    """Role of a node in the access network."""

    SERVER = "server"
    CORE = "core"
    AGGREGATION = "aggregation"
    ACCESS = "access"
    GATEWAY = "gateway"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class TopologyConfig:
    """Shape of the synthetic ISP tree.

    Defaults give ``4 * 3 * 4 * 20 = 960`` gateways — the scale of the
    paper's ``n = 1000`` simulations — behind 48 access nodes.
    """

    cores: int = 4
    aggregations_per_core: int = 3
    access_per_aggregation: int = 4
    gateways_per_access: int = 20
    servers: int = 2

    def __post_init__(self) -> None:
        for name in (
            "cores",
            "aggregations_per_core",
            "access_per_aggregation",
            "gateways_per_access",
            "servers",
        ):
            if getattr(self, name) < 1:
                raise ConfigurationError(f"{name} must be >= 1")

    @property
    def total_gateways(self) -> int:
        """Number of leaf gateways the config produces."""
        return (
            self.cores
            * self.aggregations_per_core
            * self.access_per_aggregation
            * self.gateways_per_access
        )


class IspTopology:
    """The access network: construction, health state and routing.

    Node names are structured strings (``core-0``, ``agg-0-1``,
    ``acc-0-1-2``, ``gw-0-1-2-3``, ``srv-0``) so tests and examples can
    address equipment precisely.  Gateways are additionally numbered
    ``0..n-1`` (attribute ``device_id``) to line up with the
    characterization layer's device ids.
    """

    def __init__(self, config: Optional[TopologyConfig] = None) -> None:
        self._config = config or TopologyConfig()
        self._graph = nx.Graph()
        self._gateways: List[str] = []
        self._servers: List[str] = []
        self._build()
        self._paths: Dict[Tuple[str, str], List[str]] = {}

    @property
    def config(self) -> TopologyConfig:
        """The shape this topology was built from."""
        return self._config

    @property
    def graph(self) -> nx.Graph:
        """The underlying networkx graph (mutating health is fine;
        mutating structure invalidates cached routes)."""
        return self._graph

    @property
    def gateways(self) -> List[str]:
        """Gateway node names, ordered by device id."""
        return list(self._gateways)

    @property
    def servers(self) -> List[str]:
        """Content-server node names."""
        return list(self._servers)

    @property
    def n_gateways(self) -> int:
        """Number of gateways (the system size ``n``)."""
        return len(self._gateways)

    # ------------------------------------------------------------------
    def _add_node(self, name: str, kind: NodeKind, **attrs) -> None:
        self._graph.add_node(name, kind=kind, health=1.0, **attrs)

    def _build(self) -> None:
        cfg = self._config
        core_names = [f"core-{c}" for c in range(cfg.cores)]
        for name in core_names:
            self._add_node(name, NodeKind.CORE)
        # Core ring (single core degenerates to a lone node).
        for i, name in enumerate(core_names):
            if len(core_names) > 1:
                self._graph.add_edge(name, core_names[(i + 1) % len(core_names)])
        for s in range(cfg.servers):
            server = f"srv-{s}"
            self._add_node(server, NodeKind.SERVER)
            self._graph.add_edge(server, core_names[s % len(core_names)])
            self._servers.append(server)
        device_id = 0
        for c in range(cfg.cores):
            for a in range(cfg.aggregations_per_core):
                agg = f"agg-{c}-{a}"
                self._add_node(agg, NodeKind.AGGREGATION)
                self._graph.add_edge(agg, f"core-{c}")
                for x in range(cfg.access_per_aggregation):
                    acc = f"acc-{c}-{a}-{x}"
                    self._add_node(acc, NodeKind.ACCESS)
                    self._graph.add_edge(acc, agg)
                    for g in range(cfg.gateways_per_access):
                        gw = f"gw-{c}-{a}-{x}-{g}"
                        self._add_node(gw, NodeKind.GATEWAY, device_id=device_id)
                        self._graph.add_edge(gw, acc)
                        self._gateways.append(gw)
                        device_id += 1

    # ------------------------------------------------------------------
    def gateway_name(self, device_id: int) -> str:
        """Translate a device id into its gateway node name."""
        if not 0 <= device_id < len(self._gateways):
            raise UnknownDeviceError(
                f"device {device_id} not in [0, {len(self._gateways)})"
            )
        return self._gateways[device_id]

    def kind(self, node: str) -> NodeKind:
        """Return a node's role."""
        return self._graph.nodes[node]["kind"]

    def health(self, node: str) -> float:
        """Current health of a node in ``[0, 1]``."""
        return float(self._graph.nodes[node]["health"])

    def set_health(self, node: str, health: float) -> None:
        """Set a node's health (clamped to ``[0, 1]``)."""
        if node not in self._graph:
            raise UnknownDeviceError(f"unknown node {node!r}")
        self._graph.nodes[node]["health"] = float(np.clip(health, 0.0, 1.0))

    def reset_health(self) -> None:
        """Restore every node to nominal health."""
        for node in self._graph.nodes:
            self._graph.nodes[node]["health"] = 1.0

    def route(self, gateway: str, server: str) -> List[str]:
        """Shortest path from a gateway to a server (cached).

        In the tree-plus-ring topology this is the gateway's unique access
        chain followed by the core hops toward the server.
        """
        key = (gateway, server)
        path = self._paths.get(key)
        if path is None:
            path = nx.shortest_path(self._graph, gateway, server)
            self._paths[key] = path
        return list(path)

    def path_health(self, gateway: str, server: str) -> float:
        """Multiplicative health of the route (the end-to-end quality
        attenuation a measurement function observes)."""
        health = 1.0
        for node in self.route(gateway, server):
            health *= self.health(node)
        return health

    def gateways_behind(self, node: str) -> List[str]:
        """Gateways whose route to *any* server crosses ``node``.

        The impact footprint of a network-level fault: used by tests and
        examples to know the ground truth of an injected event.
        """
        impacted: List[str] = []
        for gateway in self._gateways:
            for server in self._servers:
                if node in self.route(gateway, server):
                    impacted.append(gateway)
                    break
        return impacted
