"""Fault injection into the ISP topology.

Two fault classes mirror the paper's dichotomy:

* :class:`NetworkFault` — degrades a router/access node, impacting every
  gateway routed through it (massive anomaly ground truth);
* :class:`GatewayFault` — degrades a single gateway's own equipment
  (isolated anomaly ground truth).

:class:`FaultInjector` owns the active fault set, applies health changes
at the start of each tick and expires faults after their duration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Set

from repro.core.errors import ConfigurationError, UnknownDeviceError
from repro.network.topology import IspTopology, NodeKind

__all__ = ["NetworkFault", "GatewayFault", "FaultInjector"]


@dataclass(frozen=True)
class NetworkFault:
    """Degradation of a non-leaf equipment.

    ``severity`` is the health *loss*: health becomes ``1 - severity``.
    ``duration`` counts ticks; ``None`` means until explicitly cleared.
    """

    node: str
    severity: float
    duration: Optional[int] = None

    def __post_init__(self) -> None:
        if not 0.0 < self.severity <= 1.0:
            raise ConfigurationError(
                f"severity must lie in (0, 1], got {self.severity!r}"
            )
        if self.duration is not None and self.duration < 1:
            raise ConfigurationError(
                f"duration must be >= 1 or None, got {self.duration!r}"
            )


@dataclass(frozen=True)
class GatewayFault:
    """Degradation of one gateway's own hardware or software."""

    device_id: int
    severity: float
    duration: Optional[int] = None

    def __post_init__(self) -> None:
        if not 0.0 < self.severity <= 1.0:
            raise ConfigurationError(
                f"severity must lie in (0, 1], got {self.severity!r}"
            )
        if self.duration is not None and self.duration < 1:
            raise ConfigurationError(
                f"duration must be >= 1 or None, got {self.duration!r}"
            )


@dataclass
class _ActiveFault:
    node: str
    severity: float
    remaining: Optional[int]


class FaultInjector:
    """Schedules faults and keeps topology health in sync per tick."""

    def __init__(self, topology: IspTopology) -> None:
        self._topology = topology
        self._active: List[_ActiveFault] = []

    @property
    def active_nodes(self) -> Set[str]:
        """Nodes currently affected by at least one fault."""
        return {fault.node for fault in self._active}

    def inject(self, fault) -> None:
        """Schedule a :class:`NetworkFault` or :class:`GatewayFault`."""
        if isinstance(fault, NetworkFault):
            node = fault.node
            if node not in self._topology.graph:
                raise UnknownDeviceError(f"unknown node {node!r}")
            if self._topology.kind(node) is NodeKind.GATEWAY:
                raise ConfigurationError(
                    "NetworkFault targets infrastructure; use GatewayFault "
                    f"for {node!r}"
                )
        elif isinstance(fault, GatewayFault):
            node = self._topology.gateway_name(fault.device_id)
        else:
            raise ConfigurationError(f"unsupported fault type {type(fault)!r}")
        self._active.append(
            _ActiveFault(node=node, severity=fault.severity, remaining=fault.duration)
        )

    def clear(self, node: str) -> None:
        """Remove every fault affecting a node."""
        self._active = [fault for fault in self._active if fault.node != node]

    def tick(self) -> None:
        """Apply active faults to topology health and age them one tick.

        Multiple faults on one node compose multiplicatively (two
        half-degradations leave 25% health), matching how independent
        impairments stack on a real path.
        """
        self._topology.reset_health()
        for fault in self._active:
            current = self._topology.health(fault.node)
            self._topology.set_health(fault.node, current * (1.0 - fault.severity))
        for fault in self._active:
            if fault.remaining is not None:
                fault.remaining -= 1
        self._active = [
            fault
            for fault in self._active
            if fault.remaining is None or fault.remaining > 0
        ]
