"""Evaluation metrics for characterization quality and cost.

Implements exactly the quantities the paper's evaluation reports:

* the repartition of ``A_k`` into ``I_k`` / ``M_k`` (Theorem 6) / ``U_k``
  and the extra massive devices recovered by Theorem 7 (Table II);
* the per-set average operation counts (Table III);
* the unresolved ratio ``|U_k| / |A_k|`` (Figures 7 and 9);
* the missed-detection rate — devices the model claims massive whose real
  error was isolated (Figure 8);

plus the standard precision/recall bookkeeping used by the baseline
comparisons, and *detection-plane* accuracy
(:func:`detection_accuracy`): precision / recall / detection latency of
the flags ``a_k(j)`` themselves against injected incident ground truth
(:class:`~repro.io.synthetic.Incident` windows), the per-family scores
``examples/detector_comparison.py`` sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.core.errors import ConfigurationError
from repro.core.types import AnomalyType, Characterization, DecisionRule

__all__ = [
    "StepMetrics",
    "ConfusionCounts",
    "DetectionAccuracy",
    "compute_step_metrics",
    "confusion_against_truth",
    "detection_accuracy",
    "MetricAccumulator",
]


@dataclass(frozen=True)
class StepMetrics:
    """Classification statistics of one characterized interval."""

    flagged: int
    isolated: int
    massive_theorem6: int
    massive_theorem7: int
    unresolved: int

    @property
    def massive(self) -> int:
        """All devices decided massive (Theorem 6 plus Theorem 7)."""
        return self.massive_theorem6 + self.massive_theorem7

    @property
    def unresolved_ratio(self) -> float:
        """``|U_k| / |A_k|`` — the Figure 7 / Figure 9 ordinate."""
        return self.unresolved / self.flagged if self.flagged else 0.0

    def fraction(self, what: str) -> float:
        """Return one repartition entry as a fraction of ``|A_k|``."""
        value = {
            "isolated": self.isolated,
            "massive_theorem6": self.massive_theorem6,
            "massive_theorem7": self.massive_theorem7,
            "massive": self.massive,
            "unresolved": self.unresolved,
        }[what]
        return value / self.flagged if self.flagged else 0.0


def compute_step_metrics(results: Mapping[int, Characterization]) -> StepMetrics:
    """Summarize one interval's characterization results."""
    isolated = massive6 = massive7 = unresolved = 0
    for verdict in results.values():
        if verdict.anomaly_type is AnomalyType.ISOLATED:
            isolated += 1
        elif verdict.anomaly_type is AnomalyType.MASSIVE:
            if verdict.rule is DecisionRule.THEOREM_7:
                massive7 += 1
            else:
                massive6 += 1
        else:
            unresolved += 1
    return StepMetrics(
        flagged=len(results),
        isolated=isolated,
        massive_theorem6=massive6,
        massive_theorem7=massive7,
        unresolved=unresolved,
    )


@dataclass(frozen=True)
class ConfusionCounts:
    """Model verdicts against ground truth (massive = positive class).

    Unresolved devices are counted separately: the model deliberately
    abstains on them, and folding them into either error type would
    misrepresent both.
    """

    true_massive: int
    true_isolated: int
    false_massive: int   # claimed massive, truly isolated (Figure 8)
    false_isolated: int  # claimed isolated, truly massive
    abstained: int       # unresolved

    @property
    def missed_detection_rate(self) -> float:
        """Figure 8's ordinate: falsely-massive devices over ``|A_k|``."""
        total = (
            self.true_massive
            + self.true_isolated
            + self.false_massive
            + self.false_isolated
            + self.abstained
        )
        return self.false_massive / total if total else 0.0

    @property
    def massive_precision(self) -> float:
        """Precision of the massive verdicts."""
        claimed = self.true_massive + self.false_massive
        return self.true_massive / claimed if claimed else 1.0

    @property
    def massive_recall(self) -> float:
        """Recall of the massive verdicts (abstentions count against)."""
        actual = self.true_massive + self.false_isolated + self.abstained_massive
        return self.true_massive / actual if actual else 1.0

    # Recall needs to know how many abstentions were truly massive; kept
    # as an extra field with a default for backward compatibility.
    abstained_massive: int = 0


def confusion_against_truth(
    results: Mapping[int, Characterization],
    truly_massive: FrozenSet[int],
) -> ConfusionCounts:
    """Score verdicts against the ledger's ground truth."""
    tm = ti = fm = fi = ab = abm = 0
    for device, verdict in results.items():
        really_massive = device in truly_massive
        if verdict.anomaly_type is AnomalyType.UNRESOLVED:
            ab += 1
            if really_massive:
                abm += 1
        elif verdict.anomaly_type is AnomalyType.MASSIVE:
            if really_massive:
                tm += 1
            else:
                fm += 1
        else:
            if really_massive:
                fi += 1
            else:
                ti += 1
    return ConfusionCounts(
        true_massive=tm,
        true_isolated=ti,
        false_massive=fm,
        false_isolated=fi,
        abstained=ab,
        abstained_massive=abm,
    )


@dataclass(frozen=True)
class DetectionAccuracy:
    """Flag quality against injected incident ground truth.

    Device-*step* counts score the flag stream sample by sample: a
    ``(device, step)`` pair is *positive* when some incident degrades
    that device at that step.  Incident-level counts score event
    coverage: an incident is *detected* when at least one of its
    impacted devices is flagged inside its window, and its *latency* is
    the gap (in steps) between the incident's start and the first such
    flag.
    """

    true_positives: int      # flagged device-steps inside incident windows
    false_positives: int     # flagged device-steps with no active incident
    false_negatives: int     # degraded device-steps that went unflagged
    detected_incidents: int
    total_incidents: int
    latencies: Tuple[int, ...]  # per detected incident, in steps

    @property
    def precision(self) -> float:
        """Fraction of raised flags that pointed at a real degradation."""
        claimed = self.true_positives + self.false_positives
        return self.true_positives / claimed if claimed else 1.0

    @property
    def recall(self) -> float:
        """Fraction of degraded device-steps that were flagged."""
        actual = self.true_positives + self.false_negatives
        return self.true_positives / actual if actual else 1.0

    @property
    def f1(self) -> float:
        """Harmonic mean of precision and recall."""
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if p + r else 0.0

    @property
    def incident_recall(self) -> float:
        """Fraction of incidents detected at all."""
        return (
            self.detected_incidents / self.total_incidents
            if self.total_incidents
            else 1.0
        )

    @property
    def mean_latency(self) -> float:
        """Average detection latency over the detected incidents."""
        return (
            sum(self.latencies) / len(self.latencies) if self.latencies else 0.0
        )

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict view for reports and serialization."""
        return {
            "precision": self.precision,
            "recall": self.recall,
            "f1": self.f1,
            "incident_recall": self.incident_recall,
            "mean_latency": self.mean_latency,
            "true_positives": self.true_positives,
            "false_positives": self.false_positives,
            "false_negatives": self.false_negatives,
            "detected_incidents": self.detected_incidents,
            "total_incidents": self.total_incidents,
        }


def detection_accuracy(
    flags: Sequence[Iterable[int]],
    incidents: Sequence,
    *,
    warmup_steps: int = 0,
) -> DetectionAccuracy:
    """Score a flag stream against scheduled incident ground truth.

    Parameters
    ----------
    flags:
        Per trace step, the iterable of flagged device ids — e.g.
        ``[r.flagged for r in replay_trace(...)]`` or the service ticks'
        flagged tuples.
    incidents:
        The :class:`~repro.io.synthetic.Incident` schedule the trace was
        generated with (anything exposing ``start`` / ``duration`` /
        ``devices`` / ``active_at`` works).
    warmup_steps:
        Leading steps excluded from device-step scoring (detectors are
        still warming up and are expected silent); incidents starting
        inside the warm-up still count toward incident recall.
    """
    if warmup_steps < 0:
        raise ConfigurationError(
            f"warmup_steps must be >= 0, got {warmup_steps!r}"
        )
    steps = len(flags)
    flagged_sets = [frozenset(int(j) for j in step_flags) for step_flags in flags]
    tp = fp = fn = 0
    for k in range(warmup_steps, steps):
        positives: Set[int] = set()
        for incident in incidents:
            if incident.active_at(k):
                positives.update(incident.devices)
        flagged = flagged_sets[k]
        tp += len(flagged & positives)
        fp += len(flagged - positives)
        fn += len(positives - flagged)
    detected = 0
    latencies = []
    for incident in incidents:
        window = range(
            incident.start, min(incident.start + incident.duration, steps)
        )
        impacted = frozenset(incident.devices)
        for k in window:
            if flagged_sets[k] & impacted:
                detected += 1
                latencies.append(k - incident.start)
                break
    return DetectionAccuracy(
        true_positives=tp,
        false_positives=fp,
        false_negatives=fn,
        detected_incidents=detected,
        total_incidents=len(incidents),
        latencies=tuple(latencies),
    )


@dataclass
class MetricAccumulator:
    """Average step metrics and per-set costs across many intervals.

    Feeding it characterized steps accumulates the Table II repartition,
    the Table III cost averages and the figure ratios in one pass.
    """

    steps: int = 0
    flagged: int = 0
    isolated: int = 0
    massive6: int = 0
    massive7: int = 0
    unresolved: int = 0
    false_massive: int = 0
    cost_sums: Dict[str, float] = field(
        default_factory=lambda: {
            "isolated_maximal_motions": 0.0,
            "massive_dense_motions": 0.0,
            "unresolved_tested_collections": 0.0,
            "massive7_tested_collections": 0.0,
            "unresolved_total_collections": 0.0,
        }
    )
    cost_counts: Dict[str, int] = field(
        default_factory=lambda: {
            "isolated_maximal_motions": 0,
            "massive_dense_motions": 0,
            "unresolved_tested_collections": 0,
            "massive7_tested_collections": 0,
            "unresolved_total_collections": 0,
        }
    )

    def add_step(
        self,
        results: Mapping[int, Characterization],
        truly_massive: Optional[FrozenSet[int]] = None,
    ) -> StepMetrics:
        """Fold one interval in; returns its own :class:`StepMetrics`."""
        metrics = compute_step_metrics(results)
        self.steps += 1
        self.flagged += metrics.flagged
        self.isolated += metrics.isolated
        self.massive6 += metrics.massive_theorem6
        self.massive7 += metrics.massive_theorem7
        self.unresolved += metrics.unresolved
        if truly_massive is not None:
            for device, verdict in results.items():
                if (
                    verdict.anomaly_type is AnomalyType.MASSIVE
                    and device not in truly_massive
                ):
                    self.false_massive += 1
        for verdict in results.values():
            cost = verdict.cost
            if verdict.anomaly_type is AnomalyType.ISOLATED:
                self._add_cost("isolated_maximal_motions", cost.maximal_motions)
            elif verdict.anomaly_type is AnomalyType.MASSIVE:
                self._add_cost("massive_dense_motions", cost.dense_motions)
                if verdict.rule is DecisionRule.THEOREM_7:
                    self._add_cost(
                        "massive7_tested_collections", cost.tested_collections
                    )
            else:
                self._add_cost(
                    "unresolved_tested_collections", cost.tested_collections
                )
                if cost.total_collections is not None:
                    self._add_cost(
                        "unresolved_total_collections", cost.total_collections
                    )
        return metrics

    def _add_cost(self, key: str, value: float) -> None:
        self.cost_sums[key] += value
        self.cost_counts[key] += 1

    def average_cost(self, key: str) -> float:
        """Average of one cost column over the devices that incurred it."""
        count = self.cost_counts[key]
        return self.cost_sums[key] / count if count else 0.0

    @property
    def massive(self) -> int:
        """Total devices decided massive across all steps."""
        return self.massive6 + self.massive7

    def fraction(self, what: str) -> float:
        """Aggregate repartition entry as a fraction of all flagged."""
        value = {
            "isolated": self.isolated,
            "massive_theorem6": self.massive6,
            "massive_theorem7": self.massive7,
            "massive": self.massive,
            "unresolved": self.unresolved,
            "false_massive": self.false_massive,
        }[what]
        return value / self.flagged if self.flagged else 0.0

    @property
    def mean_flagged(self) -> float:
        """Average ``|A_k|`` per interval."""
        return self.flagged / self.steps if self.steps else 0.0
