"""Dimensioning of ``r`` and ``tau`` (Section VII-A, Figure 6).

The paper tunes the consistency radius and density threshold so that the
probability of more than ``tau`` *independent* isolated errors hitting
devices within ``2r`` of each other is negligible.  Two random variables
drive the analysis, for a device ``j`` with vicinity
``V = {x : ||x - p(j)|| <= 2r}``:

* ``N_r(j)`` — number of other devices inside ``V``; binomial
  ``B(n-1, q_j)`` with ``q_j`` the probability a uniform device lands in
  ``V``;
* ``F_r(j)`` — number of *isolated-error-impacted* devices inside ``V``;
  conditioned on ``N_r(j) = m`` it is binomial ``B(m, b)`` with ``b`` the
  per-device isolated-error probability.

This module evaluates the closed forms the paper plots:

    ``P{N_r(j) <= m}``                                       (Figure 6a)
    ``P{F_r(j) <= tau}
        = sum_m P{F <= tau | N = m} P{N = m}``               (Figure 6b)

and offers :func:`recommend_parameters`, the tuning loop "given a small
constant eps, r and tau are tuned so that P{F_r(j) > tau} < eps".

Boundary handling: a device near the cube boundary has a clipped
vicinity.  ``q`` can be computed for an interior device (``(4r)^d``, what
the paper's curves match) or averaged over a uniform position
(``(4r - 4r^2)^d`` per dimension via the standard overlap integral).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np
from scipy import stats

from repro.core.errors import ConfigurationError
from repro.core.geometry import validate_radius

__all__ = [
    "vicinity_probability",
    "vicinity_size_cdf",
    "vicinity_size_pmf",
    "expected_vicinity_size",
    "isolated_overflow_probability",
    "isolated_containment_probability",
    "recommend_parameters",
    "DimensioningPoint",
]


def vicinity_probability(
    r: float,
    dim: int,
    *,
    boundary: str = "interior",
    radius_factor: float = 2.0,
) -> float:
    """Probability ``q`` that a uniform device lies in the vicinity.

    The vicinity is the uniform-norm ball of radius ``radius_factor * r``
    (the paper's Section VII-A vicinity uses ``2r``; see below).

    ``boundary='interior'`` assumes the reference device sits far from
    every face (vicinity volume ``(2 * radius_factor * r)^d``, capped at
    1); ``boundary='average'`` integrates the clipped overlap over a
    uniform reference position (per-dimension ``2s - s^2`` with
    ``s = 2 * radius_factor * r``).

    **Reproduction note.**  The paper's Figure 6(a) curves match the
    ``2r`` vicinity (``q = (4r)^d``), but its Figure 6(b) values (e.g.
    ``P{F_r(j) <= 2} ≈ 0.997`` at ``n = 15000, r = 0.03, b = 0.005``)
    only come out with ``q = (2r)^d`` — the volume of a radius-``r``
    error ball, which is the natural collision region for devices
    impacted by the *same* isolated error.  Pass ``radius_factor=1`` to
    reproduce Figure 6(b); EXPERIMENTS.md records the discrepancy.
    """
    validate_radius(r)
    if dim < 1:
        raise ConfigurationError(f"dim must be >= 1, got {dim!r}")
    if radius_factor <= 0:
        raise ConfigurationError(
            f"radius_factor must be positive, got {radius_factor!r}"
        )
    side = min(2.0 * radius_factor * r, 1.0)
    if boundary == "interior":
        per_dim = side
    elif boundary == "average":
        # E[|[u - rho, u + rho] ∩ [0, 1]|] for uniform u and rho = side/2
        # is 2*rho - rho^2 = side - side^2 / 4.
        per_dim = side - side * side / 4.0
    else:
        raise ConfigurationError(
            f"boundary must be 'interior' or 'average', got {boundary!r}"
        )
    return float(per_dim**dim)


def vicinity_size_pmf(
    n: int,
    r: float,
    dim: int = 2,
    *,
    boundary: str = "interior",
    radius_factor: float = 2.0,
) -> np.ndarray:
    """PMF of ``N_r(j)`` over ``0..n-1`` (binomial ``B(n-1, q)``)."""
    if n < 1:
        raise ConfigurationError(f"n must be >= 1, got {n!r}")
    q = vicinity_probability(r, dim, boundary=boundary, radius_factor=radius_factor)
    support = np.arange(n)
    return stats.binom.pmf(support, n - 1, q)


def vicinity_size_cdf(
    n: int,
    r: float,
    m: Sequence[int],
    dim: int = 2,
    *,
    boundary: str = "interior",
    radius_factor: float = 2.0,
) -> np.ndarray:
    """``P{N_r(j) <= m}`` for each entry of ``m`` (Figure 6a's curves)."""
    q = vicinity_probability(r, dim, boundary=boundary, radius_factor=radius_factor)
    return stats.binom.cdf(np.asarray(m, dtype=float), n - 1, q)


def expected_vicinity_size(
    n: int,
    r: float,
    dim: int = 2,
    *,
    boundary: str = "interior",
    radius_factor: float = 2.0,
) -> float:
    """``E[N_r(j)] = (n-1) q`` — the paper's "m logarithmic in n" knob."""
    return float(
        (n - 1)
        * vicinity_probability(r, dim, boundary=boundary, radius_factor=radius_factor)
    )


def isolated_containment_probability(
    n: int,
    r: float,
    tau: int,
    b: float,
    dim: int = 2,
    *,
    boundary: str = "interior",
    radius_factor: float = 1.0,
) -> float:
    """``P{F_r(j) <= tau}`` — Figure 6b's curves.

    Implements the paper's double sum

        ``sum_{m=0}^{n-1} sum_{l=0}^{tau} C(m,l) b^l (1-b)^{m-l}
          C(n-1,m) q^m (1-q)^{n-1-m}``

    but collapses it analytically: thinning a binomial is binomial, so
    ``F_r(j) ~ B(n-1, q b)`` and the double sum equals
    ``P{B(n-1, qb) <= tau}``.  (The tests verify the collapse against the
    literal double sum.)

    ``radius_factor`` defaults to 1 (error-ball volume ``(2r)^d``), which
    is what matches the paper's published Figure 6(b) values; see
    :func:`vicinity_probability`.
    """
    if not 0.0 <= b <= 1.0:
        raise ConfigurationError(f"b must lie in [0, 1], got {b!r}")
    if tau < 0:
        raise ConfigurationError(f"tau must be >= 0, got {tau!r}")
    q = vicinity_probability(r, dim, boundary=boundary, radius_factor=radius_factor)
    return float(stats.binom.cdf(tau, n - 1, q * b))


def isolated_overflow_probability(
    n: int,
    r: float,
    tau: int,
    b: float,
    dim: int = 2,
    *,
    boundary: str = "interior",
    radius_factor: float = 1.0,
) -> float:
    """``P{F_r(j) > tau}`` — the quantity the tuning drives below eps."""
    return 1.0 - isolated_containment_probability(
        n, r, tau, b, dim, boundary=boundary, radius_factor=radius_factor
    )


@dataclass(frozen=True)
class DimensioningPoint:
    """One admissible ``(r, tau)`` choice with its achieved guarantees."""

    r: float
    tau: int
    overflow_probability: float  # P{F_r(j) > tau}
    expected_vicinity: float     # E[N_r(j)]


def recommend_parameters(
    n: int,
    b: float,
    epsilon: float = 1e-3,
    dim: int = 2,
    *,
    taus: Sequence[int] = (2, 3, 4, 5),
    radii: Sequence[float] = tuple(x / 1000.0 for x in range(5, 120, 5)),
    boundary: str = "interior",
) -> List[DimensioningPoint]:
    """Enumerate ``(r, tau)`` pairs with ``P{F_r(j) > tau} < epsilon``.

    Mirrors the paper's tuning: among admissible pairs, smaller ``r``
    keeps neighbourhoods (and hence local computation) logarithmic in
    ``n``, while larger ``r`` tolerates coarser QoS measurements.  The
    returned list is sorted by expected vicinity size, the paper's chosen
    efficiency proxy; its first entry is the recommended operating point.
    """
    if epsilon <= 0 or epsilon >= 1:
        raise ConfigurationError(f"epsilon must lie in (0, 1), got {epsilon!r}")
    points: List[DimensioningPoint] = []
    for r in radii:
        for tau in taus:
            if not 1 <= tau <= n - 1:
                continue
            overflow = isolated_overflow_probability(
                n, r, tau, b, dim, boundary=boundary
            )
            if overflow < epsilon:
                points.append(
                    DimensioningPoint(
                        r=r,
                        tau=tau,
                        overflow_probability=overflow,
                        expected_vicinity=expected_vicinity_size(
                            n, r, dim, boundary=boundary
                        ),
                    )
                )
    points.sort(key=lambda p: (p.expected_vicinity, p.tau, p.r))
    return points
