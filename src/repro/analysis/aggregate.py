"""Aggregation helpers: means, confidence intervals, series assembly.

Experiments repeat every parameter cell over several seeds; these helpers
turn the per-seed values into the mean ± confidence-half-width entries the
EXPERIMENTS.md tables report.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from scipy import stats

from repro.core.errors import ConfigurationError

__all__ = ["SummaryStat", "summarize", "series_table"]


@dataclass(frozen=True)
class SummaryStat:
    """Mean, standard deviation and a confidence half-width of a sample."""

    mean: float
    std: float
    count: int
    ci_half_width: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.mean:.4g} ± {self.ci_half_width:.2g} (n={self.count})"


def summarize(values: Sequence[float], *, confidence: float = 0.95) -> SummaryStat:
    """Mean ± Student-t confidence half-width of a sample.

    Degenerate samples (size < 2) report a zero half-width rather than
    NaN so tables stay printable.
    """
    data = [float(v) for v in values]
    if not data:
        raise ConfigurationError("cannot summarize an empty sample")
    if not 0.0 < confidence < 1.0:
        raise ConfigurationError(f"confidence must lie in (0,1), got {confidence!r}")
    n = len(data)
    mean = sum(data) / n
    if n < 2:
        return SummaryStat(mean=mean, std=0.0, count=n, ci_half_width=0.0)
    var = sum((x - mean) ** 2 for x in data) / (n - 1)
    std = math.sqrt(var)
    tcrit = float(stats.t.ppf(0.5 + confidence / 2.0, n - 1))
    return SummaryStat(
        mean=mean, std=std, count=n, ci_half_width=tcrit * std / math.sqrt(n)
    )


def series_table(
    cells: Dict[Tuple[float, float], Sequence[float]],
    *,
    confidence: float = 0.95,
) -> List[Tuple[float, float, SummaryStat]]:
    """Summarize a ``{(x, group): samples}`` sweep into sorted rows.

    Returns ``(x, group, SummaryStat)`` tuples ordered by group then x —
    the layout of the figure series in EXPERIMENTS.md.
    """
    rows = [
        (x, group, summarize(samples, confidence=confidence))
        for (x, group), samples in cells.items()
    ]
    rows.sort(key=lambda row: (row[1], row[0]))
    return rows
