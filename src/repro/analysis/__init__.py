"""Analytics: dimensioning mathematics and evaluation metrics.

* :mod:`repro.analysis.dimensioning` — the closed-form binomial analysis
  behind Figure 6 and the ``(r, tau)`` tuning rule of Section VII-A;
* :mod:`repro.analysis.metrics` — Table II/III and Figure 7–9 quantities;
* :mod:`repro.analysis.aggregate` — mean/CI aggregation across seeds.
"""

from repro.analysis.aggregate import SummaryStat, series_table, summarize
from repro.analysis.dimensioning import (
    DimensioningPoint,
    expected_vicinity_size,
    isolated_containment_probability,
    isolated_overflow_probability,
    recommend_parameters,
    vicinity_probability,
    vicinity_size_cdf,
    vicinity_size_pmf,
)
from repro.analysis.metrics import (
    ConfusionCounts,
    DetectionAccuracy,
    MetricAccumulator,
    StepMetrics,
    compute_step_metrics,
    confusion_against_truth,
    detection_accuracy,
)

__all__ = [
    "ConfusionCounts",
    "DetectionAccuracy",
    "DimensioningPoint",
    "MetricAccumulator",
    "StepMetrics",
    "SummaryStat",
    "compute_step_metrics",
    "confusion_against_truth",
    "detection_accuracy",
    "expected_vicinity_size",
    "isolated_containment_probability",
    "isolated_overflow_probability",
    "recommend_parameters",
    "series_table",
    "summarize",
    "vicinity_probability",
    "vicinity_size_cdf",
    "vicinity_size_pmf",
]
