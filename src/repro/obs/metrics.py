"""Metric primitives: counters, gauges, fixed-bucket histograms, registry.

The smallest useful slice of the Prometheus data model, with none of the
client-library machinery:

* a metric *family* has a name, a help string and a fixed tuple of label
  names; :meth:`MetricFamily.labels` resolves one labelled *child* per
  distinct label-value tuple (families without labels act as their own
  single child, so ``registry.counter("x").inc()`` just works);
* :class:`Counter` children only go up, :class:`Gauge` children move
  freely, :class:`Histogram` children bin observations into *fixed*
  upper-bound buckets (cumulative ``le`` semantics on export) and keep a
  running sum/count — p50/p95/p99 are derivable from any snapshot by
  linear interpolation (:meth:`Histogram.quantile`), which is exactly
  what ``histogram_quantile`` does server-side;
* a :class:`Registry` owns families, hands them out idempotently (same
  name, kind and label names → same family; a mismatch is a
  configuration error), and :meth:`Registry.snapshot`\\ s everything to
  plain dicts — the one representation both exposition formats render.

A hard per-family cardinality cap (``max_label_sets``) turns the classic
"label value per device id" mistake into an immediate
:class:`~repro.core.errors.ConfigurationError` instead of a slow OOM.

Everything is thread-safe: the export server thread snapshots while the
service thread writes.  Mutation cost is one lock acquire plus a float
add — invisible next to a characterization tick, and the tracer's
disabled path never reaches these objects at all.
"""

from __future__ import annotations

import bisect
import threading
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.core.errors import ConfigurationError

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "Registry",
    "get_registry",
]

#: Default histogram upper bounds (seconds), tuned for tick-stage spans:
#: sub-millisecond store work up to multi-second full recomputes.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)


class Counter:
    """Monotonically increasing value (one labelled child)."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ConfigurationError(
                f"counters only go up; cannot inc by {amount!r}"
            )
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        """Current value."""
        return self._value


class Gauge:
    """Instantaneous value that can move in either direction."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        """Replace the value."""
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Move the value up by ``amount``."""
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        """Move the value down by ``amount``."""
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        """Current value."""
        return self._value


class Histogram:
    """Fixed-bucket histogram with a running sum and count.

    ``buckets`` are *upper bounds* in ascending order; an implicit
    ``+Inf`` bucket catches everything above the last bound.  Bucket
    counts are stored non-cumulatively and accumulated at export time
    (Prometheus ``le`` buckets are cumulative).  Boundary semantics match
    Prometheus: an observation equal to a bound lands in that bound's
    bucket (``le`` is *less-or-equal*).
    """

    __slots__ = ("_lock", "bounds", "counts", "sum", "count")

    def __init__(self, buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ConfigurationError("histogram needs at least one bucket")
        if list(bounds) != sorted(set(bounds)):
            raise ConfigurationError(
                f"histogram buckets must be strictly increasing, got {bounds}"
            )
        self._lock = threading.Lock()
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)  # +1 for the +Inf bucket
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        """Record one observation."""
        index = bisect.bisect_left(self.bounds, value)
        with self._lock:
            self.counts[index] += 1
            self.sum += value
            self.count += 1

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile by intra-bucket interpolation.

        Mirrors PromQL's ``histogram_quantile``: linear within the
        target bucket, the last finite bound for the ``+Inf`` bucket,
        ``nan`` with no observations.
        """
        if not 0.0 <= q <= 1.0:
            raise ConfigurationError(f"quantile must lie in [0, 1], got {q!r}")
        with self._lock:
            total = self.count
            counts = list(self.counts)
        if total == 0:
            return float("nan")
        rank = q * total
        cumulative = 0
        for index, bucket_count in enumerate(counts):
            cumulative += bucket_count
            if cumulative >= rank and bucket_count:
                if index >= len(self.bounds):
                    return self.bounds[-1]
                lower = self.bounds[index - 1] if index else 0.0
                upper = self.bounds[index]
                into = (rank - (cumulative - bucket_count)) / bucket_count
                return lower + (upper - lower) * into
        return self.bounds[-1]  # pragma: no cover - rank <= total always hits

    def snapshot(self) -> Dict[str, object]:
        """Plain-dict view: per-bound counts, +Inf overflow, sum, count."""
        with self._lock:
            counts = list(self.counts)
            total = self.count
            total_sum = self.sum
        return {
            "buckets": {
                str(bound): count
                for bound, count in zip(self.bounds, counts)
            },
            "inf": counts[-1],
            "sum": total_sum,
            "count": total,
        }


#: kind name -> child class
_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricFamily:
    """One named metric and its labelled children.

    A family with no label names *is* its single child: every child
    method (``inc``/``set``/``observe``/…) proxies to
    ``labels()``-with-no-arguments, so unlabelled metrics skip the
    resolution step at call sites.
    """

    def __init__(
        self,
        name: str,
        kind: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        *,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        max_label_sets: int = 1024,
    ) -> None:
        if kind not in _KINDS:
            raise ConfigurationError(f"unknown metric kind {kind!r}")
        self.name = name
        self.kind = kind
        self.help = help
        self.labelnames = tuple(labelnames)
        self._buckets = tuple(buckets)
        self._max_label_sets = max_label_sets
        self._lock = threading.Lock()
        self._children: Dict[Tuple[str, ...], object] = {}
        if not self.labelnames:
            self._children[()] = self._make_child()

    def _make_child(self):
        if self.kind == "histogram":
            return Histogram(self._buckets)
        return _KINDS[self.kind]()

    def labels(self, **labels: str):
        """Resolve (creating if needed) the child for one label set."""
        if set(labels) != set(self.labelnames):
            raise ConfigurationError(
                f"{self.name} takes labels {self.labelnames}, "
                f"got {tuple(sorted(labels))}"
            )
        key = tuple(str(labels[name]) for name in self.labelnames)
        child = self._children.get(key)
        if child is None:
            with self._lock:
                child = self._children.get(key)
                if child is None:
                    if len(self._children) >= self._max_label_sets:
                        raise ConfigurationError(
                            f"{self.name} exceeded {self._max_label_sets} "
                            "label sets — a label value is probably "
                            "carrying an unbounded id"
                        )
                    child = self._children[key] = self._make_child()
        return child

    # -- unlabelled proxies -------------------------------------------
    def _sole_child(self):
        if self.labelnames:
            raise ConfigurationError(
                f"{self.name} is labelled by {self.labelnames}; "
                "resolve a child with .labels(...)"
            )
        return self._children[()]

    def inc(self, amount: float = 1.0) -> None:
        self._sole_child().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._sole_child().dec(amount)

    def set(self, value: float) -> None:
        self._sole_child().set(value)

    def observe(self, value: float) -> None:
        self._sole_child().observe(value)

    def quantile(self, q: float) -> float:
        return self._sole_child().quantile(q)

    @property
    def value(self) -> float:
        return self._sole_child().value

    # -- export --------------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """Plain-dict view of the family and every child."""
        with self._lock:
            items = list(self._children.items())
        samples: List[Dict[str, object]] = []
        for key, child in items:
            labels = dict(zip(self.labelnames, key))
            if self.kind == "histogram":
                samples.append({"labels": labels, **child.snapshot()})
            else:
                samples.append({"labels": labels, "value": child.value})
        return {
            "kind": self.kind,
            "help": self.help,
            "labelnames": list(self.labelnames),
            "samples": samples,
        }


class Registry:
    """Owns metric families; snapshots them all to plain dicts.

    Family getters are idempotent so instrumented modules never
    coordinate creation order: the first caller creates, later callers
    (with a matching kind and label names) receive the same family.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: Dict[str, MetricFamily] = {}

    def _family(self, name: str, kind: str, help: str, labelnames, **kwargs):
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = self._families[name] = MetricFamily(
                    name, kind, help, labelnames, **kwargs
                )
            elif family.kind != kind or family.labelnames != tuple(labelnames):
                raise ConfigurationError(
                    f"metric {name!r} already registered as {family.kind} "
                    f"with labels {family.labelnames}; cannot re-register "
                    f"as {kind} with labels {tuple(labelnames)}"
                )
            return family

    def counter(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        *,
        max_label_sets: int = 1024,
    ) -> MetricFamily:
        """Get-or-create a counter family."""
        return self._family(
            name, "counter", help, labelnames, max_label_sets=max_label_sets
        )

    def gauge(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        *,
        max_label_sets: int = 1024,
    ) -> MetricFamily:
        """Get-or-create a gauge family."""
        return self._family(
            name, "gauge", help, labelnames, max_label_sets=max_label_sets
        )

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        *,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        max_label_sets: int = 1024,
    ) -> MetricFamily:
        """Get-or-create a histogram family with fixed ``buckets``."""
        return self._family(
            name,
            "histogram",
            help,
            labelnames,
            buckets=buckets,
            max_label_sets=max_label_sets,
        )

    def families(self) -> Iterable[MetricFamily]:
        """The registered families, in registration order."""
        with self._lock:
            return list(self._families.values())

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Plain-dict view of every family — the export plane's input."""
        return {family.name: family.snapshot() for family in self.families()}


#: The process-global registry instrumented modules default to.
_GLOBAL_REGISTRY = Registry()


def get_registry() -> Registry:
    """The process-global :class:`Registry`."""
    return _GLOBAL_REGISTRY


def _reset_global_registry() -> Registry:
    """Swap in a fresh global registry (test isolation hook).

    Returns the previous registry.  Long-lived objects keep the family
    references they already resolved, so this only isolates *newly*
    constructed instruments — exactly what per-test construction wants.
    """
    global _GLOBAL_REGISTRY
    previous = _GLOBAL_REGISTRY
    _GLOBAL_REGISTRY = Registry()
    return previous
