"""Stage spans: nestable timing contexts feeding the metric registry.

A :class:`Tracer` times named *stages* of a pipeline::

    with tracer.span("detect"):
        bank.observe_batch(qos)

Each completed span lands in two places:

* the registry histogram ``repro_stage_seconds{stage=...}`` — the
  continuously exported latency distribution (p50/p95/p99 derivable
  from any snapshot);
* the tracer's *stage accumulator*, a plain ``{stage: seconds}`` dict
  the owning pipeline drains once per tick
  (:meth:`Tracer.drain_stages`) to attach a ``stage_seconds`` breakdown
  to its tick result.

Spans nest freely — an enclosing span's time includes its children's
(stages are recorded under their own names, so a nested breakdown never
changes the keys callers see).  Seconds accumulate per stage between
drains, so a stage entered many times in one tick (per-worker
round-trips, segmented drains) reports its per-tick total.

The disabled path is the design constraint: ``Tracer(enabled=False)``
makes :meth:`span` return one shared no-op context manager — no clock
reads, no dict writes, no histogram — benched at well under the 2%
tick-overhead budget (``benchmarks/test_bench_obs.py``).
"""

from __future__ import annotations

import time
from typing import Dict, Optional

from repro.obs.metrics import DEFAULT_BUCKETS, Registry, get_registry

__all__ = ["Span", "Tracer", "get_tracer"]

#: Histogram family every tracer records completed spans into.
STAGE_HISTOGRAM = "repro_stage_seconds"


class _NullSpan:
    """The shared no-op context manager of a disabled tracer."""

    __slots__ = ()
    seconds = 0.0

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        return None


_NULL_SPAN = _NullSpan()


class Span:
    """One live timing context; exposes its duration as ``seconds``."""

    __slots__ = ("_tracer", "stage", "seconds", "_start")

    def __init__(self, tracer: "Tracer", stage: str) -> None:
        self._tracer = tracer
        self.stage = stage
        self.seconds = 0.0
        self._start = 0.0

    def __enter__(self) -> "Span":
        self._tracer._depth += 1
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.seconds = time.perf_counter() - self._start
        self._tracer._record(self.stage, self.seconds)


class Tracer:
    """Times pipeline stages into a registry and a per-tick accumulator.

    Parameters
    ----------
    registry:
        Destination for the ``repro_stage_seconds`` histogram; defaults
        to the process-global registry.
    enabled:
        When false, :meth:`span` returns a shared no-op context manager
        and the tracer never reads a clock (the <2% overhead null path).
    buckets:
        Histogram upper bounds for the stage histogram (shared with any
        other tracer on the same registry — first creation wins).
    """

    def __init__(
        self,
        registry: Optional[Registry] = None,
        *,
        enabled: bool = True,
        buckets=DEFAULT_BUCKETS,
    ) -> None:
        self.enabled = enabled
        self._registry = registry or get_registry()
        self._histogram = self._registry.histogram(
            STAGE_HISTOGRAM,
            "Wall-clock seconds spent per pipeline stage",
            labelnames=("stage",),
            buckets=buckets,
        )
        self._stages: Dict[str, float] = {}
        self._depth = 0

    @property
    def registry(self) -> Registry:
        """The registry completed spans are recorded into."""
        return self._registry

    @property
    def depth(self) -> int:
        """Currently open spans (nesting level)."""
        return self._depth

    def span(self, stage: str):
        """A context manager timing one ``stage``; no-op when disabled."""
        if not self.enabled:
            return _NULL_SPAN
        return Span(self, stage)

    def _record(self, stage: str, seconds: float) -> None:
        self._depth -= 1
        self._stages[stage] = self._stages.get(stage, 0.0) + seconds
        self._histogram.labels(stage=stage).observe(seconds)

    def drain_stages(self) -> Dict[str, float]:
        """Return and reset the ``{stage: seconds}`` accumulated so far.

        The per-tick handoff: the owning pipeline drains at each tick
        boundary so every tick result carries exactly its own stage
        breakdown.  Registry histograms are cumulative and unaffected.
        """
        if not self._stages:
            return {}
        stages = self._stages
        self._stages = {}
        return stages


#: The process-global tracer shared instrumentation (worker pool,
#: network monitor) defaults to.
_GLOBAL_TRACER: Optional[Tracer] = None


def get_tracer() -> Tracer:
    """The process-global :class:`Tracer` (enabled, global registry).

    Created lazily so a test that swapped the global registry first
    gets a tracer bound to the registry it sees.
    """
    global _GLOBAL_TRACER
    if (
        _GLOBAL_TRACER is None
        or _GLOBAL_TRACER._registry is not get_registry()
    ):
        _GLOBAL_TRACER = Tracer()
    return _GLOBAL_TRACER
