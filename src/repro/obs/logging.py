"""JSON-lines structured logging for the serve/replay drivers.

One event per line, machine-parseable, with the fields the telemetry
plane keys on (tick / stage / shard) carried as plain JSON instead of
being interpolated into prose::

    {"event": "tick", "ts": 1733.21, "tick": 4, "applied": 102, ...}

:class:`JsonLinesLogger` is deliberately tiny — a sink-shaped writer,
not a logging framework: the CLI binds one static field set (run
parameters such as the shard count) at construction and emits per-tick
events through :meth:`event` or by attaching :meth:`tick_sink` to a
service.  ``jq``-friendly output replaces the bare per-tick prints when
``--log-json`` is given.
"""

from __future__ import annotations

import json
import sys
import time
from typing import IO, Dict, Optional

__all__ = ["JsonLinesLogger"]


class JsonLinesLogger:
    """Writes one JSON object per line to a stream.

    Parameters
    ----------
    stream:
        Destination (defaults to stderr so stdout tables and piped JSON
        reports stay uncorrupted).
    **static_fields:
        Fields stamped onto every event (e.g. ``shards=8``).
    """

    def __init__(
        self, stream: Optional[IO[str]] = None, **static_fields: object
    ) -> None:
        self._stream = stream if stream is not None else sys.stderr
        self._static = dict(static_fields)

    def event(self, event: str, **fields: object) -> None:
        """Emit one event line; static fields first, then ``fields``."""
        payload: Dict[str, object] = {
            "event": event,
            "ts": round(time.time(), 6),
        }
        payload.update(self._static)
        payload.update(fields)
        self._stream.write(json.dumps(payload, default=str) + "\n")
        self._stream.flush()

    def tick_sink(self, tick) -> None:
        """Service-sink adapter: logs one ``tick`` event per OnlineTick.

        Attach with ``service.add_sink(logger.tick_sink)``; stage
        timings are rounded to microseconds to keep lines compact.
        """
        self.event(
            "tick",
            tick=tick.tick,
            applied=tick.applied,
            flagged=len(tick.flagged),
            recomputed=len(tick.recomputed),
            reused=len(tick.reused),
            dirty_cells=tick.dirty_cells,
            stage_seconds={
                stage: round(seconds, 6)
                for stage, seconds in tick.stage_seconds.items()
            },
        )
