"""Telemetry spine: metric registry, stage spans, export plane, logging.

Three layers, each consumable alone (see DESIGN.md, "Observability"):

* :mod:`repro.obs.metrics` — :class:`Counter` / :class:`Gauge` /
  fixed-bucket :class:`Histogram` primitives with label support, owned
  by a :class:`Registry` that snapshots to plain dicts; a process-global
  registry (:func:`get_registry`) is what instrumented modules default
  to.
* :mod:`repro.obs.trace` — :class:`Tracer` stage spans: nestable timing
  contexts that feed both the per-stage latency histograms and each
  tick's ``stage_seconds`` breakdown; ``Tracer(enabled=False)`` is the
  guaranteed-cheap null path.
* :mod:`repro.obs.export` — Prometheus text exposition and JSON
  renderers over registry snapshots, plus the stdlib HTTP
  :class:`MetricsServer` behind ``serve --metrics-port``; and
  :mod:`repro.obs.logging` — JSON-lines structured logging for the
  drivers.
"""

from repro.obs.export import (
    MetricsServer,
    fetch_metrics,
    render_json,
    render_prometheus,
)
from repro.obs.logging import JsonLinesLogger
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    Registry,
    get_registry,
)
from repro.obs.trace import Span, Tracer, get_tracer

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "JsonLinesLogger",
    "MetricFamily",
    "MetricsServer",
    "Registry",
    "Span",
    "Tracer",
    "fetch_metrics",
    "get_registry",
    "get_tracer",
    "render_json",
    "render_prometheus",
]
