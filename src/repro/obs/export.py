"""Export plane: Prometheus text exposition, JSON snapshots, HTTP server.

Both renderers consume :meth:`~repro.obs.metrics.Registry.snapshot`
output, so anything a registry holds is exportable without the exporter
knowing what was instrumented:

* :func:`render_prometheus` — the text exposition format (version
  0.0.4) any Prometheus-compatible scraper ingests: ``# HELP`` /
  ``# TYPE`` headers, escaped label values, cumulative ``_bucket{le=}``
  series plus ``_sum`` / ``_count`` per histogram;
* :func:`render_json` — the same snapshot as JSON, with derived
  p50/p95/p99 attached to every histogram sample (handy for humans and
  for the ``repro metrics`` CLI);
* :class:`MetricsServer` — a stdlib :mod:`http.server` on a daemon
  thread serving ``/metrics`` (Prometheus), ``/metrics.json`` and
  ``/healthz``; ``port=0`` binds an ephemeral port, reported by
  :meth:`MetricsServer.start`.

No third-party dependency anywhere: the scrape endpoint of an always-on
service costs one stdlib thread.
"""

from __future__ import annotations

import json
import threading
import urllib.request
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, List, Optional

from repro.obs.metrics import Registry, get_registry

__all__ = [
    "MetricsServer",
    "fetch_metrics",
    "render_json",
    "render_prometheus",
]

#: Derived quantiles attached to histogram samples in the JSON format.
_QUANTILES = (0.5, 0.95, 0.99)


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _label_str(labels: Dict[str, str], extra: str = "") -> str:
    parts = [
        f'{name}="{_escape_label(str(value))}"'
        for name, value in labels.items()
    ]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _format_value(value: float) -> str:
    # Counters and bucket counts are conceptually integers; render them
    # without a trailing ".0" so the exposition stays diff-friendly.
    as_float = float(value)
    return str(int(as_float)) if as_float.is_integer() else repr(as_float)


def render_prometheus(registry: Optional[Registry] = None) -> str:
    """Render a registry snapshot in the Prometheus text format."""
    snapshot = (registry or get_registry()).snapshot()
    lines: List[str] = []
    for name, family in snapshot.items():
        kind = family["kind"]
        if family["help"]:
            lines.append(f"# HELP {name} {family['help']}")
        lines.append(f"# TYPE {name} {kind}")
        for sample in family["samples"]:
            labels = sample["labels"]
            if kind == "histogram":
                cumulative = 0
                for bound, count in sample["buckets"].items():
                    cumulative += count
                    le = 'le="' + bound + '"'
                    lines.append(
                        f"{name}_bucket{_label_str(labels, le)} {cumulative}"
                    )
                cumulative += sample["inf"]
                inf_le = 'le="+Inf"'
                lines.append(
                    f"{name}_bucket{_label_str(labels, inf_le)} {cumulative}"
                )
                lines.append(
                    f"{name}_sum{_label_str(labels)} {repr(sample['sum'])}"
                )
                lines.append(
                    f"{name}_count{_label_str(labels)} {sample['count']}"
                )
            else:
                lines.append(
                    f"{name}{_label_str(labels)} "
                    f"{_format_value(sample['value'])}"
                )
    return "\n".join(lines) + "\n"


def render_json(registry: Optional[Registry] = None, *, indent: int = 2) -> str:
    """Render a registry snapshot as JSON with derived quantiles."""
    reg = registry or get_registry()
    snapshot = reg.snapshot()
    for family in reg.families():
        if family.kind != "histogram":
            continue
        entry = snapshot[family.name]
        with family._lock:
            children = list(family._children.items())
        quantiles = {
            tuple(str(v) for v in key): {
                f"p{int(q * 100)}": child.quantile(q) for q in _QUANTILES
            }
            for key, child in children
        }
        for sample in entry["samples"]:
            key = tuple(
                str(sample["labels"][name]) for name in family.labelnames
            )
            derived = quantiles.get(key, {})
            # NaN (empty histogram) is not valid JSON; omit instead.
            sample["quantiles"] = {
                k: v for k, v in derived.items() if v == v
            }
    return json.dumps(snapshot, indent=indent, sort_keys=True)


class _Handler(BaseHTTPRequestHandler):
    """Routes /metrics, /metrics.json and /healthz over one registry."""

    registry: Registry  # set by MetricsServer on the handler subclass

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        path = self.path.split("?", 1)[0]
        if path == "/metrics":
            body = render_prometheus(self.registry).encode()
            content_type = "text/plain; version=0.0.4; charset=utf-8"
        elif path == "/metrics.json":
            body = render_json(self.registry).encode()
            content_type = "application/json"
        elif path == "/healthz":
            body = b'{"status": "ok"}\n'
            content_type = "application/json"
        else:
            self.send_error(404, "unknown path (try /metrics or /healthz)")
            return
        self.send_response(200)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, *args) -> None:  # pragma: no cover - silence
        """Scrapes every few seconds must not spam the service's stderr."""


class MetricsServer:
    """Background HTTP endpoint over one registry.

    ``start()`` binds (``port=0`` → ephemeral), serves on a daemon
    thread and returns the bound port; ``close()`` shuts down and joins.
    Also usable as a context manager.
    """

    def __init__(
        self,
        registry: Optional[Registry] = None,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self._registry = registry or get_registry()
        self._host = host
        self._port = port
        self._server: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    @property
    def port(self) -> int:
        """The bound port (0 until :meth:`start`)."""
        return self._port

    @property
    def url(self) -> str:
        """Base URL of the endpoint."""
        return f"http://{self._host}:{self._port}"

    def start(self) -> int:
        """Bind and serve in the background; returns the bound port."""
        if self._server is not None:
            return self._port
        handler = type("_BoundHandler", (_Handler,), {"registry": self._registry})
        self._server = ThreadingHTTPServer((self._host, self._port), handler)
        self._server.daemon_threads = True
        self._port = self._server.server_address[1]
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="repro-metrics-server",
            daemon=True,
        )
        self._thread.start()
        return self._port

    def close(self) -> None:
        """Stop serving (idempotent)."""
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
            self._server = None
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None

    def __enter__(self) -> "MetricsServer":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def fetch_metrics(
    url: str, *, format: str = "prometheus", timeout: float = 5.0
) -> str:
    """Fetch one snapshot from a running endpoint (``repro metrics``).

    ``url`` is the endpoint base (``http://host:port``) or a full path;
    ``format`` selects ``/metrics`` (``"prometheus"``) or
    ``/metrics.json`` (``"json"``) when only a base was given.
    """
    target = url.rstrip("/")
    if not target.endswith(("/metrics", "/metrics.json", "/healthz")):
        target += "/metrics.json" if format == "json" else "/metrics"
    with urllib.request.urlopen(target, timeout=timeout) as response:
        return response.read().decode()
