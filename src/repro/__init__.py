"""repro — reproduction of "Anomaly Characterization in Large Scale
Networks" (Anceaume, Busnel, Le Merrer, Ludinard, Marchand, Sericola;
IEEE/IFIP DSN 2014).

The library lets each monitored device decide, from trajectories within
``4r`` of its own QoS trajectory, whether the anomaly that hit it was
*isolated* (at most ``tau`` devices) or *massive* (more than ``tau``), or
whether the configuration is provably *unresolved* — a verdict as accurate
as an omniscient observer's.

Quick start::

    import numpy as np
    from repro import Transition, Characterizer

    prev = np.random.default_rng(1).random((100, 2))
    cur = prev.copy()
    cur[:8] = 0.9            # eight devices jump together: a massive anomaly
    flagged = range(8)
    t = Transition.from_arrays(prev, cur, flagged, r=0.03, tau=3)
    for device, verdict in Characterizer(t).characterize_all().items():
        print(device, verdict.anomaly_type, verdict.rule)

Subpackages
-----------
``repro.core``
    The paper's contribution: motions, partitions, Theorems 5–7,
    Corollary 8, and the omniscient oracle.
``repro.engine``
    Batch-first characterization engine: vectorized neighbourhoods,
    shared motion cache, pluggable serial / process execution backends.
``repro.online``
    Event-driven characterization service: sharded device-state store,
    incremental grid indexes, dirty-region invalidation, and a
    replayable event pipeline with backpressure.
``repro.detection``
    Error detection functions ``a_k(j)`` (threshold, EWMA, CUSUM,
    Holt–Winters, Kalman).
``repro.simulation``
    The Section VII workload generator and discrete-time simulator.
``repro.network``
    Synthetic ISP/OTT network substrate (topology, faults, gateways).
``repro.baselines``
    Tessellation (FixMe-style) and centralized k-means baselines.
``repro.analysis``
    Dimensioning mathematics (Figure 6) and evaluation metrics.
``repro.experiments``
    One module per paper table/figure, plus ablations.
"""

from repro.core import (
    AnomalyType,
    Characterization,
    Characterizer,
    CostCounters,
    DecisionRule,
    Snapshot,
    Transition,
    characterize_transition,
    classify_sets,
    greedy_partition,
    is_anomaly_partition,
    oracle_classify,
)
from repro.engine import CharacterizationEngine, EngineConfig

__version__ = "1.1.0"

__all__ = [
    "AnomalyType",
    "Characterization",
    "CharacterizationEngine",
    "Characterizer",
    "CostCounters",
    "DecisionRule",
    "EngineConfig",
    "Snapshot",
    "Transition",
    "__version__",
    "characterize_transition",
    "classify_sets",
    "greedy_partition",
    "is_anomaly_partition",
    "oracle_classify",
]
