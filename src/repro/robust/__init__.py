"""Malicious-device extension (the paper's Section VIII future work).

* :mod:`repro.robust.attacks` — the collusion threat model: mimicry
  (suppress an isolated victim's report) and ambiguity (degrade massive
  verdicts to unresolved) via forged trajectories;
* :mod:`repro.robust.characterizer` — the f-tolerant defense: harden the
  density threshold to ``tau + f`` so massive verdicts survive up to
  ``f`` forgeries, with the inherent completeness loss surfaced as an
  explicit ``SUSPECT`` label;
* :mod:`repro.robust.chaos` — deterministic fault injection (worker
  kills/hangs, dropped replies, corrupted frames) driving the
  ``tests/chaos`` suite that pins the service's fault tolerance.
"""

from repro.robust.attacks import (
    AmbiguityAttack,
    AttackOutcome,
    MimicryAttack,
    apply_forgeries,
)
from repro.robust.chaos import ChaosInjector, FaultPlan, get_injector, inject
from repro.robust.characterizer import (
    RobustCharacterizer,
    RobustLabel,
    RobustVerdict,
)

__all__ = [
    "AmbiguityAttack",
    "AttackOutcome",
    "ChaosInjector",
    "FaultPlan",
    "MimicryAttack",
    "RobustCharacterizer",
    "RobustLabel",
    "RobustVerdict",
    "apply_forgeries",
    "get_injector",
    "inject",
]
