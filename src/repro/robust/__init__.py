"""Malicious-device extension (the paper's Section VIII future work).

* :mod:`repro.robust.attacks` — the collusion threat model: mimicry
  (suppress an isolated victim's report) and ambiguity (degrade massive
  verdicts to unresolved) via forged trajectories;
* :mod:`repro.robust.characterizer` — the f-tolerant defense: harden the
  density threshold to ``tau + f`` so massive verdicts survive up to
  ``f`` forgeries, with the inherent completeness loss surfaced as an
  explicit ``SUSPECT`` label.
"""

from repro.robust.attacks import (
    AmbiguityAttack,
    AttackOutcome,
    MimicryAttack,
    apply_forgeries,
)
from repro.robust.characterizer import (
    RobustCharacterizer,
    RobustLabel,
    RobustVerdict,
)

__all__ = [
    "AmbiguityAttack",
    "AttackOutcome",
    "MimicryAttack",
    "RobustCharacterizer",
    "RobustLabel",
    "RobustVerdict",
    "apply_forgeries",
]
