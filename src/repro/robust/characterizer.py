"""f-tolerant characterization: the defense side of Section VIII.

Key asymmetry of the threat model (see :mod:`repro.robust.attacks`):
malicious devices can **add** forged trajectories to a neighbourhood but
cannot remove or alter honest ones.  Consequently:

* a *massive* verdict can be forged (shadow an isolated victim until its
  motion looks dense), but
* an *isolated* verdict cannot (removing trajectories is impossible, and
  Theorem 5's condition is monotone: adding trajectories only creates
  motions).

The :class:`RobustCharacterizer` therefore hardens the dense test: a
motion only counts as dense when it has **more than ``tau + f`` members**,
so that even if ``f`` of them are forged, more than ``tau`` honest devices
co-moved.  Mechanically this is the plain characterizer run with an
inflated threshold ``tau' = tau + f`` — the formal results all hold for
any threshold, so soundness transfers directly:

* ``MASSIVE`` under ``tau'``  ⇒  at least ``tau' + 1 - f > tau`` honest
  co-moving devices  ⇒  truly massive *(attack-proof soundness)*;
* ``ISOLATED`` under ``tau'`` is **not** proof of isolation: a genuine
  massive group of size in ``(tau, tau + f]`` also lands here.  The
  verdict therefore degrades honestly: every device isolated under
  ``tau'`` but not under ``tau`` is reported ``SUSPECT`` — it may be a
  small massive group or a mimicry attack in progress.

This completeness loss is inherent, not an implementation artifact: with
``f`` forgeries a group of ``tau + 1`` observed trajectories is
*indistinguishable* from an isolated device shadowed by ``f`` colluders
whenever ``f >= tau - |honest group| + 1``.  The experiment
``repro.experiments.ablation_malicious`` quantifies both sides.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict

from repro.core.characterize import Characterizer
from repro.core.errors import ConfigurationError
from repro.core.transition import Snapshot, Transition
from repro.core.types import AnomalyType, Characterization

__all__ = ["RobustVerdict", "RobustLabel", "RobustCharacterizer"]


class RobustLabel(enum.Enum):
    """Verdicts of the f-tolerant characterizer."""

    ISOLATED = "isolated"          # isolated even at the base threshold
    MASSIVE = "massive"            # dense beyond tau + f: attack-proof
    SUSPECT = "suspect"            # dense at tau but not beyond tau + f
    UNRESOLVED = "unresolved"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class RobustVerdict:
    """Robust classification of one device.

    ``base`` and ``hardened`` carry the underlying plain verdicts at
    thresholds ``tau`` and ``tau + f`` for inspection.
    """

    device: int
    label: RobustLabel
    base: Characterization
    hardened: Characterization


class RobustCharacterizer:
    """Characterize with tolerance for up to ``f`` forged trajectories.

    Parameters
    ----------
    transition:
        The observed transition — honest plus possibly forged devices
        (the defender cannot tell which).
    f:
        Collusion bound per neighbourhood.
    """

    def __init__(self, transition: Transition, f: int, **characterizer_kwargs) -> None:
        if f < 0:
            raise ConfigurationError(f"f must be >= 0, got {f!r}")
        if transition.tau + f > transition.n - 1:
            raise ConfigurationError(
                f"tau + f = {transition.tau + f} exceeds n - 1 = {transition.n - 1}; "
                "the hardened threshold is undefined"
            )
        self._f = f
        self._base = Characterizer(transition, **characterizer_kwargs)
        if f == 0:
            self._hardened = self._base
        else:
            hardened_transition = Transition(
                Snapshot(transition.previous.positions),
                Snapshot(transition.current.positions),
                transition.flagged,
                transition.r,
                transition.tau + f,
            )
            self._hardened = Characterizer(hardened_transition, **characterizer_kwargs)

    @property
    def f(self) -> int:
        """The tolerated number of forged trajectories."""
        return self._f

    def characterize(self, device: int) -> RobustVerdict:
        """Classify one device with the f-tolerant rules."""
        base = self._base.characterize(device)
        hardened = self._hardened.characterize(device)
        label = self._combine(base, hardened)
        return RobustVerdict(device=device, label=label, base=base, hardened=hardened)

    def characterize_all(self) -> Dict[int, RobustVerdict]:
        """Classify every flagged device."""
        return {
            device: self.characterize(device)
            for device in self._base.transition.flagged_sorted
        }

    def _combine(
        self, base: Characterization, hardened: Characterization
    ) -> RobustLabel:
        if hardened.anomaly_type is AnomalyType.MASSIVE:
            # Dense beyond tau + f: more than tau honest co-movers even in
            # the worst case — attack-proof massive.
            return RobustLabel.MASSIVE
        if base.anomaly_type is AnomalyType.ISOLATED:
            # No dense motion even at the base threshold; forgeries can
            # only have *added* motions, so the honest picture is at most
            # this dense: genuinely isolated.
            return RobustLabel.ISOLATED
        if hardened.anomaly_type is AnomalyType.UNRESOLVED:
            return RobustLabel.UNRESOLVED
        # Dense at tau, sparse at tau + f: could be a small massive group
        # or a mimicry attack — flag for investigation.
        return RobustLabel.SUSPECT
