"""Trajectory-forgery attacks (the paper's Section VIII future work).

The conclusion announces an extension "to take into account malicious
devices... the presence of collusion of malicious devices whose aim would
be to prevent an impacted device to be detected by the monitoring
application".  This module implements that threat model so the defense in
:mod:`repro.robust.characterizer` has something concrete to defend
against.

Threat model
------------
The attacker controls ``f`` devices per neighbourhood.  Malicious devices
cannot alter honest devices' measurements; they can only *report forged
trajectories* of their own (positions at ``k-1`` and ``k``, plus a forged
abnormality flag).  Because the characterization consumes trajectories of
flagged neighbours, forged trajectories can only **add** motions — which
yields two natural attack goals:

* **suppression** (:class:`MimicryAttack`) — forge copies of an isolated
  victim's trajectory so its motion becomes tau-dense: the victim then
  classifies its own local fault as *massive* and, under the ISP policy,
  never reports it (exactly the paper's collusion scenario);
* **confusion** (:class:`AmbiguityAttack`) — forge a competing dense
  motion partially overlapping a genuine massive group (the Figure 3
  pattern) so fringe members decay from *massive* to *unresolved* and an
  OTT operator loses detection coverage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet

import numpy as np

from repro.core.errors import ConfigurationError, UnknownDeviceError
from repro.core.transition import Snapshot, Transition

__all__ = ["AttackOutcome", "MimicryAttack", "AmbiguityAttack", "apply_forgeries"]


@dataclass(frozen=True)
class AttackOutcome:
    """Result of mounting an attack on a transition.

    ``transition`` is the *observed* transition (honest + forged
    trajectories); ``forged_devices`` identifies the attacker-controlled
    device ids inside it (appended after the honest ids, so honest ids
    are unchanged); ``victim`` is the targeted honest device.
    """

    transition: Transition
    forged_devices: FrozenSet[int]
    victim: int

    @property
    def honest_flagged(self) -> FrozenSet[int]:
        """Flagged devices that are not attacker-controlled."""
        return self.transition.flagged - self.forged_devices


def apply_forgeries(
    transition: Transition,
    forged_prev: np.ndarray,
    forged_cur: np.ndarray,
    *,
    victim: int,
) -> AttackOutcome:
    """Append forged trajectories to a transition and re-flag them.

    Forged devices get ids ``n, n+1, ...`` and are always flagged (the
    attacker wants them to participate in motions).
    """
    prev = transition.previous.positions
    cur = transition.current.positions
    forged_prev = np.asarray(forged_prev, dtype=float)
    forged_cur = np.asarray(forged_cur, dtype=float)
    if forged_prev.shape != forged_cur.shape or forged_prev.ndim != 2:
        raise ConfigurationError("forged positions must be matching (f, d) arrays")
    if forged_prev.shape[1] != transition.dim:
        raise ConfigurationError(
            f"forged positions have dim {forged_prev.shape[1]}, "
            f"system has {transition.dim}"
        )
    n = transition.n
    count = forged_prev.shape[0]
    # No silent clipping here: the attacks sample inside the unit cube by
    # construction (see _sample_box_in_cube), and Snapshot validation
    # rejects out-of-cube forgeries eagerly.  Clipping after placement
    # used to collapse shadows onto a cube face whenever the victim sat
    # within the jitter radius of one, weakening exactly the attacks the
    # robustness experiments measure.
    observed = Transition(
        Snapshot(np.vstack([prev, forged_prev])),
        Snapshot(np.vstack([cur, forged_cur])),
        set(transition.flagged) | set(range(n, n + count)),
        transition.r,
        transition.tau,
    )
    return AttackOutcome(
        transition=observed,
        forged_devices=frozenset(range(n, n + count)),
        victim=victim,
    )


def _sample_box_in_cube(
    rng: np.random.Generator,
    center: np.ndarray,
    half_side: float,
    count: int,
) -> np.ndarray:
    """Sample ``count`` points uniformly in ``box(center, half_side) ∩ cube``.

    The forged positions must be valid QoS reports (the monitoring
    application rejects out-of-range data), so the attacker samples
    within the *intersection* of its jitter box and the unit cube — for
    a victim near a cube face that intersection is one-sided, never a
    clipped pile-up on the boundary.  A box lying entirely outside the
    cube degenerates to its nearest face point (the closest the attacker
    can legally get).
    """
    lo = np.clip(center - half_side, 0.0, 1.0)
    hi = np.clip(center + half_side, 0.0, 1.0)
    return rng.uniform(lo, hi, (count, center.shape[0]))


class MimicryAttack:
    """Suppress an isolated victim by forging co-moving trajectories.

    The attacker reads the victim's reported trajectory and fabricates
    ``f`` flagged devices whose positions shadow it (within ``jitter * r``
    at both snapshots).  With ``f >= tau`` the victim's own trajectory
    sits in a ``tau``-dense motion and a naive characterizer calls it
    massive.
    """

    def __init__(self, forged_count: int, *, jitter: float = 0.25, seed: int = 0) -> None:
        if forged_count < 1:
            raise ConfigurationError(
                f"forged_count must be >= 1, got {forged_count!r}"
            )
        if not 0.0 <= jitter <= 1.0:
            raise ConfigurationError(f"jitter must lie in [0, 1], got {jitter!r}")
        self._count = forged_count
        self._jitter = jitter
        self._rng = np.random.default_rng(seed)

    def mount(self, transition: Transition, victim: int) -> AttackOutcome:
        """Forge ``forged_count`` shadows of the victim's trajectory."""
        if victim not in transition.flagged:
            raise UnknownDeviceError(
                f"victim {victim} is not flagged; nothing to suppress"
            )
        scale = self._jitter * transition.r
        forged_prev = _sample_box_in_cube(
            self._rng, transition.previous.positions[victim], scale, self._count
        )
        forged_cur = _sample_box_in_cube(
            self._rng, transition.current.positions[victim], scale, self._count
        )
        return apply_forgeries(transition, forged_prev, forged_cur, victim=victim)


class AmbiguityAttack:
    """Degrade a massive verdict to unresolved via a competing motion.

    The attacker fabricates a dense group that overlaps the victim's
    genuine group on one side (offset ``~1.8 r`` at both snapshots),
    recreating the paper's Figure 3: the victim now belongs to two
    maximal dense motions that admissible partitions may split either
    way.  Fringe honest devices become unresolved.
    """

    def __init__(
        self,
        forged_count: int,
        *,
        offset_factor: float = 1.8,
        seed: int = 0,
    ) -> None:
        if forged_count < 1:
            raise ConfigurationError(
                f"forged_count must be >= 1, got {forged_count!r}"
            )
        if offset_factor <= 0:
            raise ConfigurationError(
                f"offset_factor must be positive, got {offset_factor!r}"
            )
        self._count = forged_count
        self._offset = offset_factor
        self._rng = np.random.default_rng(seed)

    def mount(self, transition: Transition, victim: int) -> AttackOutcome:
        """Forge a dense group offset from the victim's trajectory."""
        if victim not in transition.flagged:
            raise UnknownDeviceError(f"victim {victim} is not flagged")
        r = transition.r
        direction = np.zeros(transition.dim)
        direction[0] = 1.0
        shift = self._offset * r * direction
        jitter = 0.2 * r
        forged_prev = _sample_box_in_cube(
            self._rng,
            transition.previous.positions[victim] + shift,
            jitter,
            self._count,
        )
        forged_cur = _sample_box_in_cube(
            self._rng,
            transition.current.positions[victim] + shift,
            jitter,
            self._count,
        )
        return apply_forgeries(transition, forged_prev, forged_cur, victim=victim)
