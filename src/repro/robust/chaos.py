"""Deterministic fault injection for the pool and service planes.

The chaos harness exists to make the fault-tolerance layer testable: a
:class:`FaultPlan` declares *where* faults strike (scheduled by pool run
sequence / service tick, or probabilistically with a seeded generator),
a :class:`ChaosInjector` applies them, and the production code consults
the process-global injector — a no-op singleton unless a test (or the
example driver) installs a plan via :func:`inject`.

Injection points mirror the real failure modes the supervised pool and
the input-validation layer defend against:

* **kill** — the worker process is killed before its task is sent
  (dispatch finds a dead worker) or right after (``kill_after``: the
  parent's collect sees EOF mid-task);
* **drop reply** — the worker completes the task but swallows the
  reply: indistinguishable from a hung worker to the parent, which must
  enforce its ``dispatch_deadline`` (a plan that drops replies against
  a pool with no deadline deadlocks — deliberately);
* **hang** — the worker sleeps before replying (exercises real
  deadline overruns; prefer ``drop`` in tests, it costs no wall-clock);
* **delay** — the parent sleeps before sending (latency, no fault);
* **corrupt seq** — the task's ring sequence number is corrupted,
  exercising the workers' consecutive-sequence carry gate;
* **frame faults** — a measurement frame is corrupted (NaN / inf /
  out-of-range cells) before the service validates it.

Every injected fault is *recoverable by design*: a killed or silent
worker loses only its private motion cache, and the respawned worker
recomputes its slice without a carry — so verdicts stay bit-identical
to a fault-free run.  The ``tests/chaos`` suite asserts exactly that.

The module imports nothing from the engine or online planes, so both
can consult it without cycles.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, Mapping, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "ChaosInjector",
    "FaultAction",
    "FaultPlan",
    "get_injector",
    "inject",
]


@dataclass(frozen=True)
class FaultAction:
    """What the injector wants done to one pool dispatch."""

    kill: bool = False
    kill_after: bool = False
    drop_reply: bool = False
    hang: float = 0.0
    delay: float = 0.0
    corrupt_seq: bool = False


@dataclass(frozen=True)
class FaultPlan:
    """Declarative fault schedule.

    Scheduled faults key on the pool's run sequence number (``seq``,
    1-based, one per :meth:`WorkerPoolBackend.run` that takes the pool
    path) mapping to the *worker index* to strike; frame faults key on
    the service tick being fed.  Probabilistic faults draw from a
    seeded generator per dispatch, so a given plan replays identically.
    """

    seed: int = 0
    # seq -> worker index
    kill_at: Mapping[int, int] = field(default_factory=dict)
    kill_after_at: Mapping[int, int] = field(default_factory=dict)
    drop_reply_at: Mapping[int, int] = field(default_factory=dict)
    hang_at: Mapping[int, int] = field(default_factory=dict)
    delay_at: Mapping[int, int] = field(default_factory=dict)
    corrupt_seq_at: Sequence[int] = ()
    hang_seconds: float = 0.5
    delay_seconds: float = 0.01
    # Per-dispatch probabilities (kill beats drop when both fire).
    kill_probability: float = 0.0
    drop_probability: float = 0.0
    # tick -> device rows whose frame cells are corrupted
    frame_nan_at: Mapping[int, Sequence[int]] = field(default_factory=dict)
    frame_inf_at: Mapping[int, Sequence[int]] = field(default_factory=dict)
    frame_oob_at: Mapping[int, Sequence[int]] = field(default_factory=dict)
    # tick -> shard whose halo publish is delayed by ``delay_seconds``
    halo_delay_at: Mapping[int, int] = field(default_factory=dict)


class ChaosInjector:
    """Applies a :class:`FaultPlan`; counts every injected fault.

    With ``plan=None`` the injector is inert (``active`` is false) and
    every hook is a cheap no-op — the production default.
    """

    def __init__(self, plan: Optional[FaultPlan] = None) -> None:
        self.plan = plan
        self.active = plan is not None
        self.injected: Dict[str, int] = {}
        self._rng = np.random.default_rng(plan.seed if plan else 0)
        self._lock = threading.Lock()

    def _count(self, kind: str) -> None:
        with self._lock:
            self.injected[kind] = self.injected.get(kind, 0) + 1

    def pool_dispatch(self, seq: int, worker: int) -> Optional[FaultAction]:
        """The fault (if any) to inject into dispatch ``seq``/``worker``."""
        plan = self.plan
        if plan is None:
            return None
        kill = plan.kill_at.get(seq) == worker
        kill_after = plan.kill_after_at.get(seq) == worker
        drop = plan.drop_reply_at.get(seq) == worker
        hang = plan.hang_seconds if plan.hang_at.get(seq) == worker else 0.0
        delay = plan.delay_seconds if plan.delay_at.get(seq) == worker else 0.0
        corrupt = seq in plan.corrupt_seq_at
        if plan.kill_probability or plan.drop_probability:
            # One draw per dispatch keeps the schedule replayable.
            u = float(self._rng.random())
            if u < plan.kill_probability:
                kill = True
            elif u < plan.kill_probability + plan.drop_probability:
                drop = True
        if not (kill or kill_after or drop or hang or delay or corrupt):
            return None
        for kind, hit in (
            ("kill", kill),
            ("kill_after", kill_after),
            ("drop_reply", drop),
            ("hang", bool(hang)),
            ("delay", bool(delay)),
            ("corrupt_seq", corrupt),
        ):
            if hit:
                self._count(kind)
        return FaultAction(
            kill=kill,
            kill_after=kill_after,
            drop_reply=drop,
            hang=hang,
            delay=delay,
            corrupt_seq=corrupt,
        )

    def halo_publish(self, tick: int, shard: int) -> float:
        """Seconds to stall ``shard``'s halo publish at ``tick`` (0 = none).

        Exercises the overlap window of the sharded topology: a slow
        publisher must delay only the consumers' seq-gated barrier,
        never hand them a stale band.
        """
        plan = self.plan
        if plan is None:
            return 0.0
        if plan.halo_delay_at.get(tick) != shard:
            return 0.0
        self._count("halo_delay")
        return plan.delay_seconds

    def corrupt_frame(self, tick: int, values: np.ndarray) -> np.ndarray:
        """Return ``values`` with this tick's frame faults applied.

        Copies before corrupting, so the caller's array is never
        damaged; returns the input unchanged when no fault is due.
        """
        plan = self.plan
        if plan is None:
            return values
        faults: Tuple[Tuple[str, Sequence[int], float], ...] = (
            ("frame_nan", plan.frame_nan_at.get(tick, ()), np.nan),
            ("frame_inf", plan.frame_inf_at.get(tick, ()), np.inf),
            ("frame_oob", plan.frame_oob_at.get(tick, ()), 7.5),
        )
        out = values
        for kind, rows, fill in faults:
            if len(rows):
                if out is values:
                    out = np.array(values, dtype=float, copy=True)
                out[list(rows), 0] = fill
                self._count(kind)
        return out


#: The inert default every production code path consults.
_NOOP = ChaosInjector()
_INJECTOR = _NOOP
_INSTALL_LOCK = threading.Lock()


def get_injector() -> ChaosInjector:
    """The process-global injector (inert unless a plan is installed)."""
    return _INJECTOR


@contextmanager
def inject(plan: FaultPlan) -> Iterator[ChaosInjector]:
    """Install ``plan`` globally for the duration of the block.

    Yields the live :class:`ChaosInjector` so callers can read its
    ``injected`` fault counts.  Nested installs are rejected — two
    overlapping plans would make fault attribution meaningless.
    """
    global _INJECTOR
    injector = ChaosInjector(plan)
    with _INSTALL_LOCK:
        if _INJECTOR is not _NOOP:
            raise RuntimeError("a chaos plan is already installed")
        _INJECTOR = injector
    try:
        yield injector
    finally:
        with _INSTALL_LOCK:
            _INJECTOR = _NOOP
