"""The batch-first characterization engine.

Every driver in the repository — the discrete-time simulator, the
experiment runner, the network monitor's tick loop, the streaming
pipeline — used to rebuild a :class:`~repro.core.characterize.Characterizer`
per transition and walk the flagged set one device at a time.
:class:`CharacterizationEngine` replaces those duplicated loops with one
shared service:

* **Batch neighbourhoods.**  Before any per-device work, the engine
  computes *all* flagged-device ``2r`` neighbourhoods and ``4r`` knowledge
  balls in one vectorized pass
  (:meth:`~repro.core.transition.Transition.neighborhoods_batch`, backed by
  :meth:`~repro.core.geometry.GridIndex.query_batch`), replacing one
  dict-walk per device with a handful of numpy operations.
* **Shared motion cache.**  One
  :class:`~repro.core.neighborhood.MotionCache` serves every device of a
  transition and every repeated call on the *same* transition object
  (e.g. several subset passes over one interval pay each motion family
  once); run-level counters aggregate cache statistics across the
  consecutive transitions of a run.
* **Pluggable execution.**  The per-device work is dispatched through an
  :class:`~repro.engine.backends.ExecutionBackend` chosen by
  :class:`~repro.engine.config.EngineConfig` — serial, or a
  ``multiprocessing`` pool chunking the flagged set.

The engine is verdict-identical to the per-device seed path by
construction (the backends share the same decision code), which the
engine test-suite enforces on seeded simulations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Optional, Sequence, Tuple

from repro.core.characterize import classify_sets
from repro.core.errors import ConfigurationError
from repro.core.neighborhood import MotionCache
from repro.core.transition import Transition
from repro.core.types import Characterization

from repro.engine.backends import ExecutionBackend, make_backend
from repro.engine.config import EngineConfig

__all__ = ["CharacterizationEngine", "EngineRun", "EngineStats"]


@dataclass(frozen=True)
class EngineRun:
    """What one :meth:`CharacterizationEngine.characterize_run` produced.

    ``families_recomputed`` / ``families_reused`` aggregate the motion
    cache work of this call across *every* cache involved — the engine's
    shared cache and any worker-process caches — so callers account work
    identically under every backend.
    """

    verdicts: Dict[int, Characterization]
    families_recomputed: int = 0
    families_reused: int = 0


@dataclass
class EngineStats:
    """Run-level counters aggregated across consecutive transitions."""

    transitions: int = 0
    devices_characterized: int = 0
    batch_neighborhood_passes: int = 0
    cache_expansions: int = 0

    def as_dict(self) -> Dict[str, int]:
        """Plain-dict view for logging and result serialization."""
        return {
            "transitions": self.transitions,
            "devices_characterized": self.devices_characterized,
            "batch_neighborhood_passes": self.batch_neighborhood_passes,
            "cache_expansions": self.cache_expansions,
        }


class CharacterizationEngine:
    """Shared batch-first characterization service for all drivers.

    Parameters
    ----------
    config:
        Execution and algorithmic knobs; defaults to serial execution with
        the characterizer defaults (the exact seed behaviour).

    One engine instance is meant to live for a whole run (a simulation, an
    experiment sweep, a monitoring session): it re-uses its motion cache
    across repeated calls on the same transition and accumulates
    :class:`EngineStats` across transitions.
    """

    def __init__(self, config: Optional[EngineConfig] = None, **overrides) -> None:
        if config is None:
            config = EngineConfig(**overrides)
        elif overrides:
            raise TypeError("pass either a config or keyword overrides, not both")
        self._config = config
        self._backend: ExecutionBackend = make_backend(config.backend)
        self._cache: Optional[MotionCache] = None
        self._folded_expansions = 0
        self.stats = EngineStats()

    @property
    def config(self) -> EngineConfig:
        """The engine configuration."""
        return self._config

    @property
    def backend(self) -> ExecutionBackend:
        """The execution backend in use."""
        return self._backend

    @property
    def motion_cache(self) -> Optional[MotionCache]:
        """The motion cache of the most recent transition (if any).

        The online service reads this after a tick to seed the next
        transition's cache via :meth:`MotionCache.carry_from`.
        """
        return self._cache

    # ------------------------------------------------------------------
    def adopt_cache(self, cache: MotionCache) -> None:
        """Install an externally built cache (e.g. a cross-tick carry).

        The previous cache's counters are folded into :attr:`stats`
        exactly as when a new transition arrives.
        """
        if self._cache is not None and self._cache is not cache:
            self._folded_expansions += self._cache.expansions
        self._cache = cache

    def _cache_for(self, transition: Transition) -> MotionCache:
        """Return the motion cache bound to ``transition``.

        The cache survives consecutive :meth:`characterize` calls on the
        same transition object (the streaming drivers characterize
        changing subsets of one flagged set); when the run advances to a
        new transition the old cache's counters are folded into
        :attr:`stats` and a fresh cache takes over.
        """
        if self._cache is None or self._cache.transition is not transition:
            if self._cache is not None:
                self._folded_expansions += self._cache.expansions
            self._cache = MotionCache(transition, kernel=self._config.kernel)
        return self._cache

    def _warm_neighborhoods(
        self, transition: Transition, devices: Sequence[int]
    ) -> None:
        """Vectorized precomputation of the 2r and 4r balls of ``devices``."""
        transition.neighborhoods_batch(devices)
        transition.neighborhoods_batch(devices, radius_factor=4.0)
        self.stats.batch_neighborhood_passes += 1

    # ------------------------------------------------------------------
    def characterize_run(
        self,
        transition: Transition,
        devices: Optional[Sequence[int]] = None,
        *,
        cache: Optional[MotionCache] = None,
        carry_clean: Optional[Sequence[int]] = None,
    ) -> EngineRun:
        """Classify ``devices`` and report the run's cache work.

        ``cache`` optionally installs a pre-seeded motion cache (the
        online service passes a cross-tick carry built with
        :meth:`MotionCache.carry_from`); it must be bound to
        ``transition``.  ``carry_clean`` names the devices whose motion
        families provably did not change since the previous call on this
        engine — backends with private worker caches reuse those
        families; only pass it when that invariant holds (the online
        service derives it from the dirty-region tracker).
        """
        devs = (
            list(transition.flagged_sorted)
            if devices is None
            else [int(j) for j in devices]
        )
        if cache is not None:
            if cache.transition is not transition:
                raise ConfigurationError(
                    "adopted MotionCache is bound to a different transition"
                )
            self.adopt_cache(cache)
        if (
            devs
            and self._config.precompute_neighborhoods
            and not self._backend.plans_fanout(devs, self._config)
        ):
            # Fanned-out work leaves the process; workers warm their own
            # subsets, so a parent-side pass would be pure overhead.
            self._warm_neighborhoods(transition, devs)
        shared = self._cache_for(transition)
        expansions_before = shared.expansions
        reused_before = shared.carried_used
        run = self._backend.run(
            transition, devs, self._config, shared, carry_clean=carry_clean
        )
        if run.expansions is not None:
            # Worker-process caches are invisible to `shared`; fold their
            # expansion counts in so stats stay truthful per backend.
            self._folded_expansions += run.expansions
        self.stats.transitions += 1
        self.stats.devices_characterized += len(run.verdicts)
        self.stats.cache_expansions = self._folded_expansions + shared.expansions
        return EngineRun(
            verdicts=run.verdicts,
            families_recomputed=(shared.expansions - expansions_before)
            + (run.expansions or 0),
            families_reused=(shared.carried_used - reused_before)
            + run.families_reused,
        )

    def characterize(
        self,
        transition: Transition,
        devices: Optional[Sequence[int]] = None,
        *,
        cache: Optional[MotionCache] = None,
        carry_clean: Optional[Sequence[int]] = None,
    ) -> Dict[int, Characterization]:
        """Classify ``devices`` (default: all of ``A_k``) of ``transition``.

        Returns the same ``device -> Characterization`` mapping as the
        per-device :meth:`Characterizer.characterize_all` seed path; see
        :meth:`characterize_run` for the variant that also reports the
        run's motion-family work.
        """
        return self.characterize_run(
            transition, devices, cache=cache, carry_clean=carry_clean
        ).verdicts

    def classify(
        self, transition: Transition, devices: Optional[Sequence[int]] = None
    ) -> Tuple[FrozenSet[int], FrozenSet[int], FrozenSet[int]]:
        """Characterize and split into the sets ``(I_k, M_k, U_k)``."""
        return classify_sets(self.characterize(transition, devices))

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release backend resources (persistent worker pools, shm).

        Idempotent; a closed engine's pool restarts lazily if the engine
        is used again.  Engines are context managers, and every driver
        that owns one (service, monitor, stream, CLI) forwards its own
        close here.
        """
        self._backend.close()

    def __enter__(self) -> "CharacterizationEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CharacterizationEngine(backend={self._backend.name!r}, "
            f"transitions={self.stats.transitions})"
        )
