"""Batch-first characterization engine with pluggable execution backends.

One :class:`CharacterizationEngine` serves every driver loop in the
repository (simulator, experiment runner, network monitor, streaming
pipeline): vectorized batch neighbourhood computation, a motion cache
shared across devices and across repeated calls on a transition, and a
choice of ``serial``, persistent-pool ``process`` or per-call
``process-spawn`` execution.  See DESIGN.md, sections "Engine
architecture" and "Persistent worker pool".
"""

from repro.engine.backends import (
    BackendRun,
    ExecutionBackend,
    SerialBackend,
    SpawnProcessBackend,
    WorkerPoolBackend,
    make_backend,
)
from repro.engine.config import BACKENDS, EngineConfig
from repro.engine.core import CharacterizationEngine, EngineRun, EngineStats

__all__ = [
    "BACKENDS",
    "BackendRun",
    "CharacterizationEngine",
    "EngineConfig",
    "EngineRun",
    "EngineStats",
    "ExecutionBackend",
    "SerialBackend",
    "SpawnProcessBackend",
    "WorkerPoolBackend",
    "make_backend",
]
