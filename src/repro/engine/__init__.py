"""Batch-first characterization engine with pluggable execution backends.

One :class:`CharacterizationEngine` serves every driver loop in the
repository (simulator, experiment runner, network monitor, streaming
pipeline): vectorized batch neighbourhood computation, a motion cache
shared across devices and across repeated calls on a transition, and a
choice of ``serial`` or ``process`` execution.  See DESIGN.md, section
"Engine architecture".
"""

from repro.engine.backends import (
    ExecutionBackend,
    ProcessBackend,
    SerialBackend,
    make_backend,
)
from repro.engine.config import BACKENDS, EngineConfig
from repro.engine.core import CharacterizationEngine, EngineStats

__all__ = [
    "BACKENDS",
    "CharacterizationEngine",
    "EngineConfig",
    "EngineStats",
    "ExecutionBackend",
    "ProcessBackend",
    "SerialBackend",
    "make_backend",
]
