"""Execution configuration for the characterization engine.

:class:`EngineConfig` bundles two orthogonal groups of knobs:

* *execution*: which backend runs the per-device characterizations
  (``serial`` in-process, or ``process`` fanning flagged-device chunks out
  to a :mod:`multiprocessing` pool), how many workers, and how devices are
  chunked;
* *algorithmic*: the :class:`~repro.core.characterize.Characterizer`
  parameters (Theorem 7 budgets, fallback policy, collection counting),
  kept here verbatim so every driver that routes through the engine speaks
  one configuration vocabulary.

The defaults reproduce the seed behaviour exactly: serial execution with
the characterizer's own defaults.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.bitset import KERNELS
from repro.core.errors import ConfigurationError

__all__ = ["EngineConfig", "BACKENDS"]

#: Names of the available execution backends.  ``process`` is the
#: persistent shared-memory worker pool; ``process-spawn`` is the old
#: spawn-a-pool-per-call strategy, kept as the benchmark baseline.
BACKENDS = ("serial", "process", "process-spawn")


@dataclass(frozen=True)
class EngineConfig:
    """Knobs of a :class:`~repro.engine.core.CharacterizationEngine`.

    Attributes
    ----------
    backend:
        ``"serial"`` (default) characterizes in-process; ``"process"``
        routes devices to a *persistent* shared-memory worker pool
        (:class:`~repro.engine.backends.WorkerPoolBackend`) that lives
        until the engine is closed; ``"process-spawn"`` spawns a fresh
        ``multiprocessing.Pool`` per call (the pre-pool baseline the
        benchmarks compare against).
    workers:
        Worker-process count for the process backends; ``None`` lets
        the pool size itself to the machine (``os.cpu_count()``).
    chunk_size:
        Devices per work unit.  For ``process-spawn``, ``None`` picks
        ``ceil(|devices| / (4 * workers))`` so the pool load-balances
        without drowning in pickling overhead.  For the persistent
        ``process`` pool this is the *target devices per engaged worker*
        (default 8): small ticks wake only as many workers as they can
        feed (each engaged worker pays a per-tick transition rebuild),
        while large batches engage the whole pool with stable
        ``device % workers`` routing so each device keeps hitting the
        same worker's motion cache.
    min_process_devices:
        Below this many devices the process backends silently degrade
        to serial execution — dispatch overhead would dominate the work.
        The serial fallback still consults the engine's shared motion
        cache, so cross-tick family reuse keeps working on small ticks.
    max_worker_tasks:
        Retire and respawn a persistent-pool worker after this many
        tasks (``None`` = unlimited) — the lifetime bound for always-on
        services.  A fresh worker starts without a motion cache and
        recomputes its first tick.
    worker_respawn:
        When true (default) a persistent-pool worker that dies mid-run
        is respawned and its task re-sent (without a cache carry); when
        false a dead worker raises instead.
    dispatch_deadline:
        Per-roundtrip deadline in seconds for a persistent-pool task.
        A worker that has not replied by the deadline is declared hung,
        killed and respawned, and its task re-sent (bounded by
        ``dispatch_retries``).  ``None`` (default) keeps the seed
        behaviour: wait forever.
    dispatch_retries:
        How many times a failed dispatch (worker died or hung) is
        retried against a respawned worker before the batch is routed
        to the quarantine path.
    retry_backoff:
        Base seconds slept before each dispatch retry; doubles per
        attempt (exponential backoff).
    poison_threshold:
        A batch that kills (or hangs) workers this many times is
        declared *poison* and quarantined: its devices run on the
        in-process serial path instead of taking the pool down with
        them, and the event is counted on
        ``repro_pool_poison_batches_total``.
    serial_fallback_after:
        Consecutive faulty runs (any hung/dead worker during the run)
        after which the pool health state machine degrades from
        ``degraded`` to ``serial-fallback``: runs execute serially
        until a recovery probe succeeds.
    recovery_probe_every:
        In ``serial-fallback``, every this-many runs one run is sent
        through the pool as a recovery probe; a clean probe promotes
        the pool back to ``degraded``.
    recovery_runs:
        Consecutive clean pool runs required to promote ``degraded``
        back to ``healthy``.
    precompute_neighborhoods:
        When true (default) the engine batch-computes the ``2r``
        neighbourhoods *and* the ``4r`` knowledge balls of every device in
        one vectorized pass before characterizing, warming the
        transition's memo (and, for the process backend, shipping the
        warmed memo to the workers instead of letting each recompute it).
    kernel:
        Set-algebra representation of the verdict hot path: ``"bitset"``
        (default, integer masks over per-device local universes) or
        ``"frozenset"`` (the original baseline).  Verdict-identical.
    full_nsc, collection_budget, count_all_collections,
    collection_count_cap, pool_cap, budget_fallback:
        Forwarded verbatim to
        :class:`~repro.core.characterize.Characterizer`; see its docstring.
    """

    backend: str = "serial"
    workers: Optional[int] = None
    chunk_size: Optional[int] = None
    min_process_devices: int = 4
    max_worker_tasks: Optional[int] = None
    worker_respawn: bool = True
    dispatch_deadline: Optional[float] = None
    dispatch_retries: int = 2
    retry_backoff: float = 0.05
    poison_threshold: int = 3
    serial_fallback_after: int = 3
    recovery_probe_every: int = 8
    recovery_runs: int = 3
    precompute_neighborhoods: bool = True
    kernel: str = "bitset"
    full_nsc: bool = True
    collection_budget: Optional[int] = None
    count_all_collections: bool = False
    collection_count_cap: Optional[int] = 10_000_000
    pool_cap: Optional[int] = 1 << 22
    budget_fallback: bool = False

    def __post_init__(self) -> None:
        if self.backend not in BACKENDS:
            raise ConfigurationError(
                f"backend must be one of {BACKENDS}, got {self.backend!r}"
            )
        if self.kernel not in KERNELS:
            raise ConfigurationError(
                f"kernel must be one of {KERNELS}, got {self.kernel!r}"
            )
        if self.workers is not None and self.workers < 1:
            raise ConfigurationError(
                f"workers must be >= 1 when given, got {self.workers!r}"
            )
        if self.chunk_size is not None and self.chunk_size < 1:
            raise ConfigurationError(
                f"chunk_size must be >= 1 when given, got {self.chunk_size!r}"
            )
        if self.min_process_devices < 1:
            raise ConfigurationError(
                "min_process_devices must be >= 1, got "
                f"{self.min_process_devices!r}"
            )
        if self.max_worker_tasks is not None and self.max_worker_tasks < 1:
            raise ConfigurationError(
                "max_worker_tasks must be >= 1 when given, got "
                f"{self.max_worker_tasks!r}"
            )
        if self.dispatch_deadline is not None and self.dispatch_deadline <= 0:
            raise ConfigurationError(
                "dispatch_deadline must be > 0 when given, got "
                f"{self.dispatch_deadline!r}"
            )
        if self.dispatch_retries < 0:
            raise ConfigurationError(
                f"dispatch_retries must be >= 0, got {self.dispatch_retries!r}"
            )
        if self.retry_backoff < 0:
            raise ConfigurationError(
                f"retry_backoff must be >= 0, got {self.retry_backoff!r}"
            )
        if self.poison_threshold < 1:
            raise ConfigurationError(
                f"poison_threshold must be >= 1, got {self.poison_threshold!r}"
            )
        if self.serial_fallback_after < 1:
            raise ConfigurationError(
                "serial_fallback_after must be >= 1, got "
                f"{self.serial_fallback_after!r}"
            )
        if self.recovery_probe_every < 1:
            raise ConfigurationError(
                "recovery_probe_every must be >= 1, got "
                f"{self.recovery_probe_every!r}"
            )
        if self.recovery_runs < 1:
            raise ConfigurationError(
                f"recovery_runs must be >= 1, got {self.recovery_runs!r}"
            )

    def characterizer_kwargs(self) -> Dict[str, object]:
        """The :class:`Characterizer` keyword arguments this config encodes."""
        return {
            "kernel": self.kernel,
            "full_nsc": self.full_nsc,
            "collection_budget": self.collection_budget,
            "count_all_collections": self.count_all_collections,
            "collection_count_cap": self.collection_count_cap,
            "pool_cap": self.pool_cap,
            "budget_fallback": self.budget_fallback,
        }
