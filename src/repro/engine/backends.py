"""Pluggable execution backends for the characterization engine.

A backend answers one question: given a transition and a list of flagged
devices, produce the verdict of every device.  The *serial* backend is the
seed behaviour — one :class:`~repro.core.characterize.Characterizer`, one
pass.  The *process* backend chunks the device list over a
``multiprocessing.Pool``; characterization is embarrassingly parallel
across devices (the paper's locality result is precisely that device
``j``'s verdict depends only on trajectories within ``4r`` of ``j``), so
workers need no coordination, and each worker keeps its own
:class:`~repro.core.neighborhood.MotionCache` shared across the devices of
its chunks.

Verdicts are deterministic functions of the transition, so every backend
returns bit-identical results — the engine equivalence tests enforce it.
"""

from __future__ import annotations

import math
import multiprocessing
import os
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.characterize import Characterizer
from repro.core.neighborhood import MotionCache
from repro.core.transition import Transition
from repro.core.types import Characterization

from repro.engine.config import EngineConfig

__all__ = ["ExecutionBackend", "SerialBackend", "ProcessBackend", "make_backend"]


class ExecutionBackend:
    """Interface: run per-device characterization for one transition.

    ``last_expansions`` reports the motion-family expansions the previous
    :meth:`run` performed in caches the caller cannot see (worker-process
    caches); ``None`` means all expansions happened in the shared cache
    the caller passed in.
    """

    name = "abstract"
    last_expansions: Optional[int] = None

    def run(
        self,
        transition: Transition,
        devices: Sequence[int],
        config: EngineConfig,
        cache: Optional[MotionCache] = None,
    ) -> Dict[int, Characterization]:
        raise NotImplementedError


class SerialBackend(ExecutionBackend):
    """In-process execution (the seed code path, minus rebuild overhead)."""

    name = "serial"

    def run(
        self,
        transition: Transition,
        devices: Sequence[int],
        config: EngineConfig,
        cache: Optional[MotionCache] = None,
    ) -> Dict[int, Characterization]:
        characterizer = Characterizer(
            transition, cache=cache, **config.characterizer_kwargs()
        )
        return characterizer.characterize_many(devices)


# ----------------------------------------------------------------------
# Process backend.  Workers are initialized once with the (pickled)
# transition and characterizer kwargs; each then serves many chunks with
# a private motion cache, so per-chunk traffic is just device ids in and
# verdicts out.
# ----------------------------------------------------------------------
_WORKER_CHARACTERIZER: Optional[Characterizer] = None


def _init_worker(transition: Transition, kwargs: Dict[str, object]) -> None:
    global _WORKER_CHARACTERIZER
    _WORKER_CHARACTERIZER = Characterizer(transition, **kwargs)


def _characterize_chunk(
    devices: Sequence[int],
) -> Tuple[List[Characterization], int]:
    assert _WORKER_CHARACTERIZER is not None, "worker not initialized"
    before = _WORKER_CHARACTERIZER.cache.expansions
    verdicts = [_WORKER_CHARACTERIZER.characterize(device) for device in devices]
    return verdicts, _WORKER_CHARACTERIZER.cache.expansions - before


class ProcessBackend(ExecutionBackend):
    """Fan flagged-device chunks out to a ``multiprocessing.Pool``."""

    name = "process"

    def run(
        self,
        transition: Transition,
        devices: Sequence[int],
        config: EngineConfig,
        cache: Optional[MotionCache] = None,
    ) -> Dict[int, Characterization]:
        devices = list(devices)
        workers = config.workers or os.cpu_count() or 1
        workers = min(workers, max(1, len(devices)))
        if workers <= 1 or len(devices) < config.min_process_devices:
            self.last_expansions = None
            return SerialBackend().run(transition, devices, config, cache)
        chunk = config.chunk_size or max(1, math.ceil(len(devices) / (4 * workers)))
        chunks = [devices[i : i + chunk] for i in range(0, len(devices), chunk)]
        with multiprocessing.Pool(
            processes=workers,
            initializer=_init_worker,
            initargs=(transition, config.characterizer_kwargs()),
        ) as pool:
            chunk_results = pool.map(_characterize_chunk, chunks)
        out: Dict[int, Characterization] = {}
        expansions = 0
        for verdicts, chunk_expansions in chunk_results:
            expansions += chunk_expansions
            for verdict in verdicts:
                out[verdict.device] = verdict
        self.last_expansions = expansions
        return out


def make_backend(name: str) -> ExecutionBackend:
    """Instantiate a backend by :data:`~repro.engine.config.BACKENDS` name."""
    if name == "serial":
        return SerialBackend()
    if name == "process":
        return ProcessBackend()
    raise ValueError(f"unknown backend {name!r}")  # pragma: no cover - guarded
