"""Pluggable execution backends for the characterization engine.

A backend answers one question: given a transition and a list of flagged
devices, produce the verdict of every device.  The *serial* backend is the
seed behaviour — one :class:`~repro.core.characterize.Characterizer`, one
pass.  Characterization is embarrassingly parallel across devices (the
paper's locality result is precisely that device ``j``'s verdict depends
only on trajectories within ``4r`` of ``j``), so the parallel backends
need no worker coordination:

* ``process`` (:class:`WorkerPoolBackend`) keeps a **persistent** pool of
  worker processes alive across :meth:`~ExecutionBackend.run` calls.
  Snapshot arrays are published through a double-buffered
  :mod:`multiprocessing.shared_memory` ring (:class:`_SnapshotRing`): two
  *current*-snapshot slots written alternately plus a *previous*-snapshot
  fallback, so a steady-state tick — whose ``prev`` side is, by object
  identity, the array published as ``cur`` one run earlier — writes
  exactly one ``(n, d)`` copy into shared memory.  A tick then ships only
  row indices (device ids, the flagged set, the carry-clean set) down the
  pipes — never a pickled :class:`~repro.core.transition.Transition` and
  never a second snapshot copy.  Workers attach the segments *zero-copy*
  (read-only views, :meth:`Transition.from_views`); a sequence gate makes
  that safe: cross-task state (the carried cache, the adoptable cur-side
  index) is only reused when the task is the immediate successor of the
  one that produced it, because one run later the ring overwrites the
  slot that task's ``prev`` views point into.  Each worker keeps a
  private :class:`~repro.core.neighborhood.MotionCache` across ticks,
  re-seeded per tick via :meth:`MotionCache.carry_from` with the caller's
  clean set (devices outside the dirty cell-rings), which extends the
  online service's cross-tick motion-family reuse to multi-core runs.
* ``process-spawn`` (:class:`SpawnProcessBackend`) is the old
  spawn-a-``multiprocessing.Pool``-per-call strategy, kept as the
  benchmark baseline the persistent pool is measured against.

Verdicts are deterministic functions of the transition, so every backend
returns bit-identical results — the engine equivalence tests enforce it.

Run results (verdicts plus the motion-family work counters of caches the
caller cannot see) travel in a :class:`BackendRun` value, never through
mutable backend attributes: a run that raises mid-pool or two engines
sharing a backend instance can never observe another run's counters.
"""

from __future__ import annotations

import math
import multiprocessing
import os
import sys
import time
import traceback
import weakref
from dataclasses import dataclass, field
from multiprocessing import shared_memory
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.characterize import Characterizer
from repro.core.errors import PoolError
from repro.core.neighborhood import MotionCache
from repro.core.transition import Transition
from repro.core.types import Characterization

from repro.engine.config import EngineConfig
from repro.ipc import (
    SnapshotRing,
    WorkerHandle,
    reap_worker,
    shm_unregister,
    shutdown_worker,
    shutdown_workers,
    signal_worker_shutdown,
)
from repro.obs.metrics import get_registry
from repro.obs.trace import get_tracer
from repro.robust.chaos import get_injector

__all__ = [
    "BackendRun",
    "ExecutionBackend",
    "SerialBackend",
    "SpawnProcessBackend",
    "WorkerPoolBackend",
    "make_backend",
]


@dataclass(frozen=True)
class BackendRun:
    """Everything one :meth:`ExecutionBackend.run` call produced.

    Attributes
    ----------
    verdicts:
        ``device -> Characterization`` for every requested device.
    expansions:
        Motion-family expansions performed in caches the caller cannot
        see (worker-process caches); ``None`` means every expansion
        happened in the shared cache the caller passed in, whose own
        counters already reflect the work.
    families_reused:
        Worker-side carried families actually served during this run
        (cross-tick reuse the shared cache cannot observe).
    """

    verdicts: Dict[int, Characterization]
    expansions: Optional[int] = None
    families_reused: int = 0


class ExecutionBackend:
    """Interface: run per-device characterization for one transition.

    ``carry_clean`` names the devices whose motion families provably did
    not change since the *immediately previous* :meth:`run` call on this
    backend (the online service's dirty-cell complement); backends with
    private per-worker caches may reuse those families verbatim.  Callers
    must only pass it when that single-step invariant holds — backends
    that cannot honour it safely ignore it.
    """

    name = "abstract"

    def run(
        self,
        transition: Transition,
        devices: Sequence[int],
        config: EngineConfig,
        cache: Optional[MotionCache] = None,
        *,
        carry_clean: Optional[Sequence[int]] = None,
    ) -> BackendRun:
        raise NotImplementedError

    def plans_fanout(
        self, devices: Sequence[int], config: EngineConfig
    ) -> bool:
        """Whether :meth:`run` would dispatch to out-of-process workers.

        The engine skips its parent-side neighbourhood warm-up when the
        work is about to leave the process anyway (workers warm their own
        device subsets against their own transition rebuilds).
        """
        return False

    def close(self) -> None:
        """Release any long-lived resources (idempotent; default no-op)."""

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class SerialBackend(ExecutionBackend):
    """In-process execution (the seed code path, minus rebuild overhead)."""

    name = "serial"

    def run(
        self,
        transition: Transition,
        devices: Sequence[int],
        config: EngineConfig,
        cache: Optional[MotionCache] = None,
        *,
        carry_clean: Optional[Sequence[int]] = None,
    ) -> BackendRun:
        characterizer = Characterizer(
            transition, cache=cache, **config.characterizer_kwargs()
        )
        return BackendRun(verdicts=characterizer.characterize_many(devices))


# ----------------------------------------------------------------------
# Spawn-per-call process backend (benchmark baseline).  Workers are
# initialized once per *call* with the (pickled) transition and
# characterizer kwargs; each then serves chunks with a private motion
# cache that dies with the pool at the end of the call.
# ----------------------------------------------------------------------
_WORKER_CHARACTERIZER: Optional[Characterizer] = None


def _init_worker(transition: Transition, kwargs: Dict[str, object]) -> None:
    global _WORKER_CHARACTERIZER
    _WORKER_CHARACTERIZER = Characterizer(transition, **kwargs)


def _characterize_chunk(
    devices: Sequence[int],
) -> Tuple[List[Characterization], int]:
    assert _WORKER_CHARACTERIZER is not None, "worker not initialized"
    before = _WORKER_CHARACTERIZER.cache.expansions
    verdicts = [_WORKER_CHARACTERIZER.characterize(device) for device in devices]
    return verdicts, _WORKER_CHARACTERIZER.cache.expansions - before


class SpawnProcessBackend(ExecutionBackend):
    """Fan chunks out to a *fresh* ``multiprocessing.Pool`` per call.

    This is the pre-pool strategy, kept selectable (``process-spawn``) as
    the baseline ``benchmarks/test_bench_pool.py`` measures the
    persistent :class:`WorkerPoolBackend` against: every call pays pool
    startup plus a pickle of the full transition, and worker motion
    caches never survive the call, so cross-tick reuse is impossible.
    """

    name = "process-spawn"

    def run(
        self,
        transition: Transition,
        devices: Sequence[int],
        config: EngineConfig,
        cache: Optional[MotionCache] = None,
        *,
        carry_clean: Optional[Sequence[int]] = None,
    ) -> BackendRun:
        devices = list(devices)
        workers = config.workers or os.cpu_count() or 1
        workers = min(workers, max(1, len(devices)))
        if workers <= 1 or len(devices) < config.min_process_devices:
            return SerialBackend().run(transition, devices, config, cache)
        chunk = config.chunk_size or max(1, math.ceil(len(devices) / (4 * workers)))
        chunks = [devices[i : i + chunk] for i in range(0, len(devices), chunk)]
        with multiprocessing.Pool(
            processes=workers,
            initializer=_init_worker,
            initargs=(transition, config.characterizer_kwargs()),
        ) as pool:
            chunk_results = pool.map(_characterize_chunk, chunks)
        out: Dict[int, Characterization] = {}
        expansions = 0
        for verdicts, chunk_expansions in chunk_results:
            expansions += chunk_expansions
            for verdict in verdicts:
                out[verdict.device] = verdict
        return BackendRun(verdicts=out, expansions=expansions)

    def plans_fanout(
        self, devices: Sequence[int], config: EngineConfig
    ) -> bool:
        # The spawn backend ships the parent transition (with its warmed
        # neighbourhood memo) to the workers, so the parent-side warm-up
        # still pays off; never skip it.
        return False


# ----------------------------------------------------------------------
# Persistent worker pool.
#
# The shared-memory ring and the worker supervision helpers were born
# here as private names and grew cross-module importers (the sharded
# topology's halo exchange).  They now live in :mod:`repro.ipc` under
# public names; the ``_``-prefixed bindings below are deprecated aliases
# kept so existing importers keep working.
# ----------------------------------------------------------------------
_shm_unregister = shm_unregister


def _pool_worker(conn, kwargs: Dict[str, object], unregister_shm: bool) -> None:
    """Long-lived worker loop: tasks in, verdicts + cache counters out.

    The worker owns a private :class:`MotionCache` that survives tasks.
    Each task builds its transition over *zero-copy read-only views* of
    the shared-memory ring slots (:meth:`Transition.from_views` — no
    per-task snapshot copies) and re-seeds the cache from the previous
    one via ``carry_from`` with the task's clean set — families of
    devices outside the dirty cell-rings are reused, everything else
    recomputes.

    Zero-copy makes sequencing load-bearing: the parent's ring keeps a
    task's ``cur`` slot intact for exactly one more run (it becomes the
    next run's ``prev``), and overwrites the task's ``prev`` slot at the
    next publish.  So everything that survives across tasks — the cache
    and the adoptable cur-side index — is only reused when this task's
    ``seq`` is the immediate successor of the one that produced it;
    otherwise the stale state (whose views may now show a different
    tick's data) is dropped wholesale and the task recomputes.
    """
    segments: Dict[str, shared_memory.SharedMemory] = {}
    # Segments that could not close because live views still pinned their
    # buffers; retried once the views are garbage.
    zombies: List[shared_memory.SharedMemory] = []
    cache: Optional[MotionCache] = None
    last_transition: Optional[Transition] = None
    last_names: set = set()
    last_seq: Optional[int] = None
    kernel = kwargs.get("kernel")
    try:
        while True:
            task = conn.recv()
            if task is None:
                break
            try:
                n, d = task["shape"]
                seq = task["seq"]
                consecutive = last_seq is not None and seq == last_seq + 1
                if not consecutive:
                    # The ring may have recycled the slots this state's
                    # views point into; nothing carried is trustworthy.
                    cache = None
                    last_transition = None
                    last_names = set()
                # Evict superseded segments: the parent regrows capacity
                # under new names and unlinks the old ones, which stay
                # pinned in the kernel as long as any worker keeps them
                # mapped.  Views pin mappings, so any carried state
                # referencing a stale segment is dropped first; a close
                # still blocked by an exported buffer parks the segment
                # on the zombie list for a later retry.
                keep = set(task["ring"])
                stale = [name for name in segments if name not in keep]
                if stale:
                    if last_names & set(stale):
                        cache = None
                        last_transition = None
                        last_names = set()
                    for name in stale:
                        seg = segments.pop(name)
                        try:
                            seg.close()
                        except BufferError:  # pragma: no cover - view alive
                            zombies.append(seg)
                        except OSError:  # pragma: no cover - already gone
                            pass
                if zombies:
                    remaining = []
                    for seg in zombies:
                        try:
                            seg.close()
                        except BufferError:  # pragma: no cover
                            remaining.append(seg)
                        except OSError:  # pragma: no cover
                            pass
                    zombies = remaining

                def _attach(name: str) -> np.ndarray:
                    seg = segments.get(name)
                    if seg is None:
                        seg = shared_memory.SharedMemory(name=name)
                        if unregister_shm:
                            _shm_unregister(name)
                        segments[name] = seg
                    # Zero-copy, read-only: the transition reads the ring
                    # slot in place.  The flagged-subset indexes and every
                    # family are built from fancy-indexed *copies*, so
                    # nothing retained beyond this task dereferences the
                    # slot once the ring moves on.
                    arr = np.frombuffer(
                        seg.buf, dtype=np.float64, count=n * d
                    ).reshape(n, d)
                    arr.flags.writeable = False
                    return arr

                def _build(index_prev) -> Transition:
                    return Transition.from_views(
                        _attach(task["prev"]),
                        _attach(task["cur"]),
                        task["flagged"],
                        task["r"],
                        task["tau"],
                        index_prev=index_prev,
                    )

                # The store rolls cur into prev at every tick boundary,
                # so this tick's prev-side flagged index is last tick's
                # cur-side one whenever the flagged set held steady; the
                # adoption is content-validated, so a mismatch (stream
                # jump, changed r) falls back to a fresh build.  Only a
                # consecutive task may adopt: a lazy index build on an
                # older transition would read a recycled ring slot.
                index_prev = None
                if (
                    last_transition is not None
                    and last_transition.flagged_sorted == task["flagged"]
                    and last_transition.r == task["r"]
                ):
                    index_prev = last_transition.cur_index
                try:
                    transition = _build(index_prev)
                except Exception:
                    if index_prev is None:
                        raise
                    transition = _build(None)
                last_transition = transition
                last_names = {task["prev"], task["cur"]}
                clean = task["clean"]
                if cache is not None and clean is not None:
                    cache = MotionCache.carry_from(cache, transition, clean)
                else:
                    cache = MotionCache(transition, kernel=kernel)
                characterizer = Characterizer(
                    transition, cache=cache, **kwargs
                )
                devices = task["devices"]
                if task["precompute"] and devices:
                    transition.neighborhoods_batch(devices)
                    transition.neighborhoods_batch(devices, radius_factor=4.0)
                expansions_before = cache.expansions
                reused_before = cache.carried_used
                verdicts = [characterizer.characterize(j) for j in devices]
                last_seq = seq
                # Chaos hooks (inert in production: the keys are only
                # ever present when a FaultPlan injected them).  A hang
                # delays the reply past the parent's deadline; a dropped
                # reply never arrives at all — either way the parent
                # kills this process and re-runs the slice elsewhere.
                hang = task.get("chaos_hang")
                if hang:  # pragma: no cover - exercised via tests/chaos
                    time.sleep(hang)
                if task.get("chaos_drop_reply"):
                    continue
                conn.send(
                    (
                        "ok",
                        verdicts,
                        cache.expansions - expansions_before,
                        cache.carried_used - reused_before,
                    )
                )
            except Exception:
                # Reset carry state: a half-built cache or transition
                # must not seed the next tick.
                cache = None
                last_transition = None
                last_names = set()
                last_seq = None
                conn.send(("err", traceback.format_exc()))
    except (EOFError, KeyboardInterrupt):  # pragma: no cover - shutdown races
        pass
    finally:
        cache = None
        last_transition = None
        for seg in segments.values():
            try:
                seg.close()
            except (OSError, BufferError):  # pragma: no cover - already gone
                pass
        conn.close()


class _DeadlineExpired(Exception):
    """A worker missed its dispatch deadline (internal control flow)."""


# Deprecated aliases for the supervision primitives now in repro.ipc.
_PoolWorker = WorkerHandle
_signal_worker_shutdown = signal_worker_shutdown
_reap_worker = reap_worker
_shutdown_worker = shutdown_worker
_shutdown_workers = shutdown_workers


_SnapshotRing = SnapshotRing



@dataclass
class _PoolState:
    """Everything :class:`WorkerPoolBackend` must tear down at close.

    Kept in a separate object so a ``weakref.finalize`` / atexit hook can
    clean up without keeping the backend itself alive.
    """

    workers: List[_PoolWorker] = field(default_factory=list)
    ring: _SnapshotRing = field(default_factory=_SnapshotRing)

    def close(self) -> None:
        _shutdown_workers(self.workers)
        self.workers = []
        self.ring.drop_segments()


class WorkerPoolBackend(ExecutionBackend):
    """Persistent shared-memory worker pool (the ``process`` backend).

    Lifecycle
    ---------
    Workers start lazily on the first :meth:`run` that clears
    ``min_process_devices`` and live until :meth:`close` (the backend is
    a context manager, engines and services forward their own ``close``
    here, and an atexit hook sweeps up anything left).  A worker that
    dies mid-run is respawned automatically (``worker_respawn``) and its
    task re-sent — the fresh worker simply recomputes without a carry.
    ``max_worker_tasks`` bounds worker lifetime: after that many tasks a
    worker is retired and replaced, bounding any slow leak in long
    always-on services.

    Per-run protocol
    ----------------
    The parent copies the two snapshot arrays into shared memory (no
    pickling; the segments are reused and grown geometrically), then
    sends each worker only ``(flagged set, clean set, its device ids)``.
    A run engages ``ceil(|devices| / chunk_size)`` workers (capped at
    the pool size) and routes by ``device % engaged``: under a steady
    engagement level a device keeps landing on the same worker, which
    is what makes the worker-private cache carry effective.  When the
    engagement level shifts between ticks the mapping reshuffles and
    carry hits drop for that tick (verdicts stay exact — the per-worker
    sequence gate already withholds invalid carries); the trade is
    deliberate, since every engaged worker pays a per-tick transition
    rebuild.

    Cache-invalidation invariant
    ----------------------------
    The caller's clean set compares tick ``k`` against tick ``k-1``, so
    a worker may only carry its cache if that cache is exactly one run
    old.  Two gates enforce it: the *pool* gate (the previous
    :meth:`run` on this backend took the pool path for a same-shaped
    transition — a serial fallback or stream change voids every carry)
    and the *per-worker* gate (the worker served the immediately
    previous run; one idled by partial engagement, respawn or
    ``max_worker_tasks`` retirement recomputes instead).  A run that
    fails mid-flight restarts the pool wholesale, so no later run can
    consume a stranded reply or a half-updated cache.

    Supervision
    -----------
    Every roundtrip is supervised.  ``dispatch_deadline`` bounds how
    long the parent waits for a worker's reply; a worker that misses it
    is declared hung, killed, respawned and its task re-sent — up to
    ``dispatch_retries`` times with exponential backoff
    (``retry_backoff``).  A slice that keeps killing workers
    (``poison_threshold``) is *quarantined*: its devices run on the
    in-process serial path (verdict-identical, just slower) so one
    pathological batch cannot take the pool down, and the event is
    counted on ``repro_pool_poison_batches_total``.  Worker *error
    replies* (a deterministic Python exception in the characterization
    itself) are never retried — re-running deterministic code cannot
    help — and surface immediately as :class:`PoolError` carrying the
    worker traceback (also kept on :attr:`last_worker_error`, so a
    later teardown can never mask the root cause).

    Pool health is an explicit three-state machine, exported as the
    gauge ``repro_pool_health_state`` (0 healthy / 1 degraded /
    2 serial-fallback) with transitions counted on
    ``repro_pool_health_transitions_total{from,to}``:

    * ``healthy`` → ``degraded`` on any supervised fault in a run;
    * ``degraded`` → ``healthy`` after ``recovery_runs`` consecutive
      clean pool runs;
    * ``degraded`` → ``serial-fallback`` after
      ``serial_fallback_after`` consecutive faulty runs: runs execute
      serially (counted on ``repro_pool_serial_fallback_runs_total``)
      except a pool *probe* every ``recovery_probe_every`` runs — a
      clean probe promotes back to ``degraded``, a faulty one restarts
      the probe countdown.
    """

    name = "process"

    #: Registry metric names (process-global registry; see repro.obs).
    _GAUGE_WORKERS = "repro_pool_workers_live"
    _GAUGE_RING_SEQ = "repro_pool_ring_seq"
    _GAUGE_HEALTH = "repro_pool_health_state"
    _COUNTER_RESPAWNS = "repro_pool_worker_respawns_total"
    _COUNTER_HUNG = "repro_pool_hung_workers_total"
    _COUNTER_RETRIES = "repro_pool_dispatch_retries_total"
    _COUNTER_POISON = "repro_pool_poison_batches_total"
    _COUNTER_FALLBACK_RUNS = "repro_pool_serial_fallback_runs_total"
    _COUNTER_TRANSITIONS = "repro_pool_health_transitions_total"

    #: Health state -> exported gauge level.
    _HEALTH_LEVELS = {"healthy": 0, "degraded": 1, "serial-fallback": 2}

    def __init__(self) -> None:
        self._state = _PoolState()
        self._started_config: Optional[Tuple] = None
        self._last_pool_meta: Optional[Tuple] = None
        self._run_seq = 0
        self._closed = False
        # Supervision / health state.
        self._health = "healthy"
        self._faulty_streak = 0
        self._clean_streak = 0
        self._runs_since_probe = 0
        self._faults_this_run = 0
        self.poisoned_batches = 0
        #: Most recent worker traceback observed (kept across close /
        #: atexit sweeps, so the root cause of a failed run survives
        #: the teardown that follows it).
        self.last_worker_error: Optional[str] = None
        # Prefer fork only on Linux, where it is both safe and an order
        # of magnitude faster to start; macOS abandoned fork as the
        # default for good reasons (Objective-C / Accelerate threads in
        # the parent), so everywhere else the platform default rules.
        if sys.platform == "linux":
            self._ctx = multiprocessing.get_context("fork")
        else:  # pragma: no cover - platform-dependent
            self._ctx = multiprocessing.get_context()
        # Fires when the backend is garbage-collected *or* at interpreter
        # exit, whichever comes first — workers and shared-memory
        # segments never outlive their backend even when a driver forgot
        # close() (e.g. an engine created inside an experiment run).
        self._state_finalizer = weakref.finalize(
            self, _PoolState.close, self._state
        )

    # -- introspection -------------------------------------------------
    @property
    def workers_alive(self) -> int:
        """Currently running worker processes (0 before the first run)."""
        return sum(1 for w in self._state.workers if w.process.is_alive())

    # -- telemetry -----------------------------------------------------
    # Looked up per use (the getters are idempotent) rather than bound at
    # construction, so a backend keeps reporting into whatever the
    # process-global registry currently is — test harnesses swap it.
    def _count_respawn(self, reason: str) -> None:
        get_registry().counter(
            self._COUNTER_RESPAWNS,
            "Pool workers respawned, by reason (death, retirement)",
            labelnames=("reason",),
        ).labels(reason=reason.replace(" ", "-")).inc()

    def _count(self, name: str, help_text: str) -> None:
        get_registry().counter(name, help_text).inc()

    # -- health state machine ------------------------------------------
    @property
    def health(self) -> str:
        """Current pool health: healthy / degraded / serial-fallback."""
        return self._health

    def _set_health(self, new: str) -> None:
        old = self._health
        if new == old:
            return
        self._health = new
        registry = get_registry()
        registry.counter(
            self._COUNTER_TRANSITIONS,
            "Pool health state transitions",
            labelnames=("from", "to"),
        ).labels(**{"from": old, "to": new}).inc()
        registry.gauge(
            self._GAUGE_HEALTH,
            "Pool health: 0 healthy, 1 degraded, 2 serial-fallback",
        ).set(self._HEALTH_LEVELS[new])

    def _note_run_outcome(self, config: EngineConfig, *, faulty: bool) -> None:
        """Advance the health machine after one pool-path run."""
        if faulty:
            self._clean_streak = 0
            self._faulty_streak += 1
            if self._health == "healthy":
                self._set_health("degraded")
            if (
                self._health == "degraded"
                and self._faulty_streak >= config.serial_fallback_after
            ):
                self._set_health("serial-fallback")
                self._runs_since_probe = 0
            elif self._health == "serial-fallback":
                # A faulty probe: restart the countdown to the next one.
                self._runs_since_probe = 0
        else:
            self._faulty_streak = 0
            self._clean_streak += 1
            if self._health == "serial-fallback":
                # Clean probe: the pool works again, but stay wary.
                self._set_health("degraded")
                self._clean_streak = 1
            elif (
                self._health == "degraded"
                and self._clean_streak >= config.recovery_runs
            ):
                self._set_health("healthy")

    # -- lifecycle -----------------------------------------------------
    def _pool_size(self, config: EngineConfig) -> int:
        # The pool always holds the *configured* worker count — sizing it
        # to the batch would restart workers (and lose their caches)
        # every time the per-tick recompute count fluctuates.
        return config.workers or os.cpu_count() or 1

    def plans_fanout(
        self, devices: Sequence[int], config: EngineConfig
    ) -> bool:
        if (
            self._health == "serial-fallback"
            and self._runs_since_probe + 1 < config.recovery_probe_every
        ):
            # The next run executes serially, so the parent-side warm-up
            # pays off exactly as on the serial backend.
            return False
        return (
            self._pool_size(config) > 1
            and len(devices) >= config.min_process_devices
        )

    def _config_key(self, workers: int, config: EngineConfig) -> Tuple:
        return (workers, tuple(sorted(config.characterizer_kwargs().items())))

    def _spawn_worker(self, config: EngineConfig) -> _PoolWorker:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=_pool_worker,
            args=(
                child_conn,
                config.characterizer_kwargs(),
                self._ctx.get_start_method() != "fork",
            ),
            daemon=True,
        )
        process.start()
        child_conn.close()
        return _PoolWorker(process=process, conn=parent_conn)

    def _retire_worker(self, worker: _PoolWorker) -> None:
        _shutdown_worker(worker)

    def _ensure_workers(self, workers: int, config: EngineConfig) -> None:
        key = self._config_key(workers, config)
        if self._started_config != key:
            # Config changed (or first run): restart the pool wholesale.
            _shutdown_workers(self._state.workers)
            self._state.workers = []
            self._started_config = key
            self._last_pool_meta = None
        while len(self._state.workers) < workers:
            self._state.workers.append(self._spawn_worker(config))
        for i, worker in enumerate(self._state.workers):
            dead = not worker.process.is_alive()
            if dead and not config.worker_respawn:
                raise PoolError(
                    f"pool worker {i} died and worker_respawn is off",
                    worker_traceback=self.last_worker_error,
                )
            expired = (
                config.max_worker_tasks is not None
                and worker.tasks_done >= config.max_worker_tasks
            )
            if dead or expired:
                self._retire_worker(worker)
                self._state.workers[i] = self._spawn_worker(config)
                self._count_respawn("dead" if dead else "retired")

    def _publish(self, transition: Transition) -> Tuple[str, str]:
        """Publish the snapshots through the ring; return segment names."""
        return self._state.ring.publish(transition)

    def close(self) -> None:
        """Shut workers down and release the shared-memory segments.

        Idempotent: a double close (or a close racing the atexit sweep)
        is a clean no-op.  Worker tracebacks are never consumed here —
        the last one observed stays on :attr:`last_worker_error`.
        """
        if self._closed:
            return
        self._closed = True
        self._state.close()
        self._started_config = None
        self._last_pool_meta = None

    # -- execution -----------------------------------------------------
    def run(
        self,
        transition: Transition,
        devices: Sequence[int],
        config: EngineConfig,
        cache: Optional[MotionCache] = None,
        *,
        carry_clean: Optional[Sequence[int]] = None,
    ) -> BackendRun:
        devices = [int(j) for j in devices]
        workers = self._pool_size(config)
        if workers <= 1 or len(devices) < config.min_process_devices:
            # Serial fallback consults the caller's shared cache (and its
            # carry); worker caches go stale, so void the next pool carry.
            self._last_pool_meta = None
            return SerialBackend().run(transition, devices, config, cache)
        if self._health == "serial-fallback":
            self._runs_since_probe += 1
            if self._runs_since_probe < config.recovery_probe_every:
                # Degraded mode: the pool keeps faulting, so run serially
                # (same shared cache as the small-tick fallback, so reuse
                # keeps working) until the next recovery probe is due.
                self._count(
                    self._COUNTER_FALLBACK_RUNS,
                    "Runs executed serially because pool health is "
                    "serial-fallback",
                )
                self._last_pool_meta = None
                return SerialBackend().run(transition, devices, config, cache)
            # This run is the recovery probe: take the pool path and let
            # its outcome decide whether the pool is trustworthy again.
            self._runs_since_probe = 0
        self._closed = False
        self._faults_this_run = 0
        tracer = get_tracer()
        registry = tracer.registry
        # Publish before (possibly) forking workers: creating the first
        # shared-memory segment starts the resource-tracker process, and
        # fork-context workers must inherit that tracker — a worker that
        # boots its own tracker would try to "clean up" (unlink) the
        # parent's live segments when it exits.
        with tracer.span("pool-publish"):
            prev_name, cur_name = self._publish(transition)
        self._ensure_workers(workers, config)
        registry.gauge(
            self._GAUGE_WORKERS, "Live worker processes in the pool"
        ).set(self.workers_alive)
        meta = (transition.n, transition.dim, transition.r, transition.tau)
        carry_ok = self._last_pool_meta == meta
        self._last_pool_meta = meta
        clean = (
            tuple(sorted(int(j) for j in carry_clean))
            if (carry_clean is not None and carry_ok)
            else None
        )
        # Engage only as many workers as the batch warrants: every
        # engaged worker pays a per-tick transition rebuild, so a
        # 12-device tick should wake 2 workers, not 8.  Large batches
        # engage the whole pool with stable device%N routing, which
        # keeps each device's family in the same worker's cache.
        target = config.chunk_size or 8
        engaged = max(1, min(workers, math.ceil(len(devices) / target)))
        assignments: List[List[int]] = [[] for _ in range(engaged)]
        for device in devices:
            assignments[device % engaged].append(device)
        self._run_seq += 1
        seq = self._run_seq
        registry.gauge(
            self._GAUGE_RING_SEQ,
            "Publish sequence number of the shared-memory snapshot ring",
        ).set(seq)
        task_base = {
            "prev": prev_name,
            "cur": cur_name,
            "ring": self._state.ring.segment_names(),
            "seq": seq,
            "shape": (transition.n, transition.dim),
            "r": transition.r,
            "tau": transition.tau,
            "flagged": transition.flagged_sorted,
            "precompute": config.precompute_neighborhoods,
        }
        tasks = []
        for index in range(len(assignments)):
            if not assignments[index]:
                continue
            # Per-worker carry gate: the clean set compares this run to
            # the immediately previous one, so only a worker that served
            # that exact run holds a cache the set is valid for — a
            # worker idled by partial engagement (or freshly spawned)
            # must recompute instead of carrying a multi-run-old cache.
            fresh = self._state.workers[index].last_seq == seq - 1
            tasks.append(
                (
                    index,
                    {
                        **task_base,
                        "clean": clean if fresh else None,
                        "devices": assignments[index],
                    },
                )
            )
        try:
            # Scatter first, then gather: workers compute concurrently.
            with tracer.span("pool-dispatch"):
                for index, task in tasks:
                    self._send_task(index, task, config, seq)
            out: Dict[int, Characterization] = {}
            expansions = 0
            families_reused = 0
            with tracer.span("pool-collect"):
                for index, task in tasks:
                    # Per-worker round-trip: dispatch-to-reply latency of
                    # each engaged worker, one histogram sample apiece.
                    with tracer.span("pool-worker-roundtrip"):
                        verdicts, worker_expansions, worker_reused = (
                            self._collect(index, task, config, seq, transition)
                        )
                    expansions += worker_expansions
                    families_reused += worker_reused
                    for verdict in verdicts:
                        out[verdict.device] = verdict
        except BaseException:
            # A failed run strands unread replies in sibling pipes and
            # half-updated caches in workers; restart the pool wholesale
            # so the next run cannot consume another run's stale state.
            # BaseException on purpose: a KeyboardInterrupt mid-gather
            # strands replies exactly the same way.
            self._reset_pool()
            self._note_run_outcome(config, faulty=True)
            raise
        self._note_run_outcome(config, faulty=self._faults_this_run > 0)
        return BackendRun(
            verdicts=out,
            expansions=expansions,
            families_reused=families_reused,
        )

    def _respawn(
        self, index: int, config: EngineConfig, reason: str
    ) -> _PoolWorker:
        if not config.worker_respawn:
            raise PoolError(
                f"pool worker {index} {reason} and worker_respawn is off",
                worker_traceback=self.last_worker_error,
            )
        self._retire_worker(self._state.workers[index])
        worker = self._state.workers[index] = self._spawn_worker(config)
        self._count_respawn(reason)
        return worker

    def _send_task(
        self,
        index: int,
        task: Dict[str, object],
        config: EngineConfig,
        seq: int,
    ) -> None:
        """Send one task, respawning a dead worker once.

        A respawned worker has no cache, so its task is sent without a
        clean set — it recomputes everything it was assigned (correct,
        just slower for one tick).  The chaos injector hooks in here:
        inert in production, it can kill the worker, delay the send,
        corrupt the ring sequence number, or arm a worker-side hang or
        reply drop for the ``tests/chaos`` suite.
        """
        action = None
        injector = get_injector()
        if injector.active:
            action = injector.pool_dispatch(seq, index)
        if action is not None:
            if action.delay:
                time.sleep(action.delay)
            if action.corrupt_seq:
                task = {**task, "seq": -int(task["seq"])}
            if action.hang:
                task = {**task, "chaos_hang": action.hang}
            if action.drop_reply:
                task = {**task, "chaos_drop_reply": True}
            if action.kill:
                self._state.workers[index].process.kill()
                self._state.workers[index].process.join()
        worker = self._state.workers[index]
        if not worker.process.is_alive():
            self._faults_this_run += 1
            worker = self._respawn(index, config, "died")
            task = {**task, "clean": None}
        try:
            worker.conn.send(task)
        except (OSError, ValueError, BrokenPipeError):
            self._faults_this_run += 1
            worker = self._respawn(index, config, "lost its pipe")
            worker.conn.send({**task, "clean": None})
        if action is not None and action.kill_after:
            worker.process.kill()

    @staticmethod
    def _await_reply(worker: _PoolWorker, deadline: Optional[float]):
        """Receive one reply, bounded by the dispatch deadline."""
        if deadline is not None and not worker.conn.poll(deadline):
            raise _DeadlineExpired()
        return worker.conn.recv()

    def _collect(
        self,
        index: int,
        task: Dict[str, object],
        config: EngineConfig,
        seq: int,
        transition: Transition,
    ) -> Tuple[List[Characterization], int, int]:
        """Await one worker's reply under the supervision policy.

        Infrastructure faults (the worker died or missed the dispatch
        deadline) are retried against a respawned worker with
        exponential backoff, up to ``dispatch_retries`` times; a slice
        that keeps killing workers (``poison_threshold``) is quarantined
        onto the serial path.  A worker *error reply* — a deterministic
        exception inside the characterization — is never retried and
        surfaces as :class:`PoolError` carrying the worker traceback.
        """
        deadline = config.dispatch_deadline
        worker = self._state.workers[index]
        attempt = 0
        kills = 0
        while True:
            failure = None
            try:
                reply = self._await_reply(worker, deadline)
            except _DeadlineExpired:
                failure = "hung"
                self._count(
                    self._COUNTER_HUNG,
                    "Pool workers killed after missing the dispatch deadline",
                )
                worker.process.kill()
            except (EOFError, OSError):
                failure = "died mid-task"
            if failure is None:
                worker.tasks_done += 1
                if reply[0] == "err":
                    self.last_worker_error = reply[1]
                    raise PoolError(
                        f"pool worker {index} failed:\n{reply[1]}",
                        worker_traceback=reply[1],
                    )
                worker.last_seq = seq
                return reply[1], reply[2], reply[3]
            self._faults_this_run += 1
            kills += 1
            if (
                kills >= config.poison_threshold
                or attempt >= config.dispatch_retries
            ):
                return self._quarantine(index, task, config, transition, failure)
            attempt += 1
            if config.retry_backoff:
                time.sleep(config.retry_backoff * 2 ** (attempt - 1))
            self._count(
                self._COUNTER_RETRIES,
                "Pool dispatches retried after a worker fault",
            )
            worker = self._respawn(index, config, failure)
            try:
                worker.conn.send({**task, "clean": None})
            except (OSError, ValueError, BrokenPipeError):
                # The respawned worker is already gone; the next await
                # sees EOF and loops back here.
                pass

    def _quarantine(
        self,
        index: int,
        task: Dict[str, object],
        config: EngineConfig,
        transition: Transition,
        failure: str,
    ) -> Tuple[List[Characterization], int, int]:
        """Run a poison slice serially; keep the pool whole.

        The respawn keeps worker ``index`` available for sibling tasks
        and later runs.  The serial re-run uses a private cache so its
        expansion count can be reported like a worker's.
        """
        self.poisoned_batches += 1
        self._count(
            self._COUNTER_POISON,
            "Task slices quarantined to the serial path after repeatedly "
            "killing workers",
        )
        self._respawn(index, config, failure)
        cache = MotionCache(transition, kernel=config.kernel)
        run = SerialBackend().run(
            transition, task["devices"], config, cache
        )
        return list(run.verdicts.values()), cache.expansions, 0

    def _reset_pool(self) -> None:
        """Retire every worker; the next run rebuilds from scratch."""
        _shutdown_workers(self._state.workers)
        self._state.workers = []
        self._started_config = None
        self._last_pool_meta = None


def make_backend(name: str) -> ExecutionBackend:
    """Instantiate a backend by :data:`~repro.engine.config.BACKENDS` name."""
    if name == "serial":
        return SerialBackend()
    if name == "process":
        return WorkerPoolBackend()
    if name == "process-spawn":
        return SpawnProcessBackend()
    raise ValueError(f"unknown backend {name!r}")  # pragma: no cover - guarded
