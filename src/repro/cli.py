"""Command-line entry point: regenerate paper artifacts.

Usage::

    python -m repro.cli list
    python -m repro.cli run table2
    python -m repro.cli run figure7 --steps 2 --seeds 0,1 --json out.json
    python -m repro.cli run table2 --backend process --workers 4
    python -m repro.cli run all --steps 2 --seeds 0

``run`` executes an experiment's ``run()`` with optional scale overrides
and prints the rendered table (plus an ASCII chart for the figure sweeps);
``--json`` additionally writes the raw :class:`ExperimentResult`.
``--backend`` / ``--workers`` select the characterization engine's
execution backend for the experiments that simulate (``process`` chunks
each interval's flagged devices over a worker pool).
"""

from __future__ import annotations

import argparse
import inspect
import sys
from typing import Callable, Dict, List, Optional, Sequence

from repro.engine.config import BACKENDS

from repro.experiments import (
    ablation_locality,
    ablation_malicious,
    ablation_sampling,
    ablation_tessellation,
    ablation_theorem7,
    figure6a,
    figure6b,
    figure7,
    figure8,
    figure9,
    table2,
    table3,
)
from repro.io.records import ExperimentResult
from repro.io.render import render_series, render_table

__all__ = ["main", "EXPERIMENTS"]

#: experiment name -> (module, chart spec or None)
EXPERIMENTS: Dict[str, tuple] = {
    "figure6a": (figure6a, ("m", "cdf", "r")),
    "figure6b": (figure6b, ("n", "containment", "tau")),
    "table2": (table2, None),
    "table3": (table3, None),
    "figure7": (figure7, ("A", "unresolved_ratio_percent", "G")),
    "figure8": (figure8, ("A", "missed_detection_percent", "G")),
    "figure9": (figure9, ("A", "unresolved_ratio_percent", "G")),
    "ablation-malicious": (ablation_malicious, None),
    "ablation-sampling": (ablation_sampling, None),
    "ablation-tessellation": (ablation_tessellation, None),
    "ablation-theorem7": (ablation_theorem7, None),
    "ablation-locality": (ablation_locality, None),
}

#: which experiments accept the scale overrides
_SCALED = {
    "ablation-malicious",
    "ablation-sampling",
    "table2",
    "table3",
    "figure7",
    "figure8",
    "figure9",
    "ablation-tessellation",
    "ablation-theorem7",
    "ablation-locality",
}


def _parse_seeds(text: str) -> tuple:
    try:
        return tuple(int(part) for part in text.split(",") if part != "")
    except ValueError as exc:
        raise argparse.ArgumentTypeError(f"bad seed list {text!r}") from exc


def build_parser() -> argparse.ArgumentParser:
    """Build the argparse tree (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the DSN'14 anomaly-characterization artifacts.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments")
    run = sub.add_parser("run", help="run one experiment (or 'all')")
    run.add_argument("experiment", choices=sorted(EXPERIMENTS) + ["all"])
    run.add_argument("--steps", type=int, default=None, help="intervals per seed")
    run.add_argument(
        "--seeds", type=_parse_seeds, default=None, help="comma-separated seeds"
    )
    run.add_argument("--json", default=None, help="also write the result JSON here")
    run.add_argument(
        "--backend",
        choices=BACKENDS,
        default=None,
        help="characterization engine backend (experiments that simulate)",
    )
    run.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes for --backend process",
    )
    return parser


def _run_one(
    name: str,
    steps: Optional[int],
    seeds: Optional[tuple],
    backend: Optional[str] = None,
    workers: Optional[int] = None,
) -> ExperimentResult:
    module, _ = EXPERIMENTS[name]
    kwargs = {}
    if name in _SCALED:
        if steps is not None:
            kwargs["steps"] = steps
        if seeds is not None:
            kwargs["seeds"] = seeds
    accepted = inspect.signature(module.run).parameters
    if backend is not None and "backend" in accepted:
        kwargs["backend"] = backend
    if workers is not None and "workers" in accepted:
        kwargs["workers"] = workers
    return module.run(**kwargs)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "list":
        for name in sorted(EXPERIMENTS):
            module, _ = EXPERIMENTS[name]
            doc = (module.__doc__ or "").strip().splitlines()[0]
            print(f"{name:<24} {doc}")
        return 0
    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        result = _run_one(name, args.steps, args.seeds, args.backend, args.workers)
        print(render_table(result))
        _, chart = EXPERIMENTS[name]
        if chart is not None:
            x, y, group = chart
            print()
            print(render_series(result, x=x, y=y, group=group))
        if args.json:
            path = args.json if len(names) == 1 else f"{args.json}.{name}.json"
            with open(path, "w") as handle:
                handle.write(result.to_json())
            print(f"(wrote {path})")
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
