"""Command-line entry point: regenerate paper artifacts, serve, replay.

Usage::

    python -m repro.cli list
    python -m repro.cli run table2
    python -m repro.cli run figure7 --steps 2 --seeds 0,1 --json out.json
    python -m repro.cli run table2 --backend process --workers 4
    python -m repro.cli run all --steps 2 --seeds 0
    python -m repro.cli serve --devices 10000 --ticks 20 --churn 0.01
    python -m repro.cli serve --metrics-port 9100 --log-json
    python -m repro.cli replay --trace trace.jsonl --store-shards 8
    python -m repro.cli serve --devices 100000 --topology-shards 4
    python -m repro.cli metrics --url http://127.0.0.1:9100

``run`` executes an experiment's ``run()`` with optional scale overrides
and prints the rendered table (plus an ASCII chart for the figure sweeps);
``--json`` additionally writes the raw :class:`ExperimentResult`.
``--backend`` / ``--workers`` select the characterization engine's
execution backend for the experiments that simulate (``process`` chunks
each interval's flagged devices over a worker pool).

``serve`` pumps a synthetic load (random drift + anomalous jumps +
optional coordinated bursts) through the online characterization service
and prints per-tick and aggregate figures; ``replay`` runs a detector
bank over a recorded JSON-lines QoS trace (or a generated synthetic one)
and feeds the resulting event stream through the same service.  Both
accept ``--store-shards`` / ``--batch`` / ``--backend`` to exercise the
service's sharding, batching and execution knobs (``--shards`` survives
as a deprecated alias), ``--topology-shards N`` to scale out across N
spatial shards with halo exchange, plus ``--detector`` /
``--detection`` and per-family knobs selecting the error detection
function ``a_k(j)`` (step, band, ewma, shewhart, cusum, holt-winters,
kalman) and its plane (vectorized array bank — the default — or the
scalar reference loop).  ``serve --raw`` ships raw QoS snapshots and
lets the service's own in-service bank decide the flags.

Both service commands take ``--metrics-port`` (a Prometheus + JSON
``/metrics`` endpoint served for the duration of the run) and
``--log-json`` (JSON-lines start/tick/summary events on stderr instead
of the per-tick table); ``metrics`` fetches one snapshot from a running
endpoint.
"""

from __future__ import annotations

import argparse
import inspect
import json
import sys
from typing import Dict, Optional, Sequence

from repro.detection.banks import FAMILIES, PLANES
from repro.engine.config import BACKENDS
from repro.online.service import VALIDATION_MODES

from repro.experiments import (
    ablation_locality,
    ablation_malicious,
    ablation_sampling,
    ablation_tessellation,
    ablation_theorem7,
    figure6a,
    figure6b,
    figure7,
    figure8,
    figure9,
    table2,
    table3,
)
from repro.io.records import ExperimentResult
from repro.io.render import render_series, render_table

__all__ = ["main", "EXPERIMENTS"]

#: experiment name -> (module, chart spec or None)
EXPERIMENTS: Dict[str, tuple] = {
    "figure6a": (figure6a, ("m", "cdf", "r")),
    "figure6b": (figure6b, ("n", "containment", "tau")),
    "table2": (table2, None),
    "table3": (table3, None),
    "figure7": (figure7, ("A", "unresolved_ratio_percent", "G")),
    "figure8": (figure8, ("A", "missed_detection_percent", "G")),
    "figure9": (figure9, ("A", "unresolved_ratio_percent", "G")),
    "ablation-malicious": (ablation_malicious, None),
    "ablation-sampling": (ablation_sampling, None),
    "ablation-tessellation": (ablation_tessellation, None),
    "ablation-theorem7": (ablation_theorem7, None),
    "ablation-locality": (ablation_locality, None),
}

#: which experiments accept the scale overrides
_SCALED = {
    "ablation-malicious",
    "ablation-sampling",
    "table2",
    "table3",
    "figure7",
    "figure8",
    "figure9",
    "ablation-tessellation",
    "ablation-theorem7",
    "ablation-locality",
}


def _parse_seeds(text: str) -> tuple:
    try:
        return tuple(int(part) for part in text.split(",") if part != "")
    except ValueError as exc:
        raise argparse.ArgumentTypeError(f"bad seed list {text!r}") from exc


def build_parser() -> argparse.ArgumentParser:
    """Build the argparse tree (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the DSN'14 anomaly-characterization artifacts.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments")
    run = sub.add_parser("run", help="run one experiment (or 'all')")
    run.add_argument("experiment", choices=sorted(EXPERIMENTS) + ["all"])
    run.add_argument("--steps", type=int, default=None, help="intervals per seed")
    run.add_argument(
        "--seeds", type=_parse_seeds, default=None, help="comma-separated seeds"
    )
    run.add_argument("--json", default=None, help="also write the result JSON here")
    run.add_argument(
        "--backend",
        choices=BACKENDS,
        default=None,
        help="characterization engine backend (experiments that simulate)",
    )
    run.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes for --backend process",
    )

    class _DeprecatedStoreShards(argparse.Action):
        """``--shards`` alias for ``--store-shards``, with a warning."""

        def __call__(self, parser, namespace, values, option_string=None):
            print(
                "warning: --shards is deprecated; use --store-shards "
                "(store-internal hash shards) or --topology-shards "
                "(spatial shards)",
                file=sys.stderr,
            )
            setattr(namespace, self.dest, values)

    def add_service_args(sub_parser: argparse.ArgumentParser) -> None:
        sub_parser.add_argument("--r", type=float, default=0.03, help="impact radius")
        sub_parser.add_argument("--tau", type=int, default=3, help="density threshold")
        sub_parser.add_argument(
            "--store-shards", dest="store_shards", type=int, default=8,
            help="hash shards inside each device-state store",
        )
        sub_parser.add_argument(
            "--shards", dest="store_shards", type=int,
            action=_DeprecatedStoreShards, help=argparse.SUPPRESS,
        )
        sub_parser.add_argument(
            "--topology-shards", type=int, default=0,
            help="spatial shards with halo exchange (0 = single service)",
        )
        sub_parser.add_argument(
            "--topology-workers", choices=("thread", "process"),
            default="thread",
            help="where shard pipelines run: in-parent threads or "
            "per-shard processes over shared-memory partitions",
        )
        sub_parser.add_argument(
            "--min-shard-devices", type=int, default=1024,
            help="auto-collapse the shard count so every shard keeps at "
            "least this many devices (0 disables)",
        )
        sub_parser.add_argument(
            "--batch", type=int, default=None, help="updates applied per drain pass"
        )
        sub_parser.add_argument(
            "--queue", type=int, default=65_536, help="ingest queue capacity"
        )
        sub_parser.add_argument(
            "--backend", choices=BACKENDS, default="serial",
            help="characterization engine backend",
        )
        sub_parser.add_argument(
            "--workers", type=int, default=None,
            help="worker processes for --backend process",
        )
        sub_parser.add_argument(
            "--max-worker-tasks", type=int, default=None,
            help="retire a persistent-pool worker after this many tasks",
        )
        sub_parser.add_argument(
            "--full", action="store_true",
            help="disable incremental invalidation (recompute all verdicts)",
        )
        sub_parser.add_argument(
            "--reuse-motions",
            action=argparse.BooleanOptionalAction,
            default=True,
            help="carry motion families of clean devices across ticks",
        )
        sub_parser.add_argument(
            "--json", default=None, help="also write the summary JSON here"
        )
        obs = sub_parser.add_argument_group(
            "observability", "metrics endpoint and structured logging"
        )
        obs.add_argument(
            "--metrics-port", type=int, default=None,
            help="serve /metrics and /healthz on this port while running "
            "(0 = ephemeral; the bound port is printed to stderr)",
        )
        obs.add_argument(
            "--metrics-host", default="127.0.0.1",
            help="bind address for --metrics-port",
        )
        obs.add_argument(
            "--log-json", action="store_true",
            help="emit JSON-lines events (start/tick/summary) on stderr "
            "instead of the per-tick table",
        )
        fault = sub_parser.add_argument_group(
            "fault tolerance", "supervision deadlines and checkpoint-restore"
        )
        fault.add_argument(
            "--dispatch-deadline", type=float, default=None,
            help="seconds a pool roundtrip may take before the worker "
            "is declared hung, killed and the batch retried",
        )
        fault.add_argument(
            "--validation", choices=VALIDATION_MODES, default="strict",
            help="malformed-input policy: strict rejects the frame, "
            "sanitize repairs bad rows from the last good state",
        )
        fault.add_argument(
            "--checkpoint-dir", default=None,
            help="checkpoint directory; the run resumes from its newest "
            "checkpoint if one exists",
        )
        fault.add_argument(
            "--checkpoint-every", type=int, default=1,
            help="ticks between checkpoints (with --checkpoint-dir)",
        )
        fault.add_argument(
            "--checkpoint-keep", type=int, default=3,
            help="checkpoints retained after pruning",
        )
        detect = sub_parser.add_argument_group(
            "detection", "error-detection function a_k(j) and its knobs"
        )
        detect.add_argument(
            "--detector", choices=FAMILIES, default="step",
            help="detector family flagging abnormal QoS variations",
        )
        detect.add_argument(
            "--detection", choices=PLANES, default="bank",
            help="detection plane: vectorized bank or scalar reference loop",
        )
        detect.add_argument(
            "--max-step", type=float, default=None,
            help="step: largest normal jump (default min(4r, 1))",
        )
        detect.add_argument(
            "--band-low", type=float, default=0.8,
            help="band: lower edge of the acceptable band",
        )
        detect.add_argument(
            "--band-high", type=float, default=1.0,
            help="band: upper edge of the acceptable band",
        )
        detect.add_argument(
            "--alpha", type=float, default=None,
            help="ewma / holt-winters: level smoothing factor",
        )
        detect.add_argument(
            "--nsigma", type=float, default=None,
            help="ewma / shewhart / kalman: control band width in sigmas",
        )
        detect.add_argument(
            "--window", type=int, default=None,
            help="shewhart: samples per control window",
        )
        detect.add_argument(
            "--cusum-threshold", type=float, default=None,
            help="cusum: decision interval h",
        )
        detect.add_argument(
            "--cusum-drift", type=float, default=None,
            help="cusum: allowance nu per deviation",
        )
        detect.add_argument(
            "--hw-beta", type=float, default=None,
            help="holt-winters: trend smoothing factor",
        )
        detect.add_argument(
            "--hw-band", type=float, default=None,
            help="holt-winters: tolerated smoothed deviations",
        )
        detect.add_argument(
            "--kalman-q", type=float, default=None,
            help="kalman: process noise variance",
        )
        detect.add_argument(
            "--kalman-rho", type=float, default=None,
            help="kalman: measurement noise variance",
        )
        detect.add_argument(
            "--det-warmup", type=int, default=None,
            help="samples before a detector may raise (family default)",
        )

    serve = sub.add_parser(
        "serve", help="pump synthetic load through the online service"
    )
    add_service_args(serve)
    serve.add_argument("--devices", type=int, default=10_000, help="population size")
    serve.add_argument("--services", type=int, default=2, help="QoS dimensions")
    serve.add_argument("--ticks", type=int, default=20, help="intervals to run")
    serve.add_argument(
        "--churn", type=float, default=0.01, help="fraction of devices reporting per tick"
    )
    serve.add_argument(
        "--flag-rate", type=float, default=0.1,
        help="fraction of reports that are anomalous",
    )
    serve.add_argument(
        "--burst-every", type=int, default=0,
        help="coordinated burst period in ticks (0 = off)",
    )
    serve.add_argument(
        "--burst-size", type=int, default=8, help="devices per coordinated burst"
    )
    serve.add_argument("--seed", type=int, default=0, help="load generator seed")
    serve.add_argument(
        "--raw", action="store_true",
        help="ship raw QoS snapshots; the service's own detector bank "
        "(--detector/--detection) decides the flags",
    )

    replay = sub.add_parser(
        "replay", help="replay a QoS trace through the online service"
    )
    add_service_args(replay)
    replay.add_argument(
        "--trace", default=None,
        help="JSON-lines trace file (default: generate a synthetic trace)",
    )
    replay.add_argument(
        "--devices", type=int, default=200, help="synthetic trace population"
    )
    replay.add_argument(
        "--services", type=int, default=2, help="synthetic trace QoS dimensions"
    )
    replay.add_argument(
        "--steps", type=int, default=24, help="synthetic trace length"
    )
    replay.add_argument("--seed", type=int, default=0, help="synthetic trace seed")

    metrics = sub.add_parser(
        "metrics",
        help="fetch /metrics from a running endpoint "
        "(or dump the in-process registry)",
    )
    metrics.add_argument(
        "--url", default=None,
        help="endpoint base, e.g. http://127.0.0.1:9100 "
        "(omit to render this process's own registry)",
    )
    metrics.add_argument(
        "--format", choices=("prometheus", "json"), default="prometheus",
        help="exposition format",
    )
    metrics.add_argument(
        "--timeout", type=float, default=5.0, help="fetch timeout in seconds"
    )
    return parser


def _detector_spec(args: argparse.Namespace):
    """Build a :class:`DetectorSpec` from ``--detector`` and its knobs."""
    from repro.detection.banks import DetectorSpec

    family = args.detector
    params = {}

    def put(key, value):
        if value is not None:
            params[key] = value

    if family == "step":
        params["max_step"] = (
            args.max_step if args.max_step is not None else min(4.0 * args.r, 1.0)
        )
    elif family == "band":
        put("low", args.band_low)
        put("high", args.band_high)
    elif family == "ewma":
        put("alpha", args.alpha)
        put("nsigma", args.nsigma)
    elif family == "shewhart":
        put("window", args.window)
        put("nsigma", args.nsigma)
    elif family == "cusum":
        put("threshold", args.cusum_threshold)
        put("drift", args.cusum_drift)
    elif family == "holt-winters":
        put("alpha", args.alpha)
        put("beta", args.hw_beta)
        put("band", args.hw_band)
    elif family == "kalman":
        put("process_var", args.kalman_q)
        put("measurement_var", args.kalman_rho)
        put("nsigma", args.nsigma)
    put("warmup", args.det_warmup)
    return DetectorSpec(family, params)


def _service_config(args: argparse.Namespace):
    """Build a :class:`ServiceConfig` from the shared service flags."""
    from repro.online import ServiceConfig

    return ServiceConfig(
        r=args.r,
        tau=args.tau,
        shards=args.store_shards,
        queue_capacity=args.queue,
        max_batch=args.batch,
        incremental=not args.full,
        reuse_motions=args.reuse_motions,
        backend=args.backend,
        workers=args.workers,
        max_worker_tasks=args.max_worker_tasks,
        dispatch_deadline=args.dispatch_deadline,
        validation=args.validation,
    )


def _print_tick_table(ticks) -> None:
    print(
        f"{'tick':>5} {'applied':>8} {'flagged':>8} {'recomputed':>11} "
        f"{'reused':>7} {'dirty':>6}"
    )
    for tick in ticks:
        print(
            f"{tick.tick:>5} {tick.applied:>8} {len(tick.flagged):>8} "
            f"{len(tick.recomputed):>11} {len(tick.reused):>7} "
            f"{tick.dirty_cells:>6}"
        )


def _print_service_summary(result, service) -> None:
    stats = service.stats
    total = result.total_updates
    throughput = total / result.elapsed_seconds if result.elapsed_seconds else 0.0
    recompute_share = (
        100.0 * result.total_recomputed
        / max(1, result.total_recomputed + result.total_reused)
    )
    print(
        f"totals: updates={total} recomputed={result.total_recomputed} "
        f"reused={result.total_reused} ({recompute_share:.1f}% recomputed) "
        f"index_reuses={stats.index_reuses}"
    )
    print(
        f"motion families: recomputed={stats.families_recomputed} "
        f"reused={stats.families_reused}"
    )
    # The sharded front door exposes the same footprint figures itself.
    store = getattr(service, "store", service)
    print(
        f"store memory: {store.nbytes:,} bytes "
        f"({store.bytes_per_device:.0f} bytes/device, n={store.n}, "
        f"d={store.dim})"
    )
    print(
        f"elapsed={result.elapsed_seconds:.3f}s "
        f"throughput={throughput:,.0f} updates/s"
    )


def _write_service_json(path: str, result, service, extra: Dict) -> None:
    store = getattr(service, "store", service)
    payload = {
        "stats": service.stats.as_dict(),
        "store": {
            "n": store.n,
            "dim": store.dim,
            "nbytes": store.nbytes,
            "bytes_per_device": store.bytes_per_device,
        },
        "ticks": [
            {
                "tick": tick.tick,
                "applied": tick.applied,
                "flagged": len(tick.flagged),
                "recomputed": len(tick.recomputed),
                "reused": len(tick.reused),
                "dirty_cells": tick.dirty_cells,
                "stage_seconds": {
                    stage: round(seconds, 6)
                    for stage, seconds in tick.stage_seconds.items()
                },
            }
            for tick in result.ticks
        ],
        "stage_seconds": {
            stage: round(seconds, 6)
            for stage, seconds in result.stage_seconds.items()
        },
        "elapsed_seconds": result.elapsed_seconds,
        **extra,
    }
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2)
    print(f"(wrote {path})")


def _start_metrics_server(args: argparse.Namespace):
    """Start the --metrics-port endpoint, if requested; else None."""
    if args.metrics_port is None:
        return None
    from repro.obs import MetricsServer

    server = MetricsServer(host=args.metrics_host, port=args.metrics_port)
    port = server.start()
    print(
        f"metrics endpoint: http://{args.metrics_host}:{port}/metrics",
        file=sys.stderr,
    )
    return server


def _json_logger(args: argparse.Namespace, **static_fields):
    """The --log-json event logger, if requested; else None."""
    if not args.log_json:
        return None
    from repro.obs import JsonLinesLogger

    return JsonLinesLogger(**static_fields)


def _run_serve(args: argparse.Namespace) -> int:
    from repro.online import (
        CheckpointWriter,
        LoadGenerator,
        LoadProfile,
        MetricsSink,
        OnlineCharacterizationService,
        ShardedCheckpointWriter,
        ShardedService,
        drive_load,
        drive_load_measurements,
        latest_checkpoint,
        latest_sharded_checkpoint,
        restore_service,
        restore_sharded_service,
    )

    sharded = args.topology_shards > 0

    profile = LoadProfile(
        devices=args.devices,
        services=args.services,
        churn=args.churn,
        flag_rate=args.flag_rate,
        burst_every=args.burst_every,
        burst_size=args.burst_size,
        seed=args.seed,
    )
    generator = LoadGenerator(profile)
    if not args.raw and (args.detector != "step" or args.detection != "bank"):
        print(
            "note: --detector/--detection only apply with --raw; "
            "without it the load generator's own flags drive the service",
            file=sys.stderr,
        )
    server = _start_metrics_server(args)
    logger = _json_logger(
        args,
        command="serve",
        devices=args.devices,
        shards=args.store_shards,
        topology_shards=args.topology_shards,
    )
    if args.checkpoint_dir:
        resume = (
            latest_sharded_checkpoint(args.checkpoint_dir)
            if sharded
            else latest_checkpoint(args.checkpoint_dir)
        )
    else:
        resume = None
    try:
        if resume is not None:
            # A previous run left a checkpoint behind: rebuild the
            # service from it and replay the load generator forward so
            # the stream continues exactly where the dead process died.
            if sharded:
                service_cm = restore_sharded_service(
                    resume,
                    config=_service_config(args),
                    topology_workers=args.topology_workers,
                )
            else:
                service_cm = restore_service(
                    resume, config=_service_config(args)
                )
        elif sharded:
            service_cm = ShardedService(
                generator.initial_positions(),
                _service_config(args),
                topology_shards=args.topology_shards,
                topology_workers=args.topology_workers,
                min_shard_devices=args.min_shard_devices,
                detector=_detector_spec(args) if args.raw else None,
                detection=args.detection if args.raw else None,
            )
        else:
            service_cm = OnlineCharacterizationService(
                generator.initial_positions(),
                _service_config(args),
                detector=_detector_spec(args) if args.raw else None,
                detection=args.detection if args.raw else None,
            )
        # The service is a context manager: leaving the block shuts down
        # the persistent worker pool (no-op for the serial backend).
        with service_cm as service:
            start_tick = service.current_tick
            if start_tick:
                generator.fast_forward(start_tick)
                print(
                    f"resuming from {resume} (tick {start_tick})",
                    file=sys.stderr,
                )
            if args.checkpoint_dir:
                writer_cls = (
                    ShardedCheckpointWriter if sharded else CheckpointWriter
                )
                service.add_sink(
                    writer_cls(
                        service,
                        args.checkpoint_dir,
                        every=args.checkpoint_every,
                        keep=args.checkpoint_keep,
                    )
                )
            metrics = MetricsSink()
            service.add_sink(metrics)
            mode = "full-recompute" if args.full else "incremental"
            flag_source = (
                f"in-service {args.detector}/{args.detection} bank"
                if args.raw
                else "precomputed"
            )
            if logger is not None:
                service.add_sink(logger.tick_sink)
                logger.event(
                    "start",
                    ticks=args.ticks,
                    churn=args.churn,
                    backend=args.backend,
                    mode=mode,
                    flags=flag_source,
                )
            else:
                topo = (
                    f" topology-shards={args.topology_shards}"
                    if sharded
                    else ""
                )
                print(
                    f"serve: n={args.devices} ticks={args.ticks} "
                    f"churn={args.churn:.2%} store-shards={args.store_shards}"
                    f"{topo} backend={args.backend} mode={mode} "
                    f"flags={flag_source}"
                )
            ticks_left = max(0, args.ticks - start_tick)
            if args.raw:
                result = drive_load_measurements(service, generator, ticks_left)
            else:
                result = drive_load(service, generator, ticks_left)
            if logger is not None:
                logger.event(
                    "summary",
                    stats=service.stats.as_dict(),
                    verdict_counts=metrics.verdict_counts,
                    verdict_tick_counts=metrics.verdict_tick_counts,
                    elapsed_seconds=round(result.elapsed_seconds, 6),
                )
            else:
                _print_tick_table(result.ticks)
                _print_service_summary(result, service)
                print(f"verdict events: {metrics.verdict_counts}")
                print(f"verdict device-ticks: {metrics.verdict_tick_counts}")
            if args.json:
                _write_service_json(
                    args.json,
                    result,
                    service,
                    {
                        "metrics": metrics.as_dict(),
                        "detector": args.detector if args.raw else None,
                        "detection": args.detection if args.raw else None,
                    },
                )
    finally:
        if server is not None:
            server.close()
    return 0


def _run_replay(args: argparse.Namespace) -> int:
    from repro.detection.banks import resolve_bank
    from repro.io.synthetic import Incident, TraceConfig, generate_trace
    from repro.io.traces import read_trace
    from repro.online import (
        CheckpointWriter,
        OnlineCharacterizationService,
        ShardedCheckpointWriter,
        ShardedService,
        latest_checkpoint,
        latest_sharded_checkpoint,
        load_checkpoint,
        load_sharded_checkpoint,
        replay_trace_online,
        restore_service,
        restore_sharded_service,
    )

    sharded = args.topology_shards > 0

    if args.trace:
        with open(args.trace) as handle:
            trace = read_trace(handle.read())
        source = args.trace
    else:
        config = TraceConfig(
            devices=args.devices,
            services=args.services,
            steps=args.steps,
            seed=args.seed,
        )
        incidents = []
        massive = min(args.tau + 2, args.devices)
        if massive >= 1:
            incidents.append(
                Incident(
                    start=max(1, args.steps // 3),
                    duration=2,
                    devices=tuple(range(massive)),
                    service=0,
                    drop=0.3,
                )
            )
        incidents.append(
            Incident(
                start=max(1, 2 * args.steps // 3),
                duration=2,
                devices=(args.devices - 1,),
                service=0,
                drop=0.4,
            )
        )
        trace = generate_trace(config, incidents)
        source = f"synthetic (devices={args.devices}, steps={args.steps})"
    mode = "full-recompute" if args.full else "incremental"
    server = _start_metrics_server(args)
    logger = _json_logger(
        args,
        command="replay",
        shards=args.store_shards,
        topology_shards=args.topology_shards,
    )
    if logger is not None:
        logger.event(
            "start",
            source=source,
            mode=mode,
            detector=f"{args.detector}/{args.detection}",
        )
    else:
        topo = (
            f" topology-shards={args.topology_shards}" if sharded else ""
        )
        print(
            f"replay: {source} store-shards={args.store_shards}{topo} "
            f"mode={mode} detector={args.detector}/{args.detection}"
        )
    result = None
    service = None
    try:
        if args.checkpoint_dir:
            # Checkpointed replay: the external detector bank rides in
            # the checkpoint's extra blob so a resumed run flags exactly
            # what the uninterrupted one would have.
            resume = (
                latest_sharded_checkpoint(args.checkpoint_dir)
                if sharded
                else latest_checkpoint(args.checkpoint_dir)
            )
            if resume is not None:
                if sharded:
                    ckpt = load_sharded_checkpoint(resume)
                    service = restore_sharded_service(
                        ckpt, topology_workers=args.topology_workers
                    )
                else:
                    ckpt = load_checkpoint(resume)
                    service = restore_service(ckpt)
                bank = ckpt.extra.get("replay_bank")
                skip = min(service.current_tick, len(trace) - 1)
                print(
                    f"resuming from {resume} (tick {service.current_tick})",
                    file=sys.stderr,
                )
            else:
                if sharded:
                    service = ShardedService(
                        trace[0].qos,
                        _service_config(args),
                        topology_shards=args.topology_shards,
                        topology_workers=args.topology_workers,
                        min_shard_devices=args.min_shard_devices,
                    )
                else:
                    service = OnlineCharacterizationService(
                        trace[0].qos, _service_config(args)
                    )
                n, d = trace[0].qos.shape
                bank = resolve_bank(
                    n,
                    d,
                    detector=_detector_spec(args),
                    detection=args.detection,
                    r=service.config.r,
                )
                skip = 0
            writer_cls = (
                ShardedCheckpointWriter if sharded else CheckpointWriter
            )
            service.add_sink(
                writer_cls(
                    service,
                    args.checkpoint_dir,
                    every=args.checkpoint_every,
                    keep=args.checkpoint_keep,
                    extra={"replay_bank": bank},
                )
            )
            result = replay_trace_online(
                trace, service=service, bank=bank, skip_steps=skip
            )
        elif sharded:
            service = ShardedService(
                trace[0].qos,
                _service_config(args),
                topology_shards=args.topology_shards,
                topology_workers=args.topology_workers,
                min_shard_devices=args.min_shard_devices,
            )
            result = replay_trace_online(
                trace,
                service=service,
                detector=_detector_spec(args),
                detection=args.detection,
            )
        else:
            result = replay_trace_online(
                trace,
                config=_service_config(args),
                detector=_detector_spec(args),
                detection=args.detection,
            )
        if logger is not None:
            for tick in result.ticks:
                logger.tick_sink(tick)
            logger.event(
                "summary",
                stats=result.service.stats.as_dict(),
                elapsed_seconds=round(result.elapsed_seconds, 6),
            )
        else:
            _print_tick_table(result.ticks)
            _print_service_summary(result, result.service)
        if args.json:
            _write_service_json(
                args.json,
                result,
                result.service,
                {
                    "source": source,
                    "detector": args.detector,
                    "detection": args.detection,
                },
            )
    finally:
        if result is not None:
            result.service.close()
        elif service is not None:
            service.close()
        if server is not None:
            server.close()
    return 0


def _run_metrics(args: argparse.Namespace) -> int:
    from repro.obs import fetch_metrics, render_json, render_prometheus

    if args.url:
        try:
            text = fetch_metrics(args.url, format=args.format, timeout=args.timeout)
        except OSError as exc:
            print(f"metrics: cannot reach {args.url}: {exc}", file=sys.stderr)
            return 1
    else:
        text = render_json() if args.format == "json" else render_prometheus()
    sys.stdout.write(text if text.endswith("\n") else text + "\n")
    return 0


def _run_one(
    name: str,
    steps: Optional[int],
    seeds: Optional[tuple],
    backend: Optional[str] = None,
    workers: Optional[int] = None,
) -> ExperimentResult:
    module, _ = EXPERIMENTS[name]
    kwargs = {}
    if name in _SCALED:
        if steps is not None:
            kwargs["steps"] = steps
        if seeds is not None:
            kwargs["seeds"] = seeds
    accepted = inspect.signature(module.run).parameters
    if backend is not None and "backend" in accepted:
        kwargs["backend"] = backend
    if workers is not None and "workers" in accepted:
        kwargs["workers"] = workers
    return module.run(**kwargs)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "serve":
        return _run_serve(args)
    if args.command == "replay":
        return _run_replay(args)
    if args.command == "metrics":
        return _run_metrics(args)
    if args.command == "list":
        for name in sorted(EXPERIMENTS):
            module, _ = EXPERIMENTS[name]
            doc = (module.__doc__ or "").strip().splitlines()[0]
            print(f"{name:<24} {doc}")
        return 0
    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        result = _run_one(name, args.steps, args.seeds, args.backend, args.workers)
        print(render_table(result))
        _, chart = EXPERIMENTS[name]
        if chart is not None:
            x, y, group = chart
            print()
            print(render_series(result, x=x, y=y, group=group))
        if args.json:
            path = args.json if len(names) == 1 else f"{args.json}.{name}.json"
            with open(path, "w") as handle:
                handle.write(result.to_json())
            print(f"(wrote {path})")
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
