"""Locally tuned sampling (Section VII-C substrate).

:class:`~repro.streaming.sampler.AdaptiveSampler` lets each device speed
up its own snapshot rate under anomaly bursts with no global
coordination; ``repro.experiments.ablation_sampling`` measures the
paper's claimed payoff (fewer concomitant errors per interval, hence
fewer unresolved configurations).
"""

from repro.streaming.sampler import AdaptiveSampler, SamplerConfig

__all__ = ["AdaptiveSampler", "SamplerConfig"]
