"""Locally tuned sampling (Section VII-C substrate).

:class:`~repro.streaming.sampler.AdaptiveSampler` lets each device speed
up its own snapshot rate under anomaly bursts with no global
coordination; :class:`~repro.streaming.sampler.SampledCharacterizationStream`
drives a whole fleet of samplers against a shared
:class:`~repro.engine.CharacterizationEngine` so only due devices are
characterized each tick.  ``repro.experiments.ablation_sampling``
measures the paper's claimed payoff (fewer concomitant errors per
interval, hence fewer unresolved configurations).
"""

from repro.streaming.sampler import (
    AdaptiveSampler,
    SampledCharacterizationStream,
    SamplerConfig,
    StreamTick,
)

__all__ = [
    "AdaptiveSampler",
    "SampledCharacterizationStream",
    "SamplerConfig",
    "StreamTick",
]
