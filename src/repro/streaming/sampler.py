"""Locally tuned sampling frequency (Section VII-C).

"In our approach, the frequency at which QoS information is sampled is
locally tuned, and only depends on the local occurrence of QoS
degradations. ... devices can afford to increase the frequency at which
they sample their neighbourhood, decreasing accordingly the number of
concomitant errors and thus the number of unresolved configurations."

:class:`AdaptiveSampler` implements the per-device policy: a device's
sampling period shrinks multiplicatively whenever it (or a neighbour it
hears from) observes an anomaly, and relaxes additively during quiet
spells — the classic MIMD/AIAD shape, chosen because anomaly bursts are
what produce concomitant errors.  No global synchronization is involved:
each device runs its own instance on purely local signals.

The system-level consequence the paper claims — more snapshots per unit
time ⇒ fewer errors per interval ⇒ fewer unresolved configurations — is
measured by :mod:`repro.experiments.ablation_sampling`, which splits a
fixed error budget across ``k`` sub-intervals and watches ``|U_k|/|A_k|``
fall with ``k``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.errors import ConfigurationError

__all__ = ["SamplerConfig", "AdaptiveSampler"]


@dataclass(frozen=True)
class SamplerConfig:
    """Policy knobs for :class:`AdaptiveSampler`.

    Attributes
    ----------
    base_period:
        Steady-state sampling period (arbitrary time units).
    min_period:
        Fastest allowed sampling (burst mode floor).
    speedup_factor:
        Multiplicative decrease applied to the period on each anomaly
        (values < 1 accelerate sampling).
    relax_step:
        Additive increase applied per quiet sample until ``base_period``
        is reached again.
    """

    base_period: float = 8.0
    min_period: float = 1.0
    speedup_factor: float = 0.5
    relax_step: float = 1.0

    def __post_init__(self) -> None:
        if self.min_period <= 0:
            raise ConfigurationError(
                f"min_period must be positive, got {self.min_period!r}"
            )
        if self.base_period < self.min_period:
            raise ConfigurationError(
                "base_period must be >= min_period; got "
                f"{self.base_period!r} < {self.min_period!r}"
            )
        if not 0.0 < self.speedup_factor < 1.0:
            raise ConfigurationError(
                f"speedup_factor must lie in (0, 1), got {self.speedup_factor!r}"
            )
        if self.relax_step <= 0:
            raise ConfigurationError(
                f"relax_step must be positive, got {self.relax_step!r}"
            )


class AdaptiveSampler:
    """Per-device MIMD/AIAD sampling-period controller."""

    def __init__(self, config: Optional[SamplerConfig] = None) -> None:
        self._config = config or SamplerConfig()
        self._period = self._config.base_period
        self._history: List[float] = []

    @property
    def period(self) -> float:
        """Current sampling period."""
        return self._period

    @property
    def config(self) -> SamplerConfig:
        """The policy parameters."""
        return self._config

    @property
    def in_burst_mode(self) -> bool:
        """True when sampling faster than the steady state."""
        return self._period < self._config.base_period

    @property
    def history(self) -> List[float]:
        """Period after each observation (for plots and tests)."""
        return list(self._history)

    def observe(self, anomaly: bool) -> float:
        """Feed one local observation; return the new sampling period.

        ``anomaly`` is true when the device's own detector fired or a
        neighbour within ``4r`` advertised an abnormal trajectory — the
        only signals the paper allows a device to use.
        """
        cfg = self._config
        if anomaly:
            self._period = max(cfg.min_period, self._period * cfg.speedup_factor)
        else:
            self._period = min(cfg.base_period, self._period + cfg.relax_step)
        self._history.append(self._period)
        return self._period

    def snapshots_per_base_period(self) -> float:
        """How many snapshots fit in one steady-state period right now.

        This is the "sampling multiplier" the ablation sweeps: a device in
        burst mode at period ``p`` takes ``base_period / p`` snapshots
        where a steady-state device takes one.
        """
        return self._config.base_period / self._period

    def reset(self) -> None:
        """Return to the steady state and clear history."""
        self._period = self._config.base_period
        self._history.clear()
