"""Locally tuned sampling frequency (Section VII-C).

"In our approach, the frequency at which QoS information is sampled is
locally tuned, and only depends on the local occurrence of QoS
degradations. ... devices can afford to increase the frequency at which
they sample their neighbourhood, decreasing accordingly the number of
concomitant errors and thus the number of unresolved configurations."

:class:`AdaptiveSampler` implements the per-device policy: a device's
sampling period shrinks multiplicatively whenever it (or a neighbour it
hears from) observes an anomaly, and relaxes additively during quiet
spells — the classic MIMD/AIAD shape, chosen because anomaly bursts are
what produce concomitant errors.  No global synchronization is involved:
each device runs its own instance on purely local signals.

The system-level consequence the paper claims — more snapshots per unit
time ⇒ fewer errors per interval ⇒ fewer unresolved configurations — is
measured by :mod:`repro.experiments.ablation_sampling`, which splits a
fixed error budget across ``k`` sub-intervals and watches ``|U_k|/|A_k|``
fall with ``k``.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.errors import ConfigurationError
from repro.core.transition import Snapshot, Transition
from repro.core.types import Characterization
from repro.detection.banks import BankDetection, DetectorBank, DetectorSpec, as_bank
from repro.engine import CharacterizationEngine
from repro.online.service import OnlineCharacterizationService, ServiceConfig

__all__ = [
    "SamplerConfig",
    "AdaptiveSampler",
    "StreamTick",
    "SampledCharacterizationStream",
]


@dataclass(frozen=True)
class SamplerConfig:
    """Policy knobs for :class:`AdaptiveSampler`.

    Attributes
    ----------
    base_period:
        Steady-state sampling period (arbitrary time units).
    min_period:
        Fastest allowed sampling (burst mode floor).
    speedup_factor:
        Multiplicative decrease applied to the period on each anomaly
        (values < 1 accelerate sampling).
    relax_step:
        Additive increase applied per quiet sample until ``base_period``
        is reached again.
    """

    base_period: float = 8.0
    min_period: float = 1.0
    speedup_factor: float = 0.5
    relax_step: float = 1.0

    def __post_init__(self) -> None:
        if self.min_period <= 0:
            raise ConfigurationError(
                f"min_period must be positive, got {self.min_period!r}"
            )
        if self.base_period < self.min_period:
            raise ConfigurationError(
                "base_period must be >= min_period; got "
                f"{self.base_period!r} < {self.min_period!r}"
            )
        if not 0.0 < self.speedup_factor < 1.0:
            raise ConfigurationError(
                f"speedup_factor must lie in (0, 1), got {self.speedup_factor!r}"
            )
        if self.relax_step <= 0:
            raise ConfigurationError(
                f"relax_step must be positive, got {self.relax_step!r}"
            )


class AdaptiveSampler:
    """Per-device MIMD/AIAD sampling-period controller."""

    def __init__(self, config: Optional[SamplerConfig] = None) -> None:
        self._config = config or SamplerConfig()
        self._period = self._config.base_period
        self._history: List[float] = []

    @property
    def period(self) -> float:
        """Current sampling period."""
        return self._period

    @property
    def config(self) -> SamplerConfig:
        """The policy parameters."""
        return self._config

    @property
    def in_burst_mode(self) -> bool:
        """True when sampling faster than the steady state."""
        return self._period < self._config.base_period

    @property
    def history(self) -> List[float]:
        """Period after each observation (for plots and tests)."""
        return list(self._history)

    def observe(self, anomaly: bool) -> float:
        """Feed one local observation; return the new sampling period.

        ``anomaly`` is true when the device's own detector fired or a
        neighbour within ``4r`` advertised an abnormal trajectory — the
        only signals the paper allows a device to use.
        """
        cfg = self._config
        if anomaly:
            self._period = max(cfg.min_period, self._period * cfg.speedup_factor)
        else:
            self._period = min(cfg.base_period, self._period + cfg.relax_step)
        self._history.append(self._period)
        return self._period

    def snapshots_per_base_period(self) -> float:
        """How many snapshots fit in one steady-state period right now.

        This is the "sampling multiplier" the ablation sweeps: a device in
        burst mode at period ``p`` takes ``base_period / p`` snapshots
        where a steady-state device takes one.
        """
        return self._config.base_period / self._period

    def reset(self) -> None:
        """Return to the steady state and clear history."""
        self._period = self._config.base_period
        self._history.clear()


@dataclass
class StreamTick:
    """Everything observable about one tick of the sampled stream."""

    tick: int
    flagged: Tuple[int, ...]
    due: Tuple[int, ...]       # flagged devices characterized this tick
    verdicts: Dict[int, Characterization] = field(default_factory=dict)
    periods: Tuple[float, ...] = ()


class SampledCharacterizationStream:
    """Locally sampled characterization over a stream of snapshots.

    The streaming counterpart of the batch drivers: each device runs its
    own :class:`AdaptiveSampler` (burst mode under anomalies, steady state
    otherwise), and every tick only the flagged devices whose sampler is
    *due* are characterized — through one shared
    :class:`~repro.engine.CharacterizationEngine` (one batch
    neighbourhood pass per tick, backend selection, run-level stats;
    each tick forms a fresh transition, so motion families are computed
    per tick for the due subset only).  This realizes the Section VII-C
    policy end-to-end: anomalies speed a device up, so exactly the
    devices in trouble get the freshest verdicts, at a fraction of the
    cost of characterizing everyone every tick.

    Parameters
    ----------
    n:
        Number of monitored devices.
    r, tau:
        Characterization parameters.
    engine:
        Optional shared engine; defaults to a serial one owned by the
        stream.
    sampler_config:
        Policy knobs for the per-device samplers.
    incremental:
        When true, verdicts come from an
        :class:`~repro.online.service.OnlineCharacterizationService` fed
        with per-tick diffs: the service keeps *every* flagged device's
        verdict fresh (recomputing only where ``4r`` neighbourhoods
        changed), and the due-filter selects which verdicts this tick
        *emits*.  Emitted verdicts are identical to the batch path.
    service_config:
        Knobs for the incremental service (``r``/``tau`` are overridden
        with the stream's own).
    detector:
        Optional :class:`~repro.detection.banks.DetectorSpec` (or
        prebuilt bank) enabling :meth:`observe_measurements`: the stream
        runs the array-backed bank over raw QoS snapshots itself instead
        of being handed precomputed flags.
    detection:
        Plane the bank is built on (``"bank"`` default, ``"scalar"``
        reference).
    """

    def __init__(
        self,
        n: int,
        *,
        r: float,
        tau: int,
        engine: Optional[CharacterizationEngine] = None,
        sampler_config: Optional[SamplerConfig] = None,
        incremental: bool = False,
        service_config: Optional[ServiceConfig] = None,
        detector: Optional[Union[DetectorSpec, DetectorBank]] = None,
        detection: Optional[str] = None,
    ) -> None:
        if n < 1:
            raise ConfigurationError(f"n must be >= 1, got {n!r}")
        self._n = n
        self._r = r
        self._tau = tau
        self._detector = detector
        self._detection_plane = detection
        if detector is None and detection is not None:
            raise ConfigurationError(
                "detection plane given without a detector spec or bank"
            )
        # Built lazily on the first observe_measurements call — the QoS
        # dimension d is not known until a snapshot arrives.
        self._bank: Optional[DetectorBank] = None
        self._last_detection: Optional[BankDetection] = None
        self._owns_engine = engine is None
        self._engine = engine or CharacterizationEngine()
        self._samplers = [AdaptiveSampler(sampler_config) for _ in range(n)]
        # Per-device countdown to the next sample, in ticks.
        self._countdown = [s.period for s in self._samplers]
        self._previous: Optional[np.ndarray] = None
        self._tick = 0
        self._incremental = incremental
        self._service_config = dataclasses.replace(
            service_config or ServiceConfig(), r=r, tau=tau
        )
        self._service: Optional[OnlineCharacterizationService] = None

    @property
    def engine(self) -> CharacterizationEngine:
        """The characterization engine shared across ticks."""
        return self._engine

    def close(self) -> None:
        """Release the engine's worker pool, if the stream owns it."""
        if self._owns_engine:
            self._engine.close()

    def __enter__(self) -> "SampledCharacterizationStream":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    @property
    def samplers(self) -> List[AdaptiveSampler]:
        """The per-device sampling controllers (read-only view)."""
        return list(self._samplers)

    @property
    def current_tick(self) -> int:
        """Number of completed ticks."""
        return self._tick

    @property
    def service(self) -> Optional[OnlineCharacterizationService]:
        """The online service (incremental mode only; None before tick 1)."""
        return self._service

    @property
    def bank(self) -> Optional[DetectorBank]:
        """The stream's detector bank (None until the first
        :meth:`observe_measurements` call, or without a ``detector``)."""
        return self._bank

    @property
    def last_detection(self) -> Optional[BankDetection]:
        """The bank's most recent batch detection, if any."""
        return self._last_detection

    def observe_measurements(self, positions: np.ndarray) -> StreamTick:
        """Feed raw QoS measurements; the stream detects, then samples.

        Runs the configured detector bank over the ``(n, d)`` snapshot
        (one vectorized update fleet-wide) and delegates to
        :meth:`observe` with the resulting flagged set — the
        measurement-driven twin of the precomputed-flags path.
        """
        if self._detector is None:
            raise ConfigurationError(
                "observe_measurements needs a detector; construct the "
                "stream with detector=DetectorSpec(...)"
            )
        pts = np.asarray(positions, dtype=float)
        if pts.ndim != 2 or pts.shape[0] != self._n:
            raise ConfigurationError(
                f"positions must be ({self._n}, d), got shape {pts.shape}"
            )
        if self._bank is None:
            self._bank = as_bank(
                self._detector,
                self._n,
                pts.shape[1],
                plane=self._detection_plane,
            )
        detection = self._bank.observe_batch(pts)
        self._last_detection = detection
        return self.observe(pts, detection.flagged_devices())

    def observe(
        self, positions: np.ndarray, flagged: Sequence[int]
    ) -> StreamTick:
        """Feed one snapshot of the fleet and characterize due devices.

        ``positions`` is the ``(n, d)`` QoS state at this tick; ``flagged``
        the devices whose detector fired.  Flagged devices drive their
        samplers into burst mode (and are pulled forward so a freshly
        anomalous device never waits out a stale steady-state period);
        quiet devices relax.  Only *due* flagged devices are characterized,
        against the previous snapshot.
        """
        pts = np.asarray(positions, dtype=float)
        if pts.ndim != 2 or pts.shape[0] != self._n:
            raise ConfigurationError(
                f"positions must be ({self._n}, d), got shape {pts.shape}"
            )
        self._tick += 1
        flagged_sorted = tuple(sorted({int(j) for j in flagged}))
        flagged_set = set(flagged_sorted)
        due: List[int] = []
        for j, sampler in enumerate(self._samplers):
            period = sampler.observe(j in flagged_set)
            countdown = self._countdown[j] - 1.0
            if j in flagged_set:
                countdown = min(countdown, period - 1.0)
            if countdown <= 0.0:
                if j in flagged_set:
                    due.append(j)
                countdown = period
            self._countdown[j] = countdown
        previous = self._previous
        self._previous = pts.copy()
        verdicts: Dict[int, Characterization] = {}
        if self._incremental:
            verdicts = self._observe_incremental(previous, pts, flagged_sorted, due)
        elif previous is not None and due:
            transition = Transition(
                Snapshot(previous), Snapshot(pts), flagged_sorted,
                self._r, self._tau,
            )
            verdicts = self._engine.characterize(transition, devices=due)
        return StreamTick(
            tick=self._tick,
            flagged=flagged_sorted,
            due=tuple(due),
            verdicts=verdicts,
            periods=tuple(s.period for s in self._samplers),
        )

    def _observe_incremental(
        self,
        previous: Optional[np.ndarray],
        pts: np.ndarray,
        flagged_sorted: Tuple[int, ...],
        due: List[int],
    ) -> Dict[int, Characterization]:
        """Feed the tick to the online service; emit verdicts of due devices."""
        if previous is None:
            self._service = OnlineCharacterizationService(
                pts, self._service_config, engine=self._engine
            )
            return {}
        assert self._service is not None
        flagged_set = set(flagged_sorted)
        out = self._service.feed_snapshot(
            pts, [device in flagged_set for device in range(self._n)]
        )
        return {device: out.verdicts[device] for device in due}
