"""Comparison baselines from the paper's related-work section.

* :class:`~repro.baselines.tessellation.TessellationDetector` — the
  fixed-bucket FixMe architecture ([1]), whose bucket-size dilemma the
  paper criticizes (Ablation A1 measures it);
* :class:`~repro.baselines.centralized.CentralizedClusteringMonitor` —
  the [15]-style management-node k-means pipeline, including its
  communication-cost accounting;
* :func:`~repro.baselines.kmeans.kmeans` — the from-scratch clustering
  substrate both of the above lean on.
"""

from repro.baselines.centralized import (
    CentralizedClusteringMonitor,
    CentralizedVerdict,
)
from repro.baselines.kmeans import KMeansResult, kmeans, kmeans_sweep
from repro.baselines.tessellation import TessellationDetector, TessellationVerdict

__all__ = [
    "CentralizedClusteringMonitor",
    "CentralizedVerdict",
    "KMeansResult",
    "TessellationDetector",
    "TessellationVerdict",
    "kmeans",
    "kmeans_sweep",
]
