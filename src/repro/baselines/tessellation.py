"""Tessellation baseline (the FixMe architecture, reference [1]).

The related-work section criticizes tessellation-based detection: the QoS
space is cut into fixed buckets and a device decides isolated-vs-massive
by counting flagged devices in *its own bucket*.  Two failure modes
follow, which Ablation A1 quantifies:

* **large buckets** — unrelated flagged devices share a bucket, so
  isolated anomalies are mistaken for massive ones (false massive);
* **small buckets** — a genuinely co-moving group straddles bucket
  borders, so massive anomalies are mistaken for isolated ones (false
  isolated / "false alarms" at the operator).

The implementation tessellates the *combined* space (previous position ++
current position), the fair analogue of the motion-based method: a bucket
groups devices that were close at both times.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Tuple

import numpy as np

from repro.core.errors import ConfigurationError
from repro.core.transition import Transition
from repro.core.types import AnomalyType

__all__ = ["TessellationDetector", "TessellationVerdict"]


@dataclass(frozen=True)
class TessellationVerdict:
    """Verdict of the tessellation baseline for one device."""

    device: int
    anomaly_type: AnomalyType
    bucket: Tuple[int, ...]
    bucket_population: int


class TessellationDetector:
    """Fixed-grid isolated/massive classifier over one transition.

    Parameters
    ----------
    bucket_side:
        Side of the (hyper-cubic) buckets in QoS units.  The natural
        comparison point with the paper's method is ``2 r``.
    """

    def __init__(self, transition: Transition, bucket_side: float) -> None:
        if bucket_side <= 0 or bucket_side > 1:
            raise ConfigurationError(
                f"bucket_side must lie in (0, 1], got {bucket_side!r}"
            )
        self._transition = transition
        self._side = float(bucket_side)
        self._buckets: Dict[Tuple[int, ...], list] = {}
        combined = transition.combined
        for device in transition.flagged_sorted:
            key = tuple(
                int(c) for c in np.floor(combined[device] / self._side)
            )
            self._buckets.setdefault(key, []).append(device)

    @property
    def bucket_side(self) -> float:
        """Bucket side in QoS units."""
        return self._side

    @property
    def buckets(self) -> Mapping[Tuple[int, ...], list]:
        """The populated buckets (read-only view)."""
        return dict(self._buckets)

    def classify(self, device: int) -> TessellationVerdict:
        """Classify one flagged device by its bucket population."""
        combined = self._transition.combined
        key = tuple(int(c) for c in np.floor(combined[device] / self._side))
        population = len(self._buckets.get(key, []))
        anomaly = (
            AnomalyType.MASSIVE
            if population > self._transition.tau
            else AnomalyType.ISOLATED
        )
        return TessellationVerdict(
            device=device,
            anomaly_type=anomaly,
            bucket=key,
            bucket_population=population,
        )

    def classify_all(self) -> Dict[int, TessellationVerdict]:
        """Classify every flagged device."""
        return {
            device: self.classify(device)
            for device in self._transition.flagged_sorted
        }
