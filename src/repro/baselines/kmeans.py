"""From-scratch k-means with k-means++ seeding.

Substrate for the centralized-clustering baseline ([15] and the k-means
works the paper cites).  Pure numpy, deterministic under a seed, with an
inertia-based sweep helper for choosing ``k`` — no sklearn dependency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.core.errors import ConfigurationError

__all__ = ["KMeansResult", "kmeans", "kmeans_sweep"]


@dataclass(frozen=True)
class KMeansResult:
    """Fitted clustering: centroids, assignments and inertia."""

    centroids: np.ndarray       # (k, d)
    labels: np.ndarray          # (m,)
    inertia: float              # sum of squared distances to assigned centroid
    iterations: int

    @property
    def k(self) -> int:
        """Number of clusters."""
        return self.centroids.shape[0]

    def cluster_sizes(self) -> np.ndarray:
        """Population of each cluster."""
        return np.bincount(self.labels, minlength=self.k)


def _plus_plus_init(
    points: np.ndarray, k: int, rng: np.random.Generator
) -> np.ndarray:
    """k-means++ seeding: spread initial centroids by squared distance."""
    m = points.shape[0]
    centroids = np.empty((k, points.shape[1]), dtype=float)
    first = int(rng.integers(m))
    centroids[0] = points[first]
    closest_sq = np.sum((points - centroids[0]) ** 2, axis=1)
    for i in range(1, k):
        total = float(closest_sq.sum())
        if total <= 0.0:
            # All remaining points coincide with a centroid; any choice works.
            centroids[i] = points[int(rng.integers(m))]
            continue
        probs = closest_sq / total
        choice = int(rng.choice(m, p=probs))
        centroids[i] = points[choice]
        closest_sq = np.minimum(
            closest_sq, np.sum((points - centroids[i]) ** 2, axis=1)
        )
    return centroids


def kmeans(
    points: np.ndarray,
    k: int,
    *,
    max_iter: int = 100,
    tol: float = 1e-8,
    seed: int = 0,
    rng: Optional[np.random.Generator] = None,
) -> KMeansResult:
    """Lloyd's algorithm with k-means++ seeding.

    Empty clusters are re-seeded at the point farthest from its assigned
    centroid, the standard repair keeping ``k`` effective clusters.
    """
    pts = np.asarray(points, dtype=float)
    if pts.ndim != 2:
        raise ConfigurationError("points must be an (m, d) array")
    m = pts.shape[0]
    if not 1 <= k <= m:
        raise ConfigurationError(f"k must lie in [1, {m}], got {k!r}")
    generator = rng if rng is not None else np.random.default_rng(seed)
    centroids = _plus_plus_init(pts, k, generator)
    labels = np.zeros(m, dtype=int)
    for iteration in range(1, max_iter + 1):
        distances = np.sum(
            (pts[:, None, :] - centroids[None, :, :]) ** 2, axis=2
        )
        labels = np.argmin(distances, axis=1)
        new_centroids = centroids.copy()
        for cluster in range(k):
            members = pts[labels == cluster]
            if len(members):
                new_centroids[cluster] = members.mean(axis=0)
            else:
                assigned = distances[np.arange(m), labels]
                new_centroids[cluster] = pts[int(np.argmax(assigned))]
        shift = float(np.max(np.abs(new_centroids - centroids)))
        centroids = new_centroids
        if shift < tol:
            break
    distances = np.sum((pts[:, None, :] - centroids[None, :, :]) ** 2, axis=2)
    labels = np.argmin(distances, axis=1)
    inertia = float(distances[np.arange(m), labels].sum())
    return KMeansResult(
        centroids=centroids, labels=labels, inertia=inertia, iterations=iteration
    )


def kmeans_sweep(
    points: np.ndarray,
    k_values: Tuple[int, ...],
    *,
    seed: int = 0,
) -> List[KMeansResult]:
    """Fit one k-means per ``k`` (elbow-style model selection helper)."""
    return [kmeans(points, k, seed=seed) for k in k_values]
