"""Centralized clustering baseline (the [15]-style management node).

The monitoring systems the paper contrasts itself with ship every
device's state to a management node, cluster the population with k-means,
and classify anomalies at cluster granularity.  This module reproduces
that architecture over one transition:

* all flagged devices' *trajectories* (combined previous ++ current
  positions) are clustered centrally;
* a device is declared massive iff its cluster holds more than ``tau``
  devices and the cluster's diameter is motion-consistent (``<= 2r``
  in every combined dimension — without this check k-means happily
  merges far-apart devices and everything looks massive).

Besides accuracy, the baseline exposes the *communication cost* the paper
holds against centralized schemes: every flagged device uploads its
trajectory every interval, versus the local scheme's zero uploads for
massive events (ISP policy) or isolated ones (OTT policy).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional

from repro.baselines.kmeans import KMeansResult, kmeans
from repro.core.errors import ConfigurationError
from repro.core.transition import Transition
from repro.core.types import AnomalyType

__all__ = ["CentralizedVerdict", "CentralizedClusteringMonitor"]


@dataclass(frozen=True)
class CentralizedVerdict:
    """Verdict of the centralized baseline for one device."""

    device: int
    anomaly_type: AnomalyType
    cluster: int
    cluster_size: int


class CentralizedClusteringMonitor:
    """k-means-at-the-management-node baseline over one transition.

    Parameters
    ----------
    transition:
        The interval under analysis.
    k:
        Number of clusters; ``None`` picks ``ceil(|A_k| / (tau + 1))`` —
        the smallest k that could isolate every potential massive group.
    enforce_consistency:
        Require a cluster to be motion-consistent before declaring its
        members massive (recommended; see module docstring).
    seed:
        Seeding for k-means++.
    """

    def __init__(
        self,
        transition: Transition,
        *,
        k: Optional[int] = None,
        enforce_consistency: bool = True,
        seed: int = 0,
    ) -> None:
        self._transition = transition
        flagged = transition.flagged_sorted
        if not flagged:
            raise ConfigurationError("no flagged devices to cluster")
        if k is None:
            k = max(1, math.ceil(len(flagged) / (transition.tau + 1)))
        self._k = min(k, len(flagged))
        self._enforce = enforce_consistency
        self._seed = seed
        self._flagged = flagged
        self._result: Optional[KMeansResult] = None

    @property
    def k(self) -> int:
        """Number of clusters used."""
        return self._k

    @property
    def messages_uploaded(self) -> int:
        """Trajectories shipped to the management node (cost metric)."""
        return len(self._flagged)

    def fit(self) -> KMeansResult:
        """Cluster the flagged trajectories (idempotent)."""
        if self._result is None:
            points = self._transition.combined_of(list(self._flagged))
            self._result = kmeans(points, self._k, seed=self._seed)
        return self._result

    def classify_all(self) -> Dict[int, CentralizedVerdict]:
        """Classify every flagged device by its cluster's size."""
        result = self.fit()
        transition = self._transition
        verdicts: Dict[int, CentralizedVerdict] = {}
        members_of: Dict[int, list] = {}
        for row, device in enumerate(self._flagged):
            members_of.setdefault(int(result.labels[row]), []).append(device)
        for cluster, members in members_of.items():
            massive = len(members) > transition.tau
            if massive and self._enforce:
                massive = transition.is_consistent_motion(members)
            anomaly = AnomalyType.MASSIVE if massive else AnomalyType.ISOLATED
            for device in members:
                verdicts[device] = CentralizedVerdict(
                    device=device,
                    anomaly_type=anomaly,
                    cluster=cluster,
                    cluster_size=len(members),
                )
        return verdicts
