"""Table II: repartition of ``A_k`` into ``I_k``, ``M_k`` and ``U_k``.

Paper settings: ``A = 20`` errors per interval, ``n = 1000``,
``r = 0.03``, ``tau = 3``, massive-heavy mix (``G`` set to a small
constant), R3 enforced.  Paper values (averages over runs):

    ========================  =======
    I_k  (Theorem 5)           2.54%
    M_k  (Theorem 6)          88.34%
    U_k  (Corollary 8)         8.72%
    M_k  extra via Theorem 7   0.40%
    ========================  =======

with ``|A_k| = 95.7`` on average.  The reproduction reports the same four
fractions plus the mean ``|A_k|``.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.runner import simulate_and_accumulate
from repro.io.records import ExperimentResult
from repro.io.render import render_table
from repro.simulation.config import SimulationConfig

__all__ = ["run", "main", "PAPER_VALUES"]

#: The published Table II row, as fractions of ``|A_k|``.
PAPER_VALUES = {
    "isolated": 0.0254,
    "massive_theorem6": 0.8834,
    "unresolved": 0.0872,
    "massive_theorem7": 0.004,
    "mean_flagged": 95.7,
}


def run(
    *,
    steps: int = 5,
    seeds: Sequence[int] = (0, 1, 2, 3),
    errors_per_step: int = 20,
    isolated_probability: float = 0.05,
    n: int = 1000,
    r: float = 0.03,
    tau: int = 3,
    backend: str = "serial",
    workers: Optional[int] = None,
) -> ExperimentResult:
    """Reproduce Table II (fractions of ``A_k`` per decision rule)."""
    config = SimulationConfig(
        n=n,
        r=r,
        tau=tau,
        errors_per_step=errors_per_step,
        isolated_probability=isolated_probability,
    )
    accumulator = simulate_and_accumulate(
        config, steps=steps, seeds=seeds, backend=backend, workers=workers
    )
    result = ExperimentResult(
        experiment_id="table2",
        title="Average repartition of A_k into I_k, M_k, U_k (Table II)",
        parameters={
            "A": errors_per_step,
            "n": n,
            "r": r,
            "tau": tau,
            "G": isolated_probability,
            "steps": steps,
            "seeds": list(seeds),
        },
    )
    for key, label in (
        ("isolated", "I_k (Theorem 5)"),
        ("massive_theorem6", "M_k (Theorem 6)"),
        ("unresolved", "U_k (Corollary 8)"),
        ("massive_theorem7", "M_k extra (Theorem 7)"),
    ):
        result.add_row(
            set=label,
            measured_percent=100.0 * accumulator.fraction(key),
            paper_percent=100.0 * PAPER_VALUES[key],
        )
    result.add_row(
        set="mean |A_k|",
        measured_percent=accumulator.mean_flagged,
        paper_percent=PAPER_VALUES["mean_flagged"],
    )
    return result


def main() -> None:  # pragma: no cover - CLI convenience
    print(render_table(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
