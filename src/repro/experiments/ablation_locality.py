"""Ablation A3: the 4r knowledge radius suffices (Section V's claim).

"A larger radius of knowledge — as the one got by an omniscient observer —
does not bring any additional information and thus does not provide a
higher error detection accuracy."

We test the claim operationally: re-characterize each flagged device in a
*sub-system* containing only the devices within its transitive ``4r``
knowledge ball, and count agreements with the full-system verdict.  The
reproduction target is a 100% match rate.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.characterize import Characterizer
from repro.core.transition import Snapshot, Transition
from repro.io.records import ExperimentResult
from repro.io.render import render_table
from repro.simulation.config import SimulationConfig
from repro.simulation.simulator import Simulator

__all__ = ["run", "main"]


def run(
    *,
    steps: int = 2,
    seeds: Sequence[int] = (0,),
    errors_per_step: int = 20,
    isolated_probability: float = 0.3,
    n: int = 400,
    r: float = 0.03,
    tau: int = 3,
) -> ExperimentResult:
    """Count local-vs-global verdict agreements per anomaly type."""
    config = SimulationConfig(
        n=n,
        r=r,
        tau=tau,
        errors_per_step=errors_per_step,
        isolated_probability=isolated_probability,
    )
    agree = 0
    disagree = 0
    checked = 0
    for seed in seeds:
        simulator = Simulator(config.with_overrides(seed=seed))
        for step in simulator.run(steps):
            transition = step.transition
            full = Characterizer(transition).characterize_all()
            prev = transition.previous.positions
            cur = transition.current.positions
            for device in transition.flagged_sorted:
                # Transitive 4r ball: the device's knowledge plus its
                # members' knowledge (a safe superset of what the
                # theorems read).
                keep = set(transition.knowledge_ball(device))
                for member in list(keep):
                    keep.update(transition.knowledge_ball(member))
                keep_sorted = sorted(keep)
                remap = {old: new for new, old in enumerate(keep_sorted)}
                sub_prev = prev[keep_sorted]
                sub_cur = cur[keep_sorted]
                flagged = list(range(len(keep_sorted)))
                # Pad with far, unflagged dummies so tau stays valid.
                while sub_prev.shape[0] < tau + 1:
                    pad = np.full((1, transition.dim), 0.999)
                    sub_prev = np.vstack([sub_prev, pad])
                    sub_cur = np.vstack([sub_cur, 1.0 - pad])
                sub = Transition(
                    Snapshot(sub_prev), Snapshot(sub_cur), flagged, r, tau
                )
                verdict = Characterizer(sub).characterize(remap[device])
                checked += 1
                if verdict.anomaly_type is full[device].anomaly_type:
                    agree += 1
                else:
                    disagree += 1
    result = ExperimentResult(
        experiment_id="ablation-locality",
        title="4r-local verdicts vs full-system verdicts (A3)",
        parameters={
            "n": n,
            "r": r,
            "tau": tau,
            "A": errors_per_step,
            "G": isolated_probability,
            "steps": steps,
            "seeds": list(seeds),
        },
    )
    result.add_row(quantity="devices checked", value=checked)
    result.add_row(quantity="agreements", value=agree)
    result.add_row(quantity="disagreements", value=disagree)
    result.add_row(
        quantity="match rate percent",
        value=100.0 * agree / checked if checked else 100.0,
    )
    return result


def main() -> None:  # pragma: no cover - CLI convenience
    print(render_table(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
