"""Shared machinery for the experiment modules.

Each experiment module exposes ``run(...) -> ExperimentResult`` with
keyword knobs for scale (steps, seeds) and a ``main()`` that prints the
rendered table — so ``python -m repro.experiments.table2`` regenerates
the paper artifact from the command line while the benchmark suite calls
``run`` with reduced scale.

All simulated experiments characterize through one shared
:class:`~repro.engine.CharacterizationEngine` per accumulation run: the
engine batch-computes neighbourhoods, keeps its motion cache alive across
the consecutive transitions of the run, and — when the caller selects the
``process`` backend — fans the flagged devices of each interval out to a
worker pool.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.analysis.metrics import MetricAccumulator
from repro.engine import CharacterizationEngine, EngineConfig
from repro.simulation.config import SimulationConfig
from repro.simulation.simulator import Simulator

__all__ = ["simulate_and_accumulate", "sweep"]


def simulate_and_accumulate(
    config: SimulationConfig,
    *,
    steps: int,
    seeds: Sequence[int],
    count_all_collections: bool = False,
    collection_count_cap: Optional[int] = 100_000,
    collection_budget: Optional[int] = 2_000_000,
    pool_cap: Optional[int] = 100_000,
    with_truth: bool = True,
    backend: str = "serial",
    workers: Optional[int] = None,
    engine: Optional[CharacterizationEngine] = None,
) -> MetricAccumulator:
    """Run ``len(seeds)`` independent simulations and fold their metrics.

    Every seed gets a fresh :class:`Simulator` (fresh initial state); each
    contributes ``steps`` characterized intervals to one shared
    :class:`MetricAccumulator`.  One engine serves the whole call (or the
    caller's ``engine``, letting several calls of a sweep share it — but
    then the engine's own config wins, so combining ``engine`` with any
    other engine knob is rejected rather than silently ignored); it runs
    with a generous search budget and falls back to an explicit
    "undecided" (counted as unresolved) on pathological devices rather
    than aborting a sweep.
    """
    if engine is None:
        engine = CharacterizationEngine(
            EngineConfig(
                backend=backend,
                workers=workers,
                count_all_collections=count_all_collections,
                collection_count_cap=collection_count_cap,
                collection_budget=collection_budget,
                pool_cap=pool_cap,
                budget_fallback=True,
            )
        )
    else:
        overridden = {
            "backend": backend != "serial",
            "workers": workers is not None,
            "count_all_collections": count_all_collections is not False,
            "collection_count_cap": collection_count_cap != 100_000,
            "collection_budget": collection_budget != 2_000_000,
            "pool_cap": pool_cap != 100_000,
        }
        conflicts = sorted(name for name, hit in overridden.items() if hit)
        if conflicts:
            raise TypeError(
                "pass either an engine or engine knobs, not both; "
                f"got engine plus {conflicts}"
            )
    accumulator = MetricAccumulator()
    for seed in seeds:
        simulator = Simulator(config.with_overrides(seed=seed), engine=engine)
        for step in simulator.run(steps):
            results = step.characterize(engine=engine)
            truly_massive = (
                step.truth.truly_massive(config.tau) if with_truth else None
            )
            accumulator.add_step(results, truly_massive)
    return accumulator


def sweep(
    base: SimulationConfig,
    cells: Iterable[Dict],
    *,
    steps: int,
    seeds: Sequence[int],
    **kwargs,
) -> List[Tuple[Dict, MetricAccumulator]]:
    """Run one accumulator per parameter cell (dict of config overrides)."""
    out: List[Tuple[Dict, MetricAccumulator]] = []
    for overrides in cells:
        config = base.with_overrides(**overrides)
        out.append(
            (dict(overrides), simulate_and_accumulate(config, steps=steps, seeds=seeds, **kwargs))
        )
    return out
