"""Ablation A5: collusion attacks and the f-tolerant defense (§VIII).

Mounts the mimicry (suppression) attack of :mod:`repro.robust.attacks`
against isolated devices of simulated intervals and compares three
monitors:

* the **naive** characterizer — how often the attack silently flips an
  isolated victim to massive (suppressing its ISP report);
* the **robust** characterizer with the correct collusion bound ``f`` —
  suppression must drop to zero (victims become SUSPECT, never MASSIVE);
* the robust characterizer's **collateral cost** — genuinely massive
  devices that can no longer be certified (degraded to SUSPECT).
"""

from __future__ import annotations

from typing import Sequence

from repro.core.characterize import Characterizer
from repro.core.types import AnomalyType
from repro.io.records import ExperimentResult
from repro.io.render import render_table
from repro.robust import MimicryAttack, RobustCharacterizer, RobustLabel
from repro.simulation.config import SimulationConfig
from repro.simulation.simulator import Simulator

__all__ = ["run", "main"]


def run(
    *,
    forged_counts: Sequence[int] = (3, 5),
    steps: int = 2,
    seeds: Sequence[int] = (0, 1),
    errors_per_step: int = 15,
    isolated_probability: float = 0.5,
    n: int = 600,
    r: float = 0.03,
    tau: int = 3,
) -> ExperimentResult:
    """Measure suppression success vs the f-tolerant defense."""
    result = ExperimentResult(
        experiment_id="ablation-malicious",
        title="Mimicry suppression vs f-tolerant characterization (A5)",
        parameters={
            "n": n,
            "r": r,
            "tau": tau,
            "A": errors_per_step,
            "G": isolated_probability,
            "forged_counts": list(forged_counts),
            "steps": steps,
            "seeds": list(seeds),
        },
    )
    config = SimulationConfig(
        n=n,
        r=r,
        tau=tau,
        errors_per_step=errors_per_step,
        isolated_probability=isolated_probability,
    )
    for forged in forged_counts:
        victims = 0
        naive_suppressed = 0
        robust_suppressed = 0
        robust_suspect = 0
        massive_total = 0
        massive_certified = 0
        for seed in seeds:
            simulator = Simulator(config.with_overrides(seed=seed))
            for step in simulator.run(steps):
                transition = step.transition
                honest = Characterizer(transition).characterize_all()
                isolated_devices = [
                    d for d, v in honest.items() if v.anomaly_type is AnomalyType.ISOLATED
                ]
                if not isolated_devices:
                    continue
                victim = isolated_devices[0]
                victims += 1
                attack = MimicryAttack(forged_count=forged, seed=seed)
                outcome = attack.mount(transition, victim=victim)
                naive = Characterizer(outcome.transition).characterize(victim)
                if naive.anomaly_type is AnomalyType.MASSIVE:
                    naive_suppressed += 1
                robust = RobustCharacterizer(outcome.transition, f=forged)
                verdict = robust.characterize(victim)
                if verdict.label is RobustLabel.MASSIVE:
                    robust_suppressed += 1
                elif verdict.label is RobustLabel.SUSPECT:
                    robust_suspect += 1
                # Collateral: how many honest massive devices survive the
                # hardened threshold on the *attacked* transition.
                for device, base in honest.items():
                    if base.anomaly_type is AnomalyType.MASSIVE:
                        massive_total += 1
                        if robust.characterize(device).label is RobustLabel.MASSIVE:
                            massive_certified += 1
        result.add_row(
            forged=forged,
            victims_attacked=victims,
            naive_suppression_percent=100.0 * naive_suppressed / victims if victims else 0.0,
            robust_suppression_percent=100.0 * robust_suppressed / victims if victims else 0.0,
            robust_suspect_percent=100.0 * robust_suspect / victims if victims else 0.0,
            massive_certified_percent=100.0 * massive_certified / massive_total
            if massive_total
            else 0.0,
        )
    return result


def main() -> None:  # pragma: no cover - CLI convenience
    print(render_table(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
