"""Figure 8: missed detections when Restriction R3 does not hold.

A *missed detection* is a device the model claims massive (it sits in a
tau-dense motion) although the error that really hit it was isolated
(impacted at most ``tau`` devices).  Paper settings: ``n = 1000``,
``b = 0.005``, same ``A`` / ``G`` sweep as Figure 7, generator relaxed so
R3 can fail.  Published shape: the proportion stays **below ~10% and
roughly flat in A**.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.figure7 import PAPER_A_VALUES, PAPER_G_VALUES
from repro.experiments.runner import simulate_and_accumulate
from repro.io.records import ExperimentResult
from repro.io.render import render_series, render_table
from repro.simulation.config import SimulationConfig

__all__ = ["run", "main"]


def run(
    *,
    steps: int = 3,
    seeds: Sequence[int] = (0, 1),
    a_values: Sequence[int] = PAPER_A_VALUES,
    g_values: Sequence[float] = PAPER_G_VALUES,
    n: int = 1000,
    r: float = 0.03,
    tau: int = 3,
    correlated_error_probability: float = 0.15,
    backend: str = "serial",
    workers: Optional[int] = None,
) -> ExperimentResult:
    """Reproduce Figure 8 (missed-detection rate, R3 relaxed)."""
    result = ExperimentResult(
        experiment_id="figure8",
        title="Missed detection rate vs A and G when R3 does not hold (Fig. 8)",
        parameters={
            "n": n,
            "r": r,
            "tau": tau,
            "A": list(a_values),
            "G": list(g_values),
            "steps": steps,
            "seeds": list(seeds),
            "correlated_error_probability": correlated_error_probability,
        },
    )
    for g in g_values:
        for a in a_values:
            config = SimulationConfig(
                n=n,
                r=r,
                tau=tau,
                errors_per_step=a,
                isolated_probability=g,
            ).relaxed_r3(correlated_error_probability)
            accumulator = simulate_and_accumulate(
                config, steps=steps, seeds=seeds, backend=backend, workers=workers
            )
            result.add_row(
                G=g,
                A=a,
                missed_detection_percent=100.0 * accumulator.fraction("false_massive"),
                mean_flagged=accumulator.mean_flagged,
            )
    return result


def main() -> None:  # pragma: no cover - CLI convenience
    result = run()
    print(render_series(result, x="A", y="missed_detection_percent", group="G"))
    print()
    print(render_table(result))


if __name__ == "__main__":  # pragma: no cover
    main()
