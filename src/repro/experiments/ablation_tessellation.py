"""Ablation A1: the tessellation baseline's bucket-size dilemma.

The related-work section argues that FixMe-style fixed tessellation
cannot win: "tessellating the space with large bucket sizes tends to
identify each possible anomaly as a massive one, while considering small
bucket sizes reduces drastically the probability of having a large number
of devices in a single bucket, giving rise to the triggering of false
alarms".  This experiment quantifies the claim: we sweep the bucket side
as a multiple of ``r`` and score both the tessellation baseline and our
characterizer against the simulator's ground truth.

Expected shape: tessellation's false-isolated rate explodes for small
buckets, its false-massive rate grows with large buckets, and no bucket
size reaches the characterizer's accuracy (which abstains — unresolved —
rather than guessing).
"""

from __future__ import annotations

from typing import Sequence

from repro.analysis.metrics import confusion_against_truth
from repro.baselines.tessellation import TessellationDetector
from repro.core.characterize import Characterizer
from repro.core.types import AnomalyType
from repro.io.records import ExperimentResult
from repro.io.render import render_table
from repro.simulation.config import SimulationConfig
from repro.simulation.simulator import Simulator

__all__ = ["run", "main"]


def run(
    *,
    steps: int = 3,
    seeds: Sequence[int] = (0, 1),
    bucket_factors: Sequence[float] = (1.0, 2.0, 4.0, 8.0, 16.0),
    errors_per_step: int = 20,
    isolated_probability: float = 0.3,
    n: int = 1000,
    r: float = 0.03,
    tau: int = 3,
) -> ExperimentResult:
    """Sweep tessellation bucket sizes against ground truth."""
    config = SimulationConfig(
        n=n,
        r=r,
        tau=tau,
        errors_per_step=errors_per_step,
        isolated_probability=isolated_probability,
    )
    result = ExperimentResult(
        experiment_id="ablation-tessellation",
        title="Tessellation bucket-size sweep vs local characterization (A1)",
        parameters={
            "n": n,
            "r": r,
            "tau": tau,
            "A": errors_per_step,
            "G": isolated_probability,
            "bucket_factors": list(bucket_factors),
            "steps": steps,
            "seeds": list(seeds),
        },
    )
    # method -> [false_massive, false_isolated, abstained, total]
    tallies = {f: [0, 0, 0, 0] for f in bucket_factors}
    ours = [0, 0, 0, 0]
    for seed in seeds:
        simulator = Simulator(config.with_overrides(seed=seed))
        for step in simulator.run(steps):
            truth = step.truth.truly_massive(tau)
            local = Characterizer(step.transition).characterize_all()
            conf = confusion_against_truth(local, truth)
            ours[0] += conf.false_massive
            ours[1] += conf.false_isolated
            ours[2] += conf.abstained
            ours[3] += len(local)
            for factor in bucket_factors:
                detector = TessellationDetector(step.transition, factor * r)
                verdicts = detector.classify_all()
                for device, verdict in verdicts.items():
                    tallies[factor][3] += 1
                    really_massive = device in truth
                    if verdict.anomaly_type is AnomalyType.MASSIVE and not really_massive:
                        tallies[factor][0] += 1
                    if verdict.anomaly_type is AnomalyType.ISOLATED and really_massive:
                        tallies[factor][1] += 1
    for factor in bucket_factors:
        fm, fi, ab, total = tallies[factor]
        result.add_row(
            method=f"tessellation {factor:g}r",
            false_massive_percent=100.0 * fm / total if total else 0.0,
            false_isolated_percent=100.0 * fi / total if total else 0.0,
            abstained_percent=0.0,
        )
    fm, fi, ab, total = ours
    result.add_row(
        method="local characterization",
        false_massive_percent=100.0 * fm / total if total else 0.0,
        false_isolated_percent=100.0 * fi / total if total else 0.0,
        abstained_percent=100.0 * ab / total if total else 0.0,
    )
    return result


def main() -> None:  # pragma: no cover - CLI convenience
    print(render_table(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
