"""Figure 6(b): ``P{F_r(j) <= tau}`` as a function of the system size.

Closed-form curves for ``r = 0.03``, ``b = 0.005``,
``tau in {2, 3, 4, 5}`` and ``n`` up to 15000 — the plot backing the
choice ``tau = 3`` ("the probability of more than tau independent errors
impacting close devices is negligible").
"""

from __future__ import annotations

from typing import Sequence

from repro.analysis.dimensioning import isolated_containment_probability
from repro.io.records import ExperimentResult
from repro.io.render import render_series

__all__ = ["run", "main"]

PAPER_TAUS = (2, 3, 4, 5)


def run(
    r: float = 0.03,
    b: float = 0.005,
    taus: Sequence[int] = PAPER_TAUS,
    n_max: int = 15000,
    n_step: int = 500,
    dim: int = 2,
) -> ExperimentResult:
    """Compute the Figure 6(b) curves."""
    result = ExperimentResult(
        experiment_id="figure6b",
        title="P{F_r(j) <= tau} as a function of n (Fig. 6b)",
        parameters={"r": r, "b": b, "taus": list(taus), "dim": dim},
    )
    for tau in taus:
        for n in range(n_step, n_max + 1, n_step):
            result.add_row(
                tau=tau,
                n=n,
                containment=isolated_containment_probability(n, r, tau, b, dim),
            )
    return result


def main() -> None:  # pragma: no cover - CLI convenience
    print(render_series(run(), x="n", y="containment", group="tau"))


if __name__ == "__main__":  # pragma: no cover
    main()
