"""Figure 6(a): CDF of the vicinity size ``P{N_r(j) <= m}``.

Closed-form binomial curves for ``n = 1000`` and
``r in {0.1, 0.05, 0.033, 0.025, 0.02}``, over vicinity sizes
``m = 0..200`` — the plot the paper uses to argue that ``r = 0.03`` keeps
neighbourhoods logarithmic in the population size.
"""

from __future__ import annotations

from typing import Sequence

from repro.analysis.dimensioning import expected_vicinity_size, vicinity_size_cdf
from repro.io.records import ExperimentResult
from repro.io.render import render_series, render_table

__all__ = ["run", "main"]

PAPER_RADII = (0.1, 0.05, 0.033, 0.025, 0.02)


def run(
    n: int = 1000,
    radii: Sequence[float] = PAPER_RADII,
    m_max: int = 200,
    m_step: int = 5,
    dim: int = 2,
) -> ExperimentResult:
    """Compute the Figure 6(a) curves."""
    result = ExperimentResult(
        experiment_id="figure6a",
        title="P{N_r(j) <= m} as a function of m (Fig. 6a)",
        parameters={"n": n, "radii": list(radii), "dim": dim},
    )
    ms = list(range(0, m_max + 1, m_step))
    for r in radii:
        cdf = vicinity_size_cdf(n, r, ms, dim)
        expected = expected_vicinity_size(n, r, dim)
        for m, p in zip(ms, cdf):
            result.add_row(r=r, m=m, cdf=float(p), expected_vicinity=expected)
    return result


def main() -> None:  # pragma: no cover - CLI convenience
    result = run()
    print(render_series(result, x="m", y="cdf", group="r"))
    print()
    compact = ExperimentResult(
        experiment_id=result.experiment_id,
        title="Expected vicinity size per radius",
    )
    seen = set()
    for row in result.rows:
        if row["r"] not in seen:
            seen.add(row["r"])
            compact.add_row(r=row["r"], expected_vicinity=row["expected_vicinity"])
    print(render_table(compact))


if __name__ == "__main__":  # pragma: no cover
    main()
