"""Ablation A2: what the Theorem 7 exact search buys over Theorem 6.

Section VII-B's question, asked of our implementation: running only the
cheap path (Theorems 5 + 6, ``full_nsc=False``) misclassifies how many
genuinely-massive devices as unresolved, and at what cost saving?

Reported per configuration:

* fraction of ``A_k`` that the cheap path leaves unresolved but the full
  path proves massive (the paper's 0.4%);
* fraction it leaves unresolved that the full path *confirms* unresolved;
* average tested collections spent by the full path on each group — the
  price of certainty.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.characterize import Characterizer
from repro.core.types import AnomalyType
from repro.io.records import ExperimentResult
from repro.io.render import render_table
from repro.simulation.config import SimulationConfig
from repro.simulation.simulator import Simulator

__all__ = ["run", "main"]


def run(
    *,
    steps: int = 3,
    seeds: Sequence[int] = (0, 1),
    errors_per_step: int = 20,
    isolated_probability: float = 0.05,
    n: int = 1000,
    r: float = 0.03,
    tau: int = 3,
) -> ExperimentResult:
    """Compare cheap (Th. 5+6) and full (Th. 7 / Cor. 8) characterization."""
    config = SimulationConfig(
        n=n,
        r=r,
        tau=tau,
        errors_per_step=errors_per_step,
        isolated_probability=isolated_probability,
    )
    flagged_total = 0
    cheap_unresolved = 0
    recovered_massive = 0
    confirmed_unresolved = 0
    tested_on_recovered = 0
    tested_on_confirmed = 0
    for seed in seeds:
        simulator = Simulator(config.with_overrides(seed=seed))
        for step in simulator.run(steps):
            cheap = Characterizer(step.transition, full_nsc=False).characterize_all()
            full = Characterizer(step.transition).characterize_all()
            flagged_total += len(cheap)
            for device, verdict in cheap.items():
                if verdict.anomaly_type is not AnomalyType.UNRESOLVED:
                    # Theorems 5/6 are sound: the full path must agree.
                    assert full[device].anomaly_type is verdict.anomaly_type
                    continue
                cheap_unresolved += 1
                full_verdict = full[device]
                if full_verdict.anomaly_type is AnomalyType.MASSIVE:
                    recovered_massive += 1
                    tested_on_recovered += full_verdict.cost.tested_collections
                else:
                    confirmed_unresolved += 1
                    tested_on_confirmed += full_verdict.cost.tested_collections
    result = ExperimentResult(
        experiment_id="ablation-theorem7",
        title="Theorem 7 exact search vs Theorem 6 fast path (A2)",
        parameters={
            "n": n,
            "r": r,
            "tau": tau,
            "A": errors_per_step,
            "G": isolated_probability,
            "steps": steps,
            "seeds": list(seeds),
        },
    )
    result.add_row(
        quantity="cheap-path unresolved (% of A_k)",
        value=100.0 * cheap_unresolved / flagged_total if flagged_total else 0.0,
    )
    result.add_row(
        quantity="recovered massive by Th.7 (% of A_k)",
        value=100.0 * recovered_massive / flagged_total if flagged_total else 0.0,
    )
    result.add_row(
        quantity="confirmed unresolved by Cor.8 (% of A_k)",
        value=100.0 * confirmed_unresolved / flagged_total if flagged_total else 0.0,
    )
    result.add_row(
        quantity="avg tested collections (recovered massive)",
        value=tested_on_recovered / recovered_massive if recovered_massive else 0.0,
    )
    result.add_row(
        quantity="avg tested collections (confirmed unresolved)",
        value=tested_on_confirmed / confirmed_unresolved
        if confirmed_unresolved
        else 0.0,
    )
    return result


def main() -> None:  # pragma: no cover - CLI convenience
    print(render_table(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
