"""Figure 9: unresolved ratio when Restriction R3 does not hold.

Same sweep as Figure 7 but with the relaxed generator.  The paper's
finding — and the reproduction target — is that the curves are
**indistinguishable from Figure 7's**: R3 violations do not change the
number of unresolved configurations, because those are driven by the
superposition of massive errors, not by stray isolated ones.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.figure7 import PAPER_A_VALUES, PAPER_G_VALUES, run as _run_fig7
from repro.io.records import ExperimentResult
from repro.io.render import render_series, render_table

__all__ = ["run", "main"]


def run(
    *,
    steps: int = 3,
    seeds: Sequence[int] = (0, 1),
    a_values: Sequence[int] = PAPER_A_VALUES,
    g_values: Sequence[float] = PAPER_G_VALUES,
    n: int = 1000,
    r: float = 0.03,
    tau: int = 3,
    backend: str = "serial",
    workers: Optional[int] = None,
) -> ExperimentResult:
    """Reproduce Figure 9 (Figure 7's sweep, R3 relaxed)."""
    return _run_fig7(
        steps=steps,
        seeds=seeds,
        a_values=a_values,
        g_values=g_values,
        n=n,
        r=r,
        tau=tau,
        enforce_r3=False,
        experiment_id="figure9",
        backend=backend,
        workers=workers,
    )


def main() -> None:  # pragma: no cover - CLI convenience
    result = run()
    print(render_series(result, x="A", y="unresolved_ratio_percent", group="G"))
    print()
    print(render_table(result))


if __name__ == "__main__":  # pragma: no cover
    main()
