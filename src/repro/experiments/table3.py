"""Table III: average computational cost per device in each set.

Cost proxies, per the paper's definitions:

* ``I_k`` — number of maximal motions the isolated device belongs to
  (paper: 1.85);
* ``M_k`` (Theorem 6) — number of maximal dense motions (paper: 1.17);
* ``U_k`` — collections of dense motions *tested* before the Corollary 8
  counterexample was found (paper: 31,107.9);
* ``M_k`` (Theorem 7) — all admissible collections examined to prove no
  counterexample exists (paper: 2,450,150).

Absolute counts depend on the search order (our DFS prunes dominated
collections, the paper's apparently did not), so the reproduction target
is the *ordering and the orders-of-magnitude gaps* between the columns,
not the raw numbers.  We therefore report both the tested-collection
averages and the exhaustive collection counts (capped).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.runner import simulate_and_accumulate
from repro.io.records import ExperimentResult
from repro.io.render import render_table
from repro.simulation.config import SimulationConfig

__all__ = ["run", "main", "PAPER_VALUES"]

#: The published Table III row.
PAPER_VALUES = {
    "isolated_maximal_motions": 1.85,
    "massive_dense_motions": 1.17,
    "unresolved_tested_collections": 31_107.9,
    "massive7_total_collections": 2_450_150.0,
}


def run(
    *,
    steps: int = 5,
    seeds: Sequence[int] = (0, 1, 2, 3),
    errors_per_step: int = 20,
    isolated_probability: float = 0.05,
    n: int = 1000,
    r: float = 0.03,
    tau: int = 3,
    collection_count_cap: Optional[int] = 100_000,
    backend: str = "serial",
    workers: Optional[int] = None,
) -> ExperimentResult:
    """Reproduce Table III (per-set average operation counts)."""
    config = SimulationConfig(
        n=n,
        r=r,
        tau=tau,
        errors_per_step=errors_per_step,
        isolated_probability=isolated_probability,
    )
    accumulator = simulate_and_accumulate(
        config,
        steps=steps,
        seeds=seeds,
        count_all_collections=True,
        collection_count_cap=collection_count_cap,
        backend=backend,
        workers=workers,
    )
    result = ExperimentResult(
        experiment_id="table3",
        title="Average computational cost per device (Table III)",
        parameters={
            "A": errors_per_step,
            "n": n,
            "r": r,
            "tau": tau,
            "G": isolated_probability,
            "steps": steps,
            "seeds": list(seeds),
            "collection_count_cap": collection_count_cap,
        },
    )
    rows = (
        (
            "I_k: maximal motions",
            accumulator.average_cost("isolated_maximal_motions"),
            PAPER_VALUES["isolated_maximal_motions"],
        ),
        (
            "M_k (Th6): maximal dense motions",
            accumulator.average_cost("massive_dense_motions"),
            PAPER_VALUES["massive_dense_motions"],
        ),
        (
            "U_k: tested collections",
            accumulator.average_cost("unresolved_tested_collections"),
            PAPER_VALUES["unresolved_tested_collections"],
        ),
        (
            "M_k (Th7): all collections (capped)",
            accumulator.average_cost("unresolved_total_collections"),
            PAPER_VALUES["massive7_total_collections"],
        ),
    )
    for label, measured, paper in rows:
        result.add_row(cost=label, measured=measured, paper=paper)
    return result


def main() -> None:  # pragma: no cover - CLI convenience
    print(render_table(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
