"""Experiment harness: one module per paper table/figure plus ablations.

Every module exposes ``run(...) -> ExperimentResult`` (scale-tunable) and
a ``main()`` printing the rendered artifact, so

    python -m repro.experiments.table2
    python -m repro.experiments.figure7

regenerate the paper's results from the command line.  The benchmark
suite under ``benchmarks/`` calls the same ``run`` functions at reduced
scale and asserts the published *shape*.
"""

from repro.experiments import (
    ablation_locality,
    ablation_malicious,
    ablation_sampling,
    ablation_tessellation,
    ablation_theorem7,
    figure6a,
    figure6b,
    figure7,
    figure8,
    figure9,
    table2,
    table3,
)
from repro.experiments.runner import simulate_and_accumulate, sweep

__all__ = [
    "ablation_locality",
    "ablation_malicious",
    "ablation_sampling",
    "ablation_tessellation",
    "ablation_theorem7",
    "figure6a",
    "figure6b",
    "figure7",
    "figure8",
    "figure9",
    "simulate_and_accumulate",
    "sweep",
    "table2",
    "table3",
]
