"""Figure 7: unresolved ratio ``|U_k| / |A_k|`` vs errors ``A`` and mix ``G``.

Paper settings: ``n = 1000``, ``b = 0.005``, R3 holds; ``A`` swept over
``[1, 60]`` and ``G`` over ``{0, 0.3, 0.5, 0.7, 1}``.  Published shape:

* a single error (``A = 1``) yields **zero** unresolved configurations;
* the ratio grows with ``A``;
* massive-heavy mixes (small ``G``) sit highest — unresolved
  configurations come from the superposition of massive errors.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.runner import simulate_and_accumulate
from repro.io.records import ExperimentResult
from repro.io.render import render_series, render_table
from repro.simulation.config import SimulationConfig

__all__ = ["run", "main", "PAPER_A_VALUES", "PAPER_G_VALUES"]

PAPER_A_VALUES = (1, 10, 20, 30, 40, 50, 60)
PAPER_G_VALUES = (0.0, 0.3, 0.5, 0.7, 1.0)


def run(
    *,
    steps: int = 3,
    seeds: Sequence[int] = (0, 1),
    a_values: Sequence[int] = PAPER_A_VALUES,
    g_values: Sequence[float] = PAPER_G_VALUES,
    n: int = 1000,
    r: float = 0.03,
    tau: int = 3,
    enforce_r3: bool = True,
    experiment_id: str = "figure7",
    backend: str = "serial",
    workers: Optional[int] = None,
) -> ExperimentResult:
    """Reproduce Figure 7 (or Figure 9 when ``enforce_r3`` is false)."""
    result = ExperimentResult(
        experiment_id=experiment_id,
        title="|U_k| / |A_k| as a function of A and G "
        + ("(Fig. 7, R3 holds)" if enforce_r3 else "(Fig. 9, R3 relaxed)"),
        parameters={
            "n": n,
            "r": r,
            "tau": tau,
            "A": list(a_values),
            "G": list(g_values),
            "steps": steps,
            "seeds": list(seeds),
            "enforce_r3": enforce_r3,
        },
    )
    for g in g_values:
        for a in a_values:
            config = SimulationConfig(
                n=n,
                r=r,
                tau=tau,
                errors_per_step=a,
                isolated_probability=g,
            )
            if not enforce_r3:
                config = config.relaxed_r3()
            accumulator = simulate_and_accumulate(
                config,
                steps=steps,
                seeds=seeds,
                with_truth=False,
                backend=backend,
                workers=workers,
            )
            result.add_row(
                G=g,
                A=a,
                unresolved_ratio_percent=100.0 * accumulator.fraction("unresolved"),
                mean_flagged=accumulator.mean_flagged,
            )
    return result


def main() -> None:  # pragma: no cover - CLI convenience
    result = run()
    print(render_series(result, x="A", y="unresolved_ratio_percent", group="G"))
    print()
    print(render_table(result))


if __name__ == "__main__":  # pragma: no cover
    main()
