"""Ablation A4: sampling faster shrinks the unresolved set (§VII-C).

The paper: "devices can afford to increase the frequency at which they
sample their neighbourhood, decreasing accordingly the number of
concomitant errors and thus the number of unresolved configurations".

Operationalization: a fixed incident load of ``A_total`` errors arrives
during one steady-state period.  A device sampling ``k`` times faster
splits that load into ``k`` intervals of ``A_total / k`` errors each.
We sweep the multiplier ``k`` and report the unresolved ratio aggregated
over the sub-intervals — expected shape: monotone decrease toward 0
(``k = A_total`` approaches the single-error-per-interval regime, which
Figure 7 shows is unresolved-free).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.runner import simulate_and_accumulate
from repro.io.records import ExperimentResult
from repro.io.render import render_table
from repro.simulation.config import SimulationConfig

__all__ = ["run", "main"]


def run(
    *,
    a_total: int = 40,
    multipliers: Sequence[int] = (1, 2, 4, 8),
    steps: int = 2,
    seeds: Sequence[int] = (0, 1),
    isolated_probability: float = 0.2,
    n: int = 1000,
    r: float = 0.03,
    tau: int = 3,
    backend: str = "serial",
    workers: Optional[int] = None,
) -> ExperimentResult:
    """Sweep the sampling multiplier at a fixed incident load."""
    result = ExperimentResult(
        experiment_id="ablation-sampling",
        title="Unresolved ratio vs sampling multiplier at fixed load (A4)",
        parameters={
            "A_total": a_total,
            "multipliers": list(multipliers),
            "n": n,
            "r": r,
            "tau": tau,
            "G": isolated_probability,
            "steps": steps,
            "seeds": list(seeds),
        },
    )
    for k in multipliers:
        per_interval = max(1, a_total // k)
        config = SimulationConfig(
            n=n,
            r=r,
            tau=tau,
            errors_per_step=per_interval,
            isolated_probability=isolated_probability,
        )
        accumulator = simulate_and_accumulate(
            config,
            steps=steps * k,  # same wall-clock load: k intervals per period
            seeds=seeds,
            with_truth=False,
            backend=backend,
            workers=workers,
        )
        result.add_row(
            multiplier=k,
            errors_per_interval=per_interval,
            unresolved_ratio_percent=100.0 * accumulator.fraction("unresolved"),
            mean_flagged=accumulator.mean_flagged,
        )
    return result


def main() -> None:  # pragma: no cover - CLI convenience
    print(render_table(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
