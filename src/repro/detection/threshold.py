"""Simple threshold detectors ("simple threshold based functions", §III-A)."""

from __future__ import annotations

from typing import Optional

from repro.core.errors import ConfigurationError
from repro.detection.base import Detection, Detector

__all__ = ["StepThresholdDetector", "BandThresholdDetector"]


class StepThresholdDetector(Detector):
    """Flag a sample when it jumps more than ``max_step`` from the last one.

    The crudest ``a_k(j)``: the forecast is simply the previous sample, and
    an abnormal trajectory is a step larger than ``max_step``.  This is the
    detector the Section VII simulator effectively assumes (impacted
    devices are relocated uniformly, i.e. by a macroscopic step).
    """

    def __init__(self, max_step: float, *, warmup: int = 1) -> None:
        super().__init__(warmup=warmup)
        if not 0.0 < max_step <= 1.0:
            raise ConfigurationError(
                f"max_step must lie in (0, 1], got {max_step!r}"
            )
        self._max_step = max_step
        self._last: Optional[float] = None

    @property
    def max_step(self) -> float:
        """Largest step considered normal."""
        return self._max_step

    def _update(self, value: float) -> Detection:
        last = self._last
        self._last = value
        if last is None or not self.warmed_up:
            return Detection(abnormal=False, forecast=None, residual=None)
        residual = value - last
        score = abs(residual) / self._max_step
        return Detection(
            abnormal=abs(residual) > self._max_step,
            forecast=last,
            residual=residual,
            score=score,
        )

    def reset(self) -> None:
        super().reset()
        self._last = None


class BandThresholdDetector(Detector):
    """Flag a sample that leaves a fixed acceptable band ``[low, high]``.

    Models SLA-style monitoring: the provider declares a quality floor
    (e.g. "QoS must stay above 0.8") and any excursion is abnormal,
    regardless of the trajectory that led there.
    """

    def __init__(self, low: float, high: float = 1.0, *, warmup: int = 0) -> None:
        super().__init__(warmup=warmup)
        if not 0.0 <= low < high <= 1.0:
            raise ConfigurationError(
                f"band must satisfy 0 <= low < high <= 1, got [{low}, {high}]"
            )
        self._low = low
        self._high = high

    @property
    def band(self) -> tuple:
        """The acceptable band ``(low, high)``."""
        return (self._low, self._high)

    def _update(self, value: float) -> Detection:
        if not self.warmed_up:
            return Detection(abnormal=False)
        center = (self._low + self._high) / 2.0
        half = (self._high - self._low) / 2.0
        score = abs(value - center) / half if half else 0.0
        return Detection(
            abnormal=value < self._low or value > self._high,
            forecast=center,
            residual=value - center,
            score=score,
        )
