"""Two-sided CUSUM detector (Page 1954, the paper's reference [10]).

The cumulative-sum scheme accumulates deviations from a reference level in
both directions:

    ``S+_k = max(0, S+_{k-1} + (x_k - mu - drift))``
    ``S-_k = max(0, S-_{k-1} - (x_k - mu) - drift)``

and raises when either statistic crosses ``threshold``.  CUSUM is the
classical optimal detector for small persistent level shifts, which is
exactly the "QoS degradation" the paper's devices watch for.
"""

from __future__ import annotations

from typing import Optional

from repro.core.errors import ConfigurationError
from repro.detection.base import Detection, Detector

__all__ = ["CusumDetector"]


class CusumDetector(Detector):
    """Page's two-sided CUSUM over a streaming QoS series.

    Parameters
    ----------
    threshold:
        Decision interval ``h``: raise when either one-sided statistic
        exceeds it (in the same units as the samples).
    drift:
        Allowance ``nu`` subtracted from every deviation — half the
        smallest shift worth detecting.  Larger drift ignores slow noise.
    mu:
        Reference level; when ``None`` (default) it is learnt as the mean
        of the first ``warmup`` samples.
    warmup:
        Number of samples used to learn ``mu`` (when not provided) and
        during which no alarm is raised.
    reset_on_alarm:
        When true (default), the statistics restart at zero after an
        alarm, so a persistent shift produces periodic alarms rather than
        one saturating alarm.
    """

    def __init__(
        self,
        threshold: float = 0.15,
        drift: float = 0.01,
        *,
        mu: Optional[float] = None,
        warmup: int = 10,
        reset_on_alarm: bool = True,
    ) -> None:
        super().__init__(warmup=warmup)
        if threshold <= 0:
            raise ConfigurationError(f"threshold must be positive, got {threshold!r}")
        if drift < 0:
            raise ConfigurationError(f"drift must be >= 0, got {drift!r}")
        self._threshold = threshold
        self._drift = drift
        self._mu_fixed = mu
        self._mu: Optional[float] = mu
        self._warmup_sum = 0.0
        self._pos = 0.0
        self._neg = 0.0
        self._reset_on_alarm = reset_on_alarm

    @property
    def statistics(self) -> tuple:
        """Current one-sided statistics ``(S+, S-)``."""
        return (self._pos, self._neg)

    def _update(self, value: float) -> Detection:
        if not self.warmed_up:
            self._warmup_sum += value
            if self._mu_fixed is None and self._seen + 1 == self._warmup:
                self._mu = self._warmup_sum / self._warmup
            return Detection(abnormal=False)
        if self._mu is None:
            # warmup == 0 with no fixed mu: bootstrap on the first sample.
            self._mu = value
        deviation = value - self._mu
        self._pos = max(0.0, self._pos + deviation - self._drift)
        self._neg = max(0.0, self._neg - deviation - self._drift)
        score = max(self._pos, self._neg) / self._threshold
        abnormal = score > 1.0
        detection = Detection(
            abnormal=abnormal,
            forecast=self._mu,
            residual=deviation,
            score=score,
        )
        if abnormal and self._reset_on_alarm:
            self._pos = 0.0
            self._neg = 0.0
        return detection

    def reset(self) -> None:
        super().reset()
        self._mu = self._mu_fixed
        self._warmup_sum = 0.0
        self._pos = 0.0
        self._neg = 0.0
