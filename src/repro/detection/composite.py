"""Per-device composite detector: the full ``a_k(j)`` of Definition 5.

A device consumes ``d`` services and runs one scalar detector per service;
``a_k(j)`` is true when *at least one* service's variation is abnormal
("there is at least one service consumed by device j at time k whose
variation of quality of service is too large", Section III-A).

:class:`DeviceMonitor` bundles the per-service detectors and exposes the
device's position in the QoS space alongside the flag — exactly the
``(p_k(j), a_k(j))`` pair the characterization layer consumes.
"""

from __future__ import annotations

import collections
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.errors import ConfigurationError, DimensionMismatchError
from repro.detection.base import Detection, Detector

__all__ = ["DeviceDetection", "DeviceMonitor", "DetectorFactory", "make_detector_bank"]

DetectorFactory = Callable[[], Detector]


@dataclass(frozen=True)
class DeviceDetection:
    """One device step: the QoS point, per-service verdicts and the flag."""

    position: Tuple[float, ...]
    per_service: Tuple[Detection, ...]
    abnormal: bool

    @property
    def abnormal_services(self) -> Tuple[int, ...]:
        """Indices of the services whose detectors raised."""
        return tuple(
            i for i, det in enumerate(self.per_service) if det.abnormal
        )

    @property
    def max_score(self) -> float:
        """Largest per-service abnormality score."""
        return max((d.score for d in self.per_service), default=0.0)


class DeviceMonitor:
    """Run one detector per consumed service and OR the verdicts.

    Parameters
    ----------
    factory:
        Zero-argument callable building a fresh scalar detector; one is
        instantiated per service so their states stay independent.
    services:
        Number of services ``d`` the device consumes.
    min_abnormal_services:
        How many services must raise simultaneously for the device flag
        (1 reproduces Definition 5; larger values trade latency for
        robustness against single-service noise).
    history:
        How many recent :class:`DeviceDetection` steps to retain
        (default 1 — just :attr:`last`).  Long-running monitors must not
        grow one record per tick forever; opt into a larger bound only
        when :meth:`trajectory` actually needs the depth.
    """

    def __init__(
        self,
        factory: DetectorFactory,
        services: int,
        *,
        min_abnormal_services: int = 1,
        history: int = 1,
    ) -> None:
        if services < 1:
            raise ConfigurationError(f"services must be >= 1, got {services!r}")
        if not 1 <= min_abnormal_services <= services:
            raise ConfigurationError(
                "min_abnormal_services must lie in [1, services], got "
                f"{min_abnormal_services!r}"
            )
        if history < 1:
            raise ConfigurationError(f"history must be >= 1, got {history!r}")
        self._detectors: List[Detector] = [factory() for _ in range(services)]
        self._min_raise = min_abnormal_services
        self._history: Deque[DeviceDetection] = collections.deque(maxlen=history)

    @property
    def services(self) -> int:
        """Number of monitored services."""
        return len(self._detectors)

    @property
    def detectors(self) -> Sequence[Detector]:
        """The per-service detectors (read-only view)."""
        return tuple(self._detectors)

    @property
    def last(self) -> Optional[DeviceDetection]:
        """The most recent device detection, if any."""
        return self._history[-1] if self._history else None

    def observe(self, qos: Sequence[float]) -> DeviceDetection:
        """Feed one QoS vector (one value per service); return the flag."""
        values = tuple(float(v) for v in qos)
        if len(values) != len(self._detectors):
            raise DimensionMismatchError(
                f"expected {len(self._detectors)} QoS values, got {len(values)}"
            )
        verdicts = tuple(
            detector.update(value)
            for detector, value in zip(self._detectors, values)
        )
        raised = sum(1 for v in verdicts if v.abnormal)
        detection = DeviceDetection(
            position=values,
            per_service=verdicts,
            abnormal=raised >= self._min_raise,
        )
        self._history.append(detection)
        return detection

    @property
    def history_bound(self) -> int:
        """Maximum retained :class:`DeviceDetection` steps."""
        return self._history.maxlen or 1

    def trajectory(self) -> np.ndarray:
        """Return the *retained* trajectory as a ``(steps, d)`` array.

        Bounded by the ``history`` constructor knob (default 1): the
        monitor is a streaming component, not a trace recorder.
        """
        return np.array([d.position for d in self._history], dtype=float)

    def reset(self) -> None:
        """Reset all per-service detectors and forget history."""
        for detector in self._detectors:
            detector.reset()
        self._history.clear()


def make_detector_bank(
    factory: DetectorFactory, devices: int, services: int, **kwargs
) -> Dict[int, DeviceMonitor]:
    """Build one :class:`DeviceMonitor` per device id ``0..devices-1``."""
    if devices < 1:
        raise ConfigurationError(f"devices must be >= 1, got {devices!r}")
    return {
        j: DeviceMonitor(factory, services, **kwargs) for j in range(devices)
    }
