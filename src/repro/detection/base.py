"""Detector interface: the error detection function ``a_k(j)``.

Section III-A of the paper assumes each device feeds its per-service QoS
samples to an *error detection function* that returns true when the
variation of quality is too large to be considered normal, and lists the
classic candidates — threshold rules, Holt–Winters forecasting, CUSUM —
while scoping their implementation out of the paper.  This package
implements them so the end-to-end pipeline (measure → detect → flag →
characterize) is runnable.

Every detector consumes one scalar QoS sample per step and produces a
:class:`Detection` carrying the abnormality verdict plus its one-step-ahead
forecast, which is how "predicted values differ from observed ones"
(Definition 5's notion of abnormal trajectory) is realized.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.errors import ConfigurationError

__all__ = ["Detection", "Detector", "detect_series"]


@dataclass(frozen=True)
class Detection:
    """Outcome of feeding one sample to a detector.

    Attributes
    ----------
    abnormal:
        The detector's verdict ``a_k(j)`` for this sample.
    forecast:
        The value the detector expected *before* seeing the sample
        (``None`` while the detector is still warming up).
    residual:
        ``observed - forecast`` (``None`` during warm-up).
    score:
        Detector-specific abnormality score (e.g. CUSUM statistic, number
        of sigmas); larger means more abnormal.  Always >= 0.
    """

    abnormal: bool
    forecast: Optional[float] = None
    residual: Optional[float] = None
    score: float = 0.0


class Detector(abc.ABC):
    """Streaming abnormality detector over a scalar QoS series.

    Subclasses implement :meth:`update`; they must be usable online (one
    sample at a time, O(1) memory) because the paper's devices sample
    their own QoS continuously and cannot buffer history indefinitely.
    """

    def __init__(self, *, warmup: int = 1) -> None:
        if warmup < 0:
            raise ConfigurationError(f"warmup must be >= 0, got {warmup}")
        self._warmup = warmup
        self._seen = 0

    @property
    def samples_seen(self) -> int:
        """Number of samples consumed so far."""
        return self._seen

    @property
    def warmed_up(self) -> bool:
        """True once the detector has seen at least ``warmup`` samples."""
        return self._seen >= self._warmup

    def update(self, value: float) -> Detection:
        """Consume one sample and return the verdict.

        Template method: validates the sample, tracks warm-up and
        delegates to :meth:`_update`.
        """
        if not 0.0 <= value <= 1.0 + 1e-9:
            raise ConfigurationError(
                f"QoS samples must lie in [0, 1], got {value!r}"
            )
        detection = self._update(float(value))
        self._seen += 1
        return detection

    @abc.abstractmethod
    def _update(self, value: float) -> Detection:
        """Consume one validated sample (subclass responsibility)."""

    def reset(self) -> None:
        """Forget all state (default: re-init via ``__init__`` contract).

        Subclasses with internal state must extend this.
        """
        self._seen = 0


def detect_series(detector: Detector, series: Sequence[float]) -> List[Detection]:
    """Feed a whole series through a detector and collect the verdicts."""
    return [detector.update(value) for value in series]
