"""Error detection functions ``a_k(j)`` (Section III-A substrate).

The paper treats the per-device error detection function as a black box
and cites threshold rules, Holt–Winters forecasting [6][12], CUSUM [10]
and Kalman filtering [7] as candidate implementations.  This package
provides all of them behind one streaming :class:`~repro.detection.base.Detector`
interface, plus :class:`~repro.detection.composite.DeviceMonitor`, which
ORs per-service verdicts into the device-level flag of Definition 5.
"""

from repro.detection.banks import (
    BandThresholdBank,
    BankDetection,
    CusumBank,
    DEFAULT_PLANE,
    DetectorBank,
    DetectorSpec,
    EwmaBank,
    FAMILIES,
    HoltWintersBank,
    KalmanBank,
    PLANES,
    ScalarDetectorBank,
    ShewhartBank,
    StepThresholdBank,
    default_detector_spec,
    resolve_family,
    resolve_plane,
)
from repro.detection.base import Detection, Detector, detect_series
from repro.detection.composite import (
    DeviceDetection,
    DeviceMonitor,
    make_detector_bank,
)
from repro.detection.cusum import CusumDetector
from repro.detection.ewma import EwmaDetector
from repro.detection.holt_winters import (
    HoltWintersDetector,
    SeasonalHoltWintersDetector,
)
from repro.detection.kalman import KalmanDetector
from repro.detection.shewhart import ShewhartDetector
from repro.detection.threshold import BandThresholdDetector, StepThresholdDetector

__all__ = [
    "BandThresholdBank",
    "BandThresholdDetector",
    "BankDetection",
    "CusumBank",
    "CusumDetector",
    "DEFAULT_PLANE",
    "Detection",
    "Detector",
    "DetectorBank",
    "DetectorSpec",
    "DeviceDetection",
    "DeviceMonitor",
    "EwmaBank",
    "EwmaDetector",
    "FAMILIES",
    "HoltWintersBank",
    "HoltWintersDetector",
    "KalmanBank",
    "KalmanDetector",
    "PLANES",
    "ScalarDetectorBank",
    "SeasonalHoltWintersDetector",
    "ShewhartBank",
    "ShewhartDetector",
    "StepThresholdBank",
    "StepThresholdDetector",
    "default_detector_spec",
    "detect_series",
    "make_detector_bank",
    "resolve_family",
    "resolve_plane",
]
