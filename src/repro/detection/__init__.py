"""Error detection functions ``a_k(j)`` (Section III-A substrate).

The paper treats the per-device error detection function as a black box
and cites threshold rules, Holt–Winters forecasting [6][12], CUSUM [10]
and Kalman filtering [7] as candidate implementations.  This package
provides all of them behind one streaming :class:`~repro.detection.base.Detector`
interface, plus :class:`~repro.detection.composite.DeviceMonitor`, which
ORs per-service verdicts into the device-level flag of Definition 5.
"""

from repro.detection.base import Detection, Detector, detect_series
from repro.detection.composite import (
    DeviceDetection,
    DeviceMonitor,
    make_detector_bank,
)
from repro.detection.cusum import CusumDetector
from repro.detection.ewma import EwmaDetector
from repro.detection.holt_winters import (
    HoltWintersDetector,
    SeasonalHoltWintersDetector,
)
from repro.detection.kalman import KalmanDetector
from repro.detection.shewhart import ShewhartDetector
from repro.detection.threshold import BandThresholdDetector, StepThresholdDetector

__all__ = [
    "BandThresholdDetector",
    "CusumDetector",
    "Detection",
    "Detector",
    "DeviceDetection",
    "DeviceMonitor",
    "EwmaDetector",
    "HoltWintersDetector",
    "KalmanDetector",
    "SeasonalHoltWintersDetector",
    "ShewhartDetector",
    "StepThresholdDetector",
    "detect_series",
    "make_detector_bank",
]
