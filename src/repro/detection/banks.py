"""Array-backed detector banks: the vectorized detection plane.

The scalar :class:`~repro.detection.base.Detector` classes run one
``update()`` per device per service per tick — ``n x d`` Python calls
that dominate tick cost once the characterization half of the pipeline
is batched (engine, bitset kernel, online service).  This module is the
columnar twin: a :class:`DetectorBank` holds the state of *all* ``n x d``
per-service detectors as NumPy arrays of shape ``(n, d)`` and updates
every device in a handful of vectorized operations per tick.

Equivalence contract
--------------------
Each ``<Family>Bank`` is *bit-exact* equivalent to running ``n x d``
independent scalar detectors of the same family:

* same arithmetic, in the same order, on IEEE doubles — flags, scores,
  forecasts and residuals match scalar runs exactly (not approximately);
* scalar ``forecast is None`` / ``residual is None`` (warm-up) maps to
  ``NaN`` in the bank's arrays;
* samples outside ``[0, 1]`` (including ``NaN``) raise
  :class:`~repro.core.errors.ConfigurationError` before any state is
  touched, mirroring the scalar template method.

``tests/detection/test_banks.py`` enforces the contract with randomized
and hypothesis property tests per family, including warm-up boundaries
and heterogeneous per-device parameters (every bank parameter may be a
scalar or an array broadcastable to ``(n, d)``).

Selection registry
------------------
Like the verdict kernels of :mod:`repro.core.bitset`, the detection
plane is selectable: ``PLANES`` names the implementations ("bank" — the
vectorized default — and "scalar", the reference loop wrapped in
:class:`ScalarDetectorBank`), and a :class:`DetectorSpec` builds either
from one config.  Consumers (network monitor, trace replay, the online
service, the sampled stream, the CLI) accept a spec plus a plane name
instead of a bare detector factory, so the per-device scalar classes
remain the readable reference implementation and the one-off series
path (:func:`~repro.detection.base.detect_series`).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Tuple, Union

import numpy as np

from repro.core.errors import ConfigurationError, DimensionMismatchError
from repro.detection.base import Detector
from repro.detection.cusum import CusumDetector
from repro.detection.ewma import EwmaDetector
from repro.detection.holt_winters import HoltWintersDetector
from repro.detection.kalman import KalmanDetector
from repro.detection.shewhart import ShewhartDetector
from repro.detection.threshold import BandThresholdDetector, StepThresholdDetector

__all__ = [
    "BankDetection",
    "BandThresholdBank",
    "CusumBank",
    "DEFAULT_PLANE",
    "DetectorBank",
    "DetectorSpec",
    "EwmaBank",
    "FAMILIES",
    "HoltWintersBank",
    "KalmanBank",
    "PLANES",
    "ScalarDetectorBank",
    "ShewhartBank",
    "StepThresholdBank",
    "as_bank",
    "default_detector_spec",
    "resolve_bank",
    "resolve_family",
    "resolve_plane",
]

#: Selectable detection-plane implementations.  ``"bank"`` is the fast
#: vectorized default; ``"scalar"`` runs the per-device reference
#: detectors behind the same batch API (equivalence / benchmark baseline).
PLANES: Tuple[str, ...] = ("bank", "scalar")
DEFAULT_PLANE = "bank"

#: Detector families every plane implements.
FAMILIES: Tuple[str, ...] = (
    "step",
    "band",
    "ewma",
    "shewhart",
    "cusum",
    "holt-winters",
    "kalman",
)


def resolve_plane(plane: Optional[str]) -> str:
    """Validate a plane name, defaulting ``None`` to :data:`DEFAULT_PLANE`."""
    if plane is None:
        return DEFAULT_PLANE
    if plane not in PLANES:
        raise ConfigurationError(
            f"detection plane must be one of {PLANES}, got {plane!r}"
        )
    return plane


def resolve_family(family: Optional[str]) -> str:
    """Validate a detector family name, defaulting ``None`` to ``"step"``."""
    if family is None:
        return "step"
    if family not in FAMILIES:
        raise ConfigurationError(
            f"detector family must be one of {FAMILIES}, got {family!r}"
        )
    return family


# ----------------------------------------------------------------------
# Batch detection result
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class BankDetection:
    """Outcome of feeding one ``(n, d)`` QoS snapshot to a bank.

    Attributes
    ----------
    positions:
        The observed snapshot, ``(n, d)`` float.  Aliases the validated
        input array (no defensive copy — a tick's snapshot is fresh by
        construction, and copying five fleet-sized arrays per tick is
        exactly the per-tick retention the banks exist to avoid).
    abnormal:
        Per-service verdicts, ``(n, d)`` bool.
    flags:
        Device-level ``a_k(j)``, ``(n,)`` bool — true when at least
        ``min_abnormal_services`` services raised (Definition 5).
    scores:
        Per-service abnormality scores, ``(n, d)`` float (0 during
        warm-up, matching the scalar default).
    forecasts:
        One-step-ahead forecasts, ``(n, d)`` float; ``NaN`` where the
        scalar detector would return ``forecast=None`` (warm-up).
    residuals:
        ``observed - forecast``, ``(n, d)`` float; ``NaN`` during warm-up.
    """

    positions: np.ndarray
    abnormal: np.ndarray
    flags: np.ndarray
    scores: np.ndarray
    forecasts: np.ndarray
    residuals: np.ndarray

    def flagged_devices(self) -> List[int]:
        """Sorted device ids whose flag is raised."""
        return [int(j) for j in np.nonzero(self.flags)[0]]

    @property
    def max_scores(self) -> np.ndarray:
        """Largest per-service score of every device, ``(n,)`` float."""
        return self.scores.max(axis=1)

    def abnormal_services(self, device: int) -> Tuple[int, ...]:
        """Indices of the services that raised for one device."""
        return tuple(int(s) for s in np.nonzero(self.abnormal[device])[0])


# ----------------------------------------------------------------------
# Bank base classes
# ----------------------------------------------------------------------
class DetectorBank(abc.ABC):
    """Batch abnormality detection over an ``(n, d)`` device fleet.

    The array-backed counterpart of ``n`` independent
    :class:`~repro.detection.composite.DeviceMonitor` instances:
    :meth:`observe_batch` consumes one QoS snapshot for the whole fleet
    and returns a :class:`BankDetection`.  Banks keep no per-tick
    history — state is exactly the detector recurrences' own arrays.
    """

    def __init__(
        self, devices: int, services: int, *, min_abnormal_services: int = 1
    ) -> None:
        if devices < 1:
            raise ConfigurationError(f"devices must be >= 1, got {devices!r}")
        if services < 1:
            raise ConfigurationError(f"services must be >= 1, got {services!r}")
        if not 1 <= min_abnormal_services <= services:
            raise ConfigurationError(
                "min_abnormal_services must lie in [1, services], got "
                f"{min_abnormal_services!r}"
            )
        self._n = devices
        self._d = services
        self._min_raise = min_abnormal_services
        self._seen = 0

    @property
    def devices(self) -> int:
        """Number of monitored devices ``n``."""
        return self._n

    @property
    def services(self) -> int:
        """Number of monitored services ``d``."""
        return self._d

    @property
    def shape(self) -> Tuple[int, int]:
        """The ``(n, d)`` state shape."""
        return (self._n, self._d)

    @property
    def samples_seen(self) -> int:
        """Snapshots consumed so far."""
        return self._seen

    def observe_batch(self, values: np.ndarray) -> BankDetection:
        """Consume one ``(n, d)`` snapshot; return the fleet's verdicts.

        Template method: validates the snapshot (shape and the scalar
        ``[0, 1]`` sample contract — ``NaN`` fails it too), delegates to
        :meth:`_observe`, then derives the device flags.
        """
        arr = np.asarray(values, dtype=float)
        if arr.shape != (self._n, self._d):
            raise DimensionMismatchError(
                f"expected a ({self._n}, {self._d}) snapshot, got shape "
                f"{arr.shape}"
            )
        if not bool(np.all((arr >= 0.0) & (arr <= 1.0 + 1e-9))):
            raise ConfigurationError(
                "QoS samples must lie in [0, 1] (NaN is not a sample)"
            )
        abnormal, forecasts, residuals, scores = self._observe(arr)
        self._seen += 1
        flags = np.count_nonzero(abnormal, axis=1) >= self._min_raise
        return BankDetection(
            positions=arr,
            abnormal=abnormal,
            flags=flags,
            scores=scores,
            forecasts=forecasts,
            residuals=residuals,
        )

    @abc.abstractmethod
    def _observe(
        self, values: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Consume one validated snapshot; return per-service
        ``(abnormal, forecasts, residuals, scores)`` arrays."""

    def reset(self) -> None:
        """Forget all state (subclasses must extend)."""
        self._seen = 0


class ScalarDetectorBank(DetectorBank):
    """Reference plane: ``n x d`` scalar detectors behind the batch API.

    This is *the* equivalence baseline the vectorized banks are tested
    against, and the escape hatch for custom detector factories the
    array plane cannot express.
    """

    def __init__(
        self,
        factory: Callable[[], Detector],
        devices: int,
        services: int,
        *,
        min_abnormal_services: int = 1,
    ) -> None:
        super().__init__(
            devices, services, min_abnormal_services=min_abnormal_services
        )
        self._detectors: List[List[Detector]] = [
            [factory() for _ in range(services)] for _ in range(devices)
        ]

    @property
    def detectors(self) -> List[List[Detector]]:
        """The underlying scalar detectors (row = device, col = service)."""
        return self._detectors

    def _observe(self, values):
        n, d = self.shape
        abnormal = np.zeros((n, d), dtype=bool)
        forecasts = np.full((n, d), np.nan)
        residuals = np.full((n, d), np.nan)
        scores = np.zeros((n, d))
        for i in range(n):
            row = self._detectors[i]
            for j in range(d):
                det = row[j].update(float(values[i, j]))
                abnormal[i, j] = det.abnormal
                scores[i, j] = det.score
                if det.forecast is not None:
                    forecasts[i, j] = det.forecast
                if det.residual is not None:
                    residuals[i, j] = det.residual
        return abnormal, forecasts, residuals, scores

    def reset(self) -> None:
        super().reset()
        for row in self._detectors:
            for det in row:
                det.reset()


class ArrayDetectorBank(DetectorBank):
    """Shared machinery of the vectorized banks.

    Every constructor parameter of the matching scalar detector may be
    given as a scalar or as an array broadcastable to ``(n, d)`` —
    heterogeneous per-device (or per-service) parameterizations cost
    nothing extra.  Validation mirrors the scalar constructors
    elementwise.
    """

    def __init__(
        self,
        devices: int,
        services: int,
        *,
        warmup,
        min_abnormal_services: int = 1,
    ) -> None:
        super().__init__(
            devices, services, min_abnormal_services=min_abnormal_services
        )
        self._warmup = self._param(warmup, dtype=int)
        if np.any(self._warmup < 0):
            raise ConfigurationError("warmup must be >= 0 everywhere")

    def _param(self, value, dtype=float) -> np.ndarray:
        """Broadcast one parameter to the ``(n, d)`` state shape."""
        arr = np.asarray(value, dtype=dtype)
        try:
            return np.broadcast_to(arr, self.shape).copy()
        except ValueError as exc:
            raise ConfigurationError(
                f"parameter of shape {arr.shape} does not broadcast to "
                f"{self.shape}"
            ) from exc

    def _require(self, condition: np.ndarray, message: str) -> None:
        """Elementwise constructor validation, scalar-error compatible."""
        if not bool(np.all(condition)):
            raise ConfigurationError(message)

    def _warmed(self) -> np.ndarray:
        """``(n, d)`` mask of elements past their warm-up (pre-increment
        sample count, exactly like the scalar template method)."""
        return self._seen >= self._warmup


# ----------------------------------------------------------------------
# Threshold banks
# ----------------------------------------------------------------------
class StepThresholdBank(ArrayDetectorBank):
    """Vectorized :class:`~repro.detection.threshold.StepThresholdDetector`."""

    def __init__(
        self,
        devices: int,
        services: int,
        max_step,
        *,
        warmup=1,
        min_abnormal_services: int = 1,
    ) -> None:
        super().__init__(
            devices,
            services,
            warmup=warmup,
            min_abnormal_services=min_abnormal_services,
        )
        self._max_step = self._param(max_step)
        self._require(
            (self._max_step > 0.0) & (self._max_step <= 1.0),
            "max_step must lie in (0, 1] everywhere",
        )
        self._last: Optional[np.ndarray] = None

    def _observe(self, values):
        n, d = self.shape
        abnormal = np.zeros((n, d), dtype=bool)
        forecasts = np.full((n, d), np.nan)
        residuals = np.full((n, d), np.nan)
        scores = np.zeros((n, d))
        last = self._last
        self._last = values.copy()
        if last is not None:
            active = self._warmed()
            resid = values - last
            magnitude = np.abs(resid)
            abnormal = active & (magnitude > self._max_step)
            forecasts = np.where(active, last, np.nan)
            residuals = np.where(active, resid, np.nan)
            scores = np.where(active, magnitude / self._max_step, 0.0)
        return abnormal, forecasts, residuals, scores

    def reset(self) -> None:
        super().reset()
        self._last = None


class BandThresholdBank(ArrayDetectorBank):
    """Vectorized :class:`~repro.detection.threshold.BandThresholdDetector`."""

    def __init__(
        self,
        devices: int,
        services: int,
        low,
        high=1.0,
        *,
        warmup=0,
        min_abnormal_services: int = 1,
    ) -> None:
        super().__init__(
            devices,
            services,
            warmup=warmup,
            min_abnormal_services=min_abnormal_services,
        )
        self._low = self._param(low)
        self._high = self._param(high)
        self._require(
            (self._low >= 0.0) & (self._low < self._high) & (self._high <= 1.0),
            "band must satisfy 0 <= low < high <= 1 everywhere",
        )
        self._center = (self._low + self._high) / 2.0
        self._half = (self._high - self._low) / 2.0

    def _observe(self, values):
        active = self._warmed()
        resid = values - self._center
        abnormal = active & ((values < self._low) | (values > self._high))
        forecasts = np.where(active, self._center, np.nan)
        residuals = np.where(active, resid, np.nan)
        # half > 0 by construction (low < high strictly).
        scores = np.where(active, np.abs(resid) / self._half, 0.0)
        return abnormal, forecasts, residuals, scores


# ----------------------------------------------------------------------
# EWMA bank
# ----------------------------------------------------------------------
class EwmaBank(ArrayDetectorBank):
    """Vectorized :class:`~repro.detection.ewma.EwmaDetector`."""

    def __init__(
        self,
        devices: int,
        services: int,
        alpha=0.2,
        nsigma=4.0,
        *,
        min_std=1e-3,
        warmup=8,
        min_abnormal_services: int = 1,
    ) -> None:
        super().__init__(
            devices,
            services,
            warmup=warmup,
            min_abnormal_services=min_abnormal_services,
        )
        self._alpha = self._param(alpha)
        self._nsigma = self._param(nsigma)
        self._min_std = self._param(min_std)
        self._require(
            (self._alpha > 0.0) & (self._alpha <= 1.0),
            "alpha must lie in (0, 1] everywhere",
        )
        self._require(self._nsigma > 0, "nsigma must be positive everywhere")
        self._require(self._min_std >= 0, "min_std must be >= 0 everywhere")
        self._mean: Optional[np.ndarray] = None
        self._var = np.zeros(self.shape)

    def _observe(self, values):
        n, d = self.shape
        if self._mean is None:
            self._mean = values.copy()
            return (
                np.zeros((n, d), dtype=bool),
                np.full((n, d), np.nan),
                np.full((n, d), np.nan),
                np.zeros((n, d)),
            )
        forecasts = self._mean.copy()
        residuals = values - forecasts
        std = np.maximum(np.sqrt(self._var), self._min_std)
        scores = np.abs(residuals) / std
        abnormal = self._warmed() & (scores > self._nsigma)
        # Abnormal samples do not update the tracker (level shifts keep
        # flagging) — identical gating to the scalar detector.
        track = ~abnormal
        alpha = self._alpha
        self._mean = np.where(
            track, forecasts + alpha * residuals, self._mean
        )
        self._var = np.where(
            track,
            (1 - alpha) * (self._var + alpha * residuals * residuals),
            self._var,
        )
        return abnormal, forecasts, residuals, scores

    def reset(self) -> None:
        super().reset()
        self._mean = None
        self._var = np.zeros(self.shape)


# ----------------------------------------------------------------------
# Shewhart bank
# ----------------------------------------------------------------------
class ShewhartBank(ArrayDetectorBank):
    """Vectorized :class:`~repro.detection.shewhart.ShewhartDetector`.

    The scalar chart recomputes window mean and variance with sequential
    left-to-right sums over a deque in age order; the bank mirrors that
    exactly with per-element circular buffers gathered into age order
    and summed slot by slot (NumPy's pairwise ``sum`` would differ in
    the last ulp and break bit-exactness).
    """

    def __init__(
        self,
        devices: int,
        services: int,
        window=20,
        nsigma=3.5,
        *,
        min_std=1e-3,
        warmup=5,
        min_abnormal_services: int = 1,
    ) -> None:
        super().__init__(
            devices,
            services,
            warmup=warmup,
            min_abnormal_services=min_abnormal_services,
        )
        self._window = self._param(window, dtype=int)
        self._nsigma = self._param(nsigma)
        self._min_std = self._param(min_std)
        self._require(self._window >= 2, "window must be >= 2 everywhere")
        self._require(self._nsigma > 0, "nsigma must be positive everywhere")
        w_max = int(self._window.max())
        self._buffer = np.zeros(self.shape + (w_max,))
        self._count = np.zeros(self.shape, dtype=int)
        self._head = np.zeros(self.shape, dtype=int)

    def _ordered_window(self) -> Tuple[np.ndarray, np.ndarray]:
        """Window contents in age order plus the validity mask.

        Returns ``(ordered, valid)`` of shape ``(n, d, w_max)``; slot
        ``k`` of ``ordered`` is the ``k``-th oldest sample where
        ``valid[..., k]`` (i.e. ``k < count``).
        """
        w_max = self._buffer.shape[2]
        offsets = np.arange(w_max)
        # Growing windows write at slot `count` (head stays 0); full
        # windows overwrite `head` and advance it — either way slot
        # (head + k) % window is the k-th oldest of a window-sized ring.
        order = (self._head[..., None] + offsets) % self._window[..., None]
        ordered = np.take_along_axis(self._buffer, order, axis=2)
        valid = offsets < self._count[..., None]
        return ordered, valid

    def _observe(self, values):
        n, d = self.shape
        ordered, valid = self._ordered_window()
        w_max = ordered.shape[2]
        count = self._count
        small = count < 2
        safe_count = np.maximum(count, 1)
        # Sequential (left-to-right) sums in age order: bit-exact with
        # the scalar `sum(deque)` / `sum((x - mean) ** 2)` loops.
        total = np.zeros((n, d))
        for k in range(w_max):
            total = total + np.where(valid[..., k], ordered[..., k], 0.0)
        mean = total / safe_count
        sq_total = np.zeros((n, d))
        for k in range(w_max):
            dev = ordered[..., k] - mean
            sq_total = sq_total + np.where(valid[..., k], dev * dev, 0.0)
        var = sq_total / safe_count
        std = np.maximum(np.sqrt(var), self._min_std)
        resid = values - mean
        scores_full = np.abs(resid) / std
        abnormal = (~small) & self._warmed() & (scores_full > self._nsigma)
        forecasts = np.where(small, np.nan, mean)
        residuals = np.where(small, np.nan, resid)
        scores = np.where(small, 0.0, scores_full)
        # Append: warm-fill elements always, charted elements only when
        # the sample was accepted as normal (the scalar gating).
        append = small | ~abnormal
        grow = count < self._window
        pos = np.where(grow, count, self._head)
        slot = np.take_along_axis(self._buffer, pos[..., None], axis=2)[..., 0]
        new_slot = np.where(append, values, slot)
        np.put_along_axis(self._buffer, pos[..., None], new_slot[..., None], axis=2)
        self._count = np.where(append & grow, count + 1, count)
        self._head = np.where(
            append & ~grow, (self._head + 1) % self._window, self._head
        )
        return abnormal, forecasts, residuals, scores

    def reset(self) -> None:
        super().reset()
        self._buffer.fill(0.0)
        self._count.fill(0)
        self._head.fill(0)


# ----------------------------------------------------------------------
# CUSUM bank
# ----------------------------------------------------------------------
class CusumBank(ArrayDetectorBank):
    """Vectorized :class:`~repro.detection.cusum.CusumDetector`."""

    def __init__(
        self,
        devices: int,
        services: int,
        threshold=0.15,
        drift=0.01,
        *,
        mu=None,
        warmup=10,
        reset_on_alarm=True,
        min_abnormal_services: int = 1,
    ) -> None:
        super().__init__(
            devices,
            services,
            warmup=warmup,
            min_abnormal_services=min_abnormal_services,
        )
        self._threshold = self._param(threshold)
        self._drift = self._param(drift)
        self._require(self._threshold > 0, "threshold must be positive everywhere")
        self._require(self._drift >= 0, "drift must be >= 0 everywhere")
        self._reset_on_alarm = self._param(reset_on_alarm, dtype=bool)
        # NaN marks "mu not yet known" (scalar: `self._mu is None`);
        # a fixed mu disables learning for that element.
        if mu is None:
            self._mu_fixed = np.full(self.shape, np.nan)
        else:
            self._mu_fixed = self._param(mu)
        self._learn = np.isnan(self._mu_fixed)
        self._mu = self._mu_fixed.copy()
        self._warmup_sum = np.zeros(self.shape)
        self._pos = np.zeros(self.shape)
        self._neg = np.zeros(self.shape)

    @property
    def statistics(self) -> Tuple[np.ndarray, np.ndarray]:
        """Current one-sided statistics ``(S+, S-)`` arrays."""
        return (self._pos.copy(), self._neg.copy())

    def _observe(self, values):
        n, d = self.shape
        warming = ~self._warmed()
        self._warmup_sum = np.where(
            warming, self._warmup_sum + values, self._warmup_sum
        )
        learn_now = warming & self._learn & (self._seen + 1 == self._warmup)
        with np.errstate(divide="ignore", invalid="ignore"):
            learned = self._warmup_sum / self._warmup
        self._mu = np.where(learn_now, learned, self._mu)
        active = ~warming
        # warmup == 0 with no fixed mu: bootstrap on the first sample.
        bootstrap = active & np.isnan(self._mu)
        self._mu = np.where(bootstrap, values, self._mu)
        mu_safe = np.where(np.isnan(self._mu), 0.0, self._mu)
        deviation = values - mu_safe
        pos_new = np.maximum(0.0, self._pos + deviation - self._drift)
        neg_new = np.maximum(0.0, self._neg - deviation - self._drift)
        scores_full = np.maximum(pos_new, neg_new) / self._threshold
        abnormal = active & (scores_full > 1.0)
        alarm_reset = abnormal & self._reset_on_alarm
        self._pos = np.where(
            active, np.where(alarm_reset, 0.0, pos_new), self._pos
        )
        self._neg = np.where(
            active, np.where(alarm_reset, 0.0, neg_new), self._neg
        )
        forecasts = np.where(active, mu_safe, np.nan)
        residuals = np.where(active, deviation, np.nan)
        scores = np.where(active, scores_full, 0.0)
        return abnormal, forecasts, residuals, scores

    def reset(self) -> None:
        super().reset()
        self._mu = self._mu_fixed.copy()
        self._warmup_sum = np.zeros(self.shape)
        self._pos = np.zeros(self.shape)
        self._neg = np.zeros(self.shape)


# ----------------------------------------------------------------------
# Holt–Winters bank
# ----------------------------------------------------------------------
class HoltWintersBank(ArrayDetectorBank):
    """Vectorized :class:`~repro.detection.holt_winters.HoltWintersDetector`
    (Holt's linear level + trend with Brutlag-style deviation bands)."""

    def __init__(
        self,
        devices: int,
        services: int,
        alpha=0.5,
        beta=0.3,
        gamma=0.3,
        *,
        band=4.0,
        min_deviation=5e-3,
        warmup=5,
        min_abnormal_services: int = 1,
    ) -> None:
        warmup_arr = np.maximum(2, np.asarray(warmup, dtype=int))
        super().__init__(
            devices,
            services,
            warmup=warmup_arr,
            min_abnormal_services=min_abnormal_services,
        )
        self._alpha = self._param(alpha)
        self._beta = self._param(beta)
        self._gamma = self._param(gamma)
        self._band = self._param(band)
        self._min_dev = self._param(min_deviation)
        self._require(
            (self._alpha > 0.0) & (self._alpha <= 1.0),
            "alpha must lie in (0, 1] everywhere",
        )
        self._require(
            (self._gamma > 0.0) & (self._gamma <= 1.0),
            "gamma must lie in (0, 1] everywhere",
        )
        self._require(
            (self._beta >= 0.0) & (self._beta <= 1.0),
            "beta must lie in [0, 1] everywhere",
        )
        self._require(self._band > 0, "band must be positive everywhere")
        self._level: Optional[np.ndarray] = None
        self._trend = np.zeros(self.shape)
        self._deviation = np.zeros(self.shape)

    def _observe(self, values):
        n, d = self.shape
        if self._level is None:
            self._level = values.copy()
            return (
                np.zeros((n, d), dtype=bool),
                np.full((n, d), np.nan),
                np.full((n, d), np.nan),
                np.zeros((n, d)),
            )
        if self._seen == 1:
            # Second sample initializes the trend, fleet-wide (banks feed
            # every element in lockstep, so the scalar per-detector sample
            # counter is the bank's own).
            self._trend = values - self._level
        forecasts = self._level + self._trend
        residuals = values - forecasts
        dev = np.maximum(self._deviation, self._min_dev)
        threshold = self._band * dev
        magnitude = np.abs(residuals)
        scores = np.zeros((n, d))
        np.divide(magnitude, threshold, out=scores, where=dev > 0)
        abnormal = self._warmed() & (magnitude > threshold)
        track = ~abnormal
        level_prev = self._level
        level_new = self._alpha * values + (1 - self._alpha) * (
            self._level + self._trend
        )
        trend_new = self._beta * (level_new - level_prev) + (
            1 - self._beta
        ) * self._trend
        dev_new = self._gamma * magnitude + (1 - self._gamma) * self._deviation
        self._level = np.where(track, level_new, self._level)
        self._trend = np.where(track, trend_new, self._trend)
        self._deviation = np.where(track, dev_new, self._deviation)
        return abnormal, forecasts, residuals, scores

    def reset(self) -> None:
        super().reset()
        self._level = None
        self._trend = np.zeros(self.shape)
        self._deviation = np.zeros(self.shape)


# ----------------------------------------------------------------------
# Kalman bank
# ----------------------------------------------------------------------
class KalmanBank(ArrayDetectorBank):
    """Vectorized :class:`~repro.detection.kalman.KalmanDetector`
    (local-level model with an innovation gate)."""

    def __init__(
        self,
        devices: int,
        services: int,
        process_var=1e-4,
        measurement_var=1e-3,
        nsigma=4.0,
        *,
        initial_var=1.0,
        warmup=5,
        gate_updates=True,
        min_abnormal_services: int = 1,
    ) -> None:
        super().__init__(
            devices,
            services,
            warmup=warmup,
            min_abnormal_services=min_abnormal_services,
        )
        self._q = self._param(process_var)
        self._rho = self._param(measurement_var)
        self._nsigma = self._param(nsigma)
        self._initial_var = self._param(initial_var)
        self._require(
            (self._q >= 0) & (self._rho > 0),
            "need process_var >= 0 and measurement_var > 0 everywhere",
        )
        self._require(self._nsigma > 0, "nsigma must be positive everywhere")
        self._gate = self._param(gate_updates, dtype=bool)
        self._x: Optional[np.ndarray] = None
        self._p = self._initial_var.copy()

    @property
    def state(self) -> Tuple[Optional[np.ndarray], np.ndarray]:
        """Current ``(estimate, variance)`` arrays of the filtered level."""
        return (
            None if self._x is None else self._x.copy(),
            self._p.copy(),
        )

    def _observe(self, values):
        n, d = self.shape
        if self._x is None:
            # First observation initializes the state directly.
            self._x = values.copy()
            self._p = self._rho.copy()
            return (
                np.zeros((n, d), dtype=bool),
                np.full((n, d), np.nan),
                np.full((n, d), np.nan),
                np.zeros((n, d)),
            )
        x_pred = self._x
        p_pred = self._p + self._q
        innovation = values - x_pred
        s = p_pred + self._rho
        raw = np.abs(innovation) / np.sqrt(s)
        abnormal = self._warmed() & (raw > self._nsigma)
        gated = abnormal & self._gate
        gain = p_pred / s
        self._x = np.where(gated, x_pred, x_pred + gain * innovation)
        self._p = np.where(gated, p_pred, (1 - gain) * p_pred)
        return abnormal, x_pred, innovation, raw / self._nsigma

    def reset(self) -> None:
        super().reset()
        self._x = None
        self._p = self._initial_var.copy()


# ----------------------------------------------------------------------
# Spec: one config, either plane
# ----------------------------------------------------------------------
#: family name -> (scalar detector class, array bank class)
_FAMILY_TABLE: Dict[str, Tuple[type, type]] = {
    "step": (StepThresholdDetector, StepThresholdBank),
    "band": (BandThresholdDetector, BandThresholdBank),
    "ewma": (EwmaDetector, EwmaBank),
    "shewhart": (ShewhartDetector, ShewhartBank),
    "cusum": (CusumDetector, CusumBank),
    "holt-winters": (HoltWintersDetector, HoltWintersBank),
    "kalman": (KalmanDetector, KalmanBank),
}


@dataclass(frozen=True)
class DetectorSpec:
    """One detector configuration, buildable on either plane.

    ``family`` names the detector family (:data:`FAMILIES`); ``params``
    are the scalar constructor's keyword arguments (the banks accept the
    same names, additionally allowing ``(n, d)``-broadcastable arrays —
    arrays are only expressible on the ``"bank"`` plane).
    """

    family: str = "step"
    params: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "family", resolve_family(self.family))
        object.__setattr__(self, "params", dict(self.params))

    def scalar(self) -> Detector:
        """Build one scalar reference detector from this spec."""
        scalar_cls, _ = _FAMILY_TABLE[self.family]
        try:
            return scalar_cls(**self.params)
        except (TypeError, ValueError) as exc:
            # ValueError covers array-valued params hitting the scalar
            # validators ("truth value of an array is ambiguous") —
            # arrays are only expressible on the bank plane.
            raise ConfigurationError(
                f"bad parameters for detector family {self.family!r}: {exc}"
            ) from exc

    def scalar_factory(self) -> Callable[[], Detector]:
        """Zero-argument factory building fresh scalar detectors."""
        return self.scalar

    def bank(
        self,
        devices: int,
        services: int,
        *,
        plane: Optional[str] = None,
        min_abnormal_services: int = 1,
    ) -> DetectorBank:
        """Build a fleet-sized bank on the requested plane.

        ``plane=None`` selects :data:`DEFAULT_PLANE` (the vectorized
        bank); ``"scalar"`` wraps ``n x d`` reference detectors in a
        :class:`ScalarDetectorBank` — same API, same verdicts, Python
        loop underneath.
        """
        plane = resolve_plane(plane)
        if plane == "scalar":
            return ScalarDetectorBank(
                self.scalar_factory(),
                devices,
                services,
                min_abnormal_services=min_abnormal_services,
            )
        _, bank_cls = _FAMILY_TABLE[self.family]
        try:
            return bank_cls(
                devices,
                services,
                min_abnormal_services=min_abnormal_services,
                **self.params,
            )
        except (TypeError, ValueError) as exc:
            raise ConfigurationError(
                f"bad parameters for detector family {self.family!r}: {exc}"
            ) from exc

    def replace(self, **params) -> "DetectorSpec":
        """A copy of this spec with some parameters overridden."""
        merged = dict(self.params)
        merged.update(params)
        return DetectorSpec(self.family, merged)


def default_detector_spec(r: float) -> DetectorSpec:
    """The pipeline's default detector for impact radius ``r``.

    A step-threshold detector with ``max_step = min(4 r, 1)``: a
    relocation in the QoS space is macroscopic by construction, exactly
    the detector the Section VII simulator assumes.
    """
    return DetectorSpec("step", {"max_step": min(4.0 * r, 1.0)})


#: Something every consumer accepts where a detector is configured.
DetectorLike = Union[DetectorSpec, DetectorBank]


def as_bank(
    detector: DetectorLike,
    devices: int,
    services: int,
    *,
    plane: Optional[str] = None,
    min_abnormal_services: int = 1,
) -> DetectorBank:
    """Coerce a spec or prebuilt bank into a fleet-sized bank.

    A prebuilt bank is validated against the fleet shape and returned
    as-is (its plane is whatever it was built with); a spec is built on
    the requested plane.
    """
    if isinstance(detector, DetectorBank):
        if detector.shape != (devices, services):
            raise DimensionMismatchError(
                f"bank shape {detector.shape} does not match the fleet "
                f"({devices}, {services})"
            )
        return detector
    if isinstance(detector, DetectorSpec):
        return detector.bank(
            devices,
            services,
            plane=plane,
            min_abnormal_services=min_abnormal_services,
        )
    raise ConfigurationError(
        f"detector must be a DetectorSpec or DetectorBank, got {detector!r}"
    )


def resolve_bank(
    devices: int,
    services: int,
    *,
    detector_factory: Optional[Callable[[], Detector]] = None,
    detector: Optional[DetectorLike] = None,
    detection: Optional[str] = None,
    r: float = 0.03,
    min_abnormal_services: int = 1,
) -> DetectorBank:
    """The one front door every consumer builds its bank through.

    A :class:`DetectorSpec` (or prebuilt bank) selects a family on the
    requested plane; a bare ``detector_factory`` forces the scalar
    reference plane (an opaque factory cannot be vectorized); neither
    defaults to the step-threshold spec for impact radius ``r`` on the
    default (vectorized) plane.  Centralized here so the monitor, the
    trace replayers and the online drivers cannot drift on the
    arbitration rules.
    """
    if detector_factory is not None and detector is not None:
        raise ConfigurationError(
            "pass either detector_factory or detector, not both"
        )
    if detector_factory is not None:
        if detection not in (None, "scalar"):
            raise ConfigurationError(
                "a bare detector_factory runs on the scalar plane; build a "
                f"DetectorSpec for detection={detection!r}"
            )
        return ScalarDetectorBank(
            detector_factory,
            devices,
            services,
            min_abnormal_services=min_abnormal_services,
        )
    return as_bank(
        detector or default_detector_spec(r),
        devices,
        services,
        plane=detection,
        min_abnormal_services=min_abnormal_services,
    )
