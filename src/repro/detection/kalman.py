"""Scalar Kalman-filter detector (the paper's reference [7]).

The [15]-style monitoring systems the paper discusses install Kalman
filters at monitored nodes so the management node can predict metric
values instead of receiving them.  We implement the one-dimensional
local-level model

    ``x_k = x_{k-1} + w,   w ~ N(0, q)``       (state / QoS level)
    ``z_k = x_k + v,       v ~ N(0, rho)``     (measurement)

whose filter reduces to two scalar recurrences.  A sample is abnormal when
its normalized innovation ``|z - x̂| / sqrt(S)`` exceeds ``nsigma`` (the
innovation test), with ``S`` the innovation variance.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.core.errors import ConfigurationError
from repro.detection.base import Detection, Detector

__all__ = ["KalmanDetector"]


class KalmanDetector(Detector):
    """Local-level Kalman filter with an innovation gate.

    Parameters
    ----------
    process_var:
        Process noise variance ``q`` — how fast the true QoS level is
        allowed to wander per step.
    measurement_var:
        Measurement noise variance ``rho``.
    nsigma:
        Innovation gate width in standard deviations.
    initial_var:
        Prior state variance before the first observation.
    warmup:
        Samples consumed before verdicts may be abnormal.
    gate_updates:
        When true (default), gated (abnormal) samples do not update the
        state, so a level shift keeps flagging rather than being tracked.
    """

    def __init__(
        self,
        process_var: float = 1e-4,
        measurement_var: float = 1e-3,
        nsigma: float = 4.0,
        *,
        initial_var: float = 1.0,
        warmup: int = 5,
        gate_updates: bool = True,
    ) -> None:
        super().__init__(warmup=warmup)
        if process_var < 0 or measurement_var <= 0:
            raise ConfigurationError(
                "need process_var >= 0 and measurement_var > 0; got "
                f"q={process_var!r}, rho={measurement_var!r}"
            )
        if nsigma <= 0:
            raise ConfigurationError(f"nsigma must be positive, got {nsigma!r}")
        self._q = process_var
        self._rho = measurement_var
        self._nsigma = nsigma
        self._initial_var = initial_var
        self._x: Optional[float] = None
        self._p = initial_var
        self._gate_updates = gate_updates

    @property
    def state(self) -> tuple:
        """Current ``(estimate, variance)`` of the filtered level."""
        return (self._x, self._p)

    def _update(self, value: float) -> Detection:
        if self._x is None:
            # First observation initializes the state directly.
            self._x = value
            self._p = self._rho
            return Detection(abnormal=False)
        # Predict.
        x_pred = self._x
        p_pred = self._p + self._q
        # Innovation test.
        innovation = value - x_pred
        s = p_pred + self._rho
        score = abs(innovation) / math.sqrt(s)
        abnormal = self.warmed_up and score > self._nsigma
        if not (abnormal and self._gate_updates):
            gain = p_pred / s
            self._x = x_pred + gain * innovation
            self._p = (1 - gain) * p_pred
        else:
            # Keep the prediction (time update only).
            self._x = x_pred
            self._p = p_pred
        return Detection(
            abnormal=abnormal,
            forecast=x_pred,
            residual=innovation,
            score=score / self._nsigma,
        )

    def reset(self) -> None:
        super().reset()
        self._x = None
        self._p = self._initial_var
