"""EWMA control-chart detector.

An exponentially weighted moving average tracks the series level; an
exponentially weighted estimate of the residual variance provides control
limits at ``nsigma`` standard deviations.  This is the standard streaming
compromise between the naive threshold rule and full forecasting models:
O(1) state, smooth adaptation, and a tunable false-positive rate.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.core.errors import ConfigurationError
from repro.detection.base import Detection, Detector

__all__ = ["EwmaDetector"]


class EwmaDetector(Detector):
    """Flag samples outside ``mean ± nsigma * std`` of an EWMA tracker.

    Parameters
    ----------
    alpha:
        Smoothing factor in ``(0, 1]``; larger adapts faster but forgives
        slow drifts less.
    nsigma:
        Width of the control band in residual standard deviations.
    min_std:
        Variance floor, preventing a perfectly flat warm-up series from
        flagging every subsequent measurement noise-level wiggle.
    warmup:
        Samples consumed before verdicts may be abnormal.
    """

    def __init__(
        self,
        alpha: float = 0.2,
        nsigma: float = 4.0,
        *,
        min_std: float = 1e-3,
        warmup: int = 8,
    ) -> None:
        super().__init__(warmup=warmup)
        if not 0.0 < alpha <= 1.0:
            raise ConfigurationError(f"alpha must lie in (0, 1], got {alpha!r}")
        if nsigma <= 0:
            raise ConfigurationError(f"nsigma must be positive, got {nsigma!r}")
        if min_std < 0:
            raise ConfigurationError(f"min_std must be >= 0, got {min_std!r}")
        self._alpha = alpha
        self._nsigma = nsigma
        self._min_std = min_std
        self._mean: Optional[float] = None
        self._var: float = 0.0

    def _update(self, value: float) -> Detection:
        if self._mean is None:
            self._mean = value
            return Detection(abnormal=False)
        forecast = self._mean
        residual = value - forecast
        std = max(math.sqrt(self._var), self._min_std)
        score = abs(residual) / std
        abnormal = self.warmed_up and score > self._nsigma
        # Abnormal samples do not update the tracker: a genuine level shift
        # should keep flagging until an operator (or the characterization
        # layer) reacts, instead of being silently absorbed.
        if not abnormal:
            alpha = self._alpha
            self._mean = forecast + alpha * residual
            self._var = (1 - alpha) * (self._var + alpha * residual * residual)
        return Detection(
            abnormal=abnormal, forecast=forecast, residual=residual, score=score
        )

    def reset(self) -> None:
        super().reset()
        self._mean = None
        self._var = 0.0
