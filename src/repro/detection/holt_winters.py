"""Holt–Winters forecasting detectors (the paper's references [6], [12]).

Holt's double exponential smoothing tracks level and trend; the seasonal
(triple) variant adds an additive seasonal component, useful for QoS
series with daily usage cycles.  A sample is abnormal when it falls
outside a confidence band around the one-step-ahead forecast, the band
width being an EWMA of absolute residuals (the classic
Brutlag-style deviation tracking).
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.errors import ConfigurationError
from repro.detection.base import Detection, Detector

__all__ = ["HoltWintersDetector", "SeasonalHoltWintersDetector"]


class HoltWintersDetector(Detector):
    """Holt's linear (level + trend) forecaster with deviation bands.

    Parameters
    ----------
    alpha:
        Level smoothing factor in ``(0, 1]``.
    beta:
        Trend smoothing factor in ``[0, 1]``.
    gamma:
        Deviation smoothing factor in ``(0, 1]``.
    band:
        Number of smoothed absolute deviations tolerated around the
        forecast.
    min_deviation:
        Floor on the deviation estimate.
    warmup:
        Samples consumed before verdicts may be abnormal (>= 2 so level
        and trend can initialize).
    """

    def __init__(
        self,
        alpha: float = 0.5,
        beta: float = 0.3,
        gamma: float = 0.3,
        *,
        band: float = 4.0,
        min_deviation: float = 5e-3,
        warmup: int = 5,
    ) -> None:
        super().__init__(warmup=max(2, warmup))
        for name, value, lo in (("alpha", alpha, 0.0), ("gamma", gamma, 0.0)):
            if not lo < value <= 1.0:
                raise ConfigurationError(f"{name} must lie in (0, 1], got {value!r}")
        if not 0.0 <= beta <= 1.0:
            raise ConfigurationError(f"beta must lie in [0, 1], got {beta!r}")
        if band <= 0:
            raise ConfigurationError(f"band must be positive, got {band!r}")
        self._alpha = alpha
        self._beta = beta
        self._gamma = gamma
        self._band = band
        self._min_dev = min_deviation
        self._level: Optional[float] = None
        self._trend: float = 0.0
        self._deviation: float = 0.0

    def forecast_ahead(self, horizon: int = 1) -> Optional[float]:
        """Return the ``horizon``-step-ahead forecast (None pre-warm-up)."""
        if self._level is None:
            return None
        return self._level + horizon * self._trend

    def _update(self, value: float) -> Detection:
        if self._level is None:
            self._level = value
            return Detection(abnormal=False)
        if self._seen == 1:
            # Second sample initializes the trend.
            self._trend = value - self._level
        forecast = self._level + self._trend
        residual = value - forecast
        deviation = max(self._deviation, self._min_dev)
        score = abs(residual) / (self._band * deviation) if deviation else 0.0
        abnormal = self.warmed_up and abs(residual) > self._band * deviation
        if not abnormal:
            level_prev = self._level
            self._level = self._alpha * value + (1 - self._alpha) * (
                self._level + self._trend
            )
            self._trend = self._beta * (self._level - level_prev) + (
                1 - self._beta
            ) * self._trend
            self._deviation = self._gamma * abs(residual) + (
                1 - self._gamma
            ) * self._deviation
        return Detection(
            abnormal=abnormal, forecast=forecast, residual=residual, score=score
        )

    def reset(self) -> None:
        super().reset()
        self._level = None
        self._trend = 0.0
        self._deviation = 0.0


class SeasonalHoltWintersDetector(Detector):
    """Additive triple exponential smoothing (Winters' seasonal variant).

    Maintains level, trend and a length-``period`` additive seasonal
    profile.  The first ``period`` samples initialize the seasonal indices
    (relative to their mean); alarms are suppressed until one full period
    plus ``warmup`` extra samples have been seen.
    """

    def __init__(
        self,
        period: int,
        alpha: float = 0.4,
        beta: float = 0.1,
        gamma_season: float = 0.3,
        *,
        band: float = 4.0,
        gamma_dev: float = 0.3,
        min_deviation: float = 5e-3,
        warmup: int = 3,
    ) -> None:
        if period < 2:
            raise ConfigurationError(f"period must be >= 2, got {period!r}")
        super().__init__(warmup=period + warmup)
        for name, value in (("alpha", alpha), ("gamma_season", gamma_season)):
            if not 0.0 < value <= 1.0:
                raise ConfigurationError(f"{name} must lie in (0, 1], got {value!r}")
        if not 0.0 <= beta <= 1.0:
            raise ConfigurationError(f"beta must lie in [0, 1], got {beta!r}")
        self._period = period
        self._alpha = alpha
        self._beta = beta
        self._gamma_season = gamma_season
        self._gamma_dev = gamma_dev
        self._band = band
        self._min_dev = min_deviation
        self._history: List[float] = []
        self._season: Optional[List[float]] = None
        self._level: float = 0.0
        self._trend: float = 0.0
        self._deviation: float = 0.0

    def _init_components(self) -> None:
        history = self._history
        mean = sum(history) / len(history)
        self._season = [x - mean for x in history]
        self._level = mean
        self._trend = 0.0

    def _update(self, value: float) -> Detection:
        if self._season is None:
            self._history.append(value)
            if len(self._history) == self._period:
                self._init_components()
            return Detection(abnormal=False)
        idx = self._seen % self._period
        forecast = self._level + self._trend + self._season[idx]
        residual = value - forecast
        deviation = max(self._deviation, self._min_dev)
        score = abs(residual) / (self._band * deviation) if deviation else 0.0
        abnormal = self.warmed_up and abs(residual) > self._band * deviation
        if not abnormal:
            level_prev = self._level
            self._level = self._alpha * (value - self._season[idx]) + (
                1 - self._alpha
            ) * (self._level + self._trend)
            self._trend = self._beta * (self._level - level_prev) + (
                1 - self._beta
            ) * self._trend
            self._season[idx] = self._gamma_season * (value - self._level) + (
                1 - self._gamma_season
            ) * self._season[idx]
            self._deviation = self._gamma_dev * abs(residual) + (
                1 - self._gamma_dev
            ) * self._deviation
        return Detection(
            abnormal=abnormal, forecast=forecast, residual=residual, score=score
        )

    def reset(self) -> None:
        super().reset()
        self._history = []
        self._season = None
        self._level = 0.0
        self._trend = 0.0
        self._deviation = 0.0
