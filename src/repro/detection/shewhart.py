"""Shewhart control chart over a sliding window.

The classical X-chart: a sample is abnormal when it departs from the mean
of a recent window by more than ``nsigma`` window standard deviations.
Less sensitive to small persistent shifts than CUSUM but robust and
assumption-light; included as the standard baseline control chart.
"""

from __future__ import annotations

import collections
import math

from repro.core.errors import ConfigurationError
from repro.detection.base import Detection, Detector

__all__ = ["ShewhartDetector"]


class ShewhartDetector(Detector):
    """Windowed X-chart detector.

    Parameters
    ----------
    window:
        Number of recent *normal* samples the chart statistics are
        computed over.
    nsigma:
        Control band width in window standard deviations.
    min_std:
        Variance floor (flat windows would otherwise flag everything).
    """

    def __init__(
        self,
        window: int = 20,
        nsigma: float = 3.5,
        *,
        min_std: float = 1e-3,
        warmup: int = 5,
    ) -> None:
        super().__init__(warmup=warmup)
        if window < 2:
            raise ConfigurationError(f"window must be >= 2, got {window!r}")
        if nsigma <= 0:
            raise ConfigurationError(f"nsigma must be positive, got {nsigma!r}")
        self._window: collections.deque = collections.deque(maxlen=window)
        self._nsigma = nsigma
        self._min_std = min_std

    def _update(self, value: float) -> Detection:
        if len(self._window) < 2:
            self._window.append(value)
            return Detection(abnormal=False)
        mean = sum(self._window) / len(self._window)
        # Square by multiplication, not ``** 2``: libm pow(x, 2.0) is not
        # correctly rounded on every platform, and the vectorized bank
        # (detection/banks.py) must be bit-exact with this recurrence.
        var = sum((x - mean) * (x - mean) for x in self._window) / len(self._window)
        std = max(math.sqrt(var), self._min_std)
        residual = value - mean
        score = abs(residual) / std
        abnormal = self.warmed_up and score > self._nsigma
        if not abnormal:
            self._window.append(value)
        return Detection(
            abnormal=abnormal, forecast=mean, residual=residual, score=score
        )

    def reset(self) -> None:
        super().reset()
        self._window.clear()
