"""Shared inter-process primitives: shm rings, planes, worker handles.

Before the process topology, the shared-memory snapshot ring and the
worker supervision helpers lived as private names inside
:mod:`repro.engine.backends` and were imported cross-module from there
(the sharded topology's halo exchange reached into ``_SnapshotRing``).
This module promotes them to public, engine-independent primitives:

* :class:`SnapshotRing` — the double-buffered shared-memory publication
  ring (two alternating *cur* slots plus a *prev* fallback; one
  ``(n, d)`` copy per steady-state publish);
* :class:`WorkerHandle` plus :func:`shutdown_worker` /
  :func:`shutdown_workers` — one long-lived worker process, its duplex
  pipe, and the sentinel→join→close teardown protocol;
* :func:`shm_unregister` — detach an attachment from the
  ``multiprocessing`` resource tracker (spawn-context workers, and
  child-created segments whose lifecycle the parent owns);
* :class:`ShmPlanes` — one shared-memory segment laid out as named
  columnar arrays with a small int64 header, the backing the
  :class:`~repro.online.store.DeviceStateStore` uses to keep a shard
  partition alive across worker kills;
* :class:`SegmentReader` — a cached attach-by-name reader with the
  stale-segment eviction / zombie-retry discipline the pool workers
  pioneered.

:mod:`repro.engine.backends` re-exports the old private names
(``_SnapshotRing``, ``_PoolWorker``, ``_shm_unregister``,
``_shutdown_worker``, ``_shutdown_workers``) as deprecated aliases.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass, field
from multiprocessing import shared_memory
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "SegmentReader",
    "ShardDeadError",
    "ShardRoundtripError",
    "ShardTimeoutError",
    "ShmPlanes",
    "SnapshotRing",
    "StaleHaloError",
    "WorkerHandle",
    "reap_worker",
    "shm_unregister",
    "shutdown_worker",
    "shutdown_workers",
    "signal_worker_shutdown",
    "unlink_by_name",
]


class ShardRoundtripError(RuntimeError):
    """A supervised shard-process roundtrip failed (dead or hung child)."""


class ShardDeadError(ShardRoundtripError):
    """The shard worker process died mid-roundtrip (EOF on its pipe)."""


class ShardTimeoutError(ShardRoundtripError):
    """The shard worker missed its dispatch deadline (hung or stalled)."""


class StaleHaloError(RuntimeError):
    """A seq-gated halo band read observed the wrong publication sequence.

    Raised when a consumer's copy of a peer's halo band cannot be
    attributed to the tick it is characterizing — either the publisher
    has not caught up (the gate spins, then gives up) or it ran ahead
    and overwrote the band mid-copy (checked again *after* the copy).
    Either way the band copy is discarded, never used.
    """


def shm_unregister(name: str) -> None:
    """Detach a shared-memory attachment from the resource tracker.

    Two callers need this.  *Spawn*-context workers run their own
    resource tracker: attaching registers the parent-owned segment
    there, and the tracker would "clean up" (unlink!) the segment when
    the worker exits.  And a *fork*-context child that **creates** a
    segment whose lifecycle the parent owns (a shard worker's store
    planes, which must survive the child being killed) registers it in
    the shared tracker, which would warn about — and unlink — the
    "leak" at interpreter exit even though the parent cleans up by
    name.  Best-effort: tracker internals vary across Python versions.
    """
    try:  # pragma: no cover - depends on interpreter internals
        from multiprocessing import resource_tracker

        resource_tracker.unregister(f"/{name}", "shared_memory")
    except Exception:
        pass


def unlink_by_name(name: str) -> bool:
    """Best-effort attach-and-unlink of a segment only known by name.

    The parent-side cleanup path for segments created inside worker
    processes (store planes, halo rings): after a clean worker shutdown
    the segment is already gone and this is a no-op; after a kill it is
    the only remaining owner.  Returns whether a segment was removed.
    """
    try:
        seg = shared_memory.SharedMemory(name=name)
    except (FileNotFoundError, OSError):
        return False
    try:
        seg.close()
        seg.unlink()
    except (OSError, FileNotFoundError):  # pragma: no cover - races
        return False
    return True


@dataclass
class WorkerHandle:
    """One persistent worker process and its duplex pipe.

    ``last_seq`` is the sequence number of the last task this worker
    completed; pools whose carried state is only valid one step deep
    (the engine pool's motion-cache carry) gate reuse on it.
    """

    process: multiprocessing.process.BaseProcess
    conn: object
    tasks_done: int = 0
    last_seq: Optional[int] = None


def signal_worker_shutdown(worker: WorkerHandle) -> None:
    """Send the shutdown sentinel (half of :func:`shutdown_worker`)."""
    try:
        worker.conn.send(None)
    except (OSError, ValueError, BrokenPipeError):
        pass


def reap_worker(worker: WorkerHandle) -> None:
    """Join (terminating if stuck) and drop the pipe."""
    worker.process.join(timeout=2.0)
    if worker.process.is_alive():  # pragma: no cover - stuck worker
        worker.process.terminate()
        worker.process.join(timeout=2.0)
    try:
        worker.conn.close()
    except OSError:  # pragma: no cover - already closed
        pass


def shutdown_worker(worker: WorkerHandle) -> None:
    """The one worker-shutdown protocol: sentinel, join, close pipe."""
    signal_worker_shutdown(worker)
    reap_worker(worker)


def shutdown_workers(workers: List[WorkerHandle]) -> None:
    """Two-phase sweep: broadcast sentinels first so workers wind down
    concurrently, then join/terminate each."""
    for worker in workers:
        signal_worker_shutdown(worker)
    for worker in workers:
        reap_worker(worker)


@dataclass
class SnapshotRing:
    """Double-buffered shared-memory ring for snapshot publication.

    Three segments: two *cur* slots written alternately plus one *prev*
    fallback.  The protocol exploits transition chaining — tick
    ``k+1``'s ``prev`` array is, by object identity, the exact array
    published as tick ``k``'s ``cur``:

    * **hot publish** (identity holds and the array is frozen read-only):
      the ``prev`` side is already resident in the slot written last run,
      so only ``cur`` is copied, into the *other* slot.  One ``(n, d)``
      copy per steady-state tick.
    * **cold publish** (first run, chain broken, or a mutable prev): both
      endpoints are copied — ``prev`` into the fallback segment, ``cur``
      into the next slot — and the chain restarts.

    The alternation guarantees the previous run's ``cur`` slot survives
    exactly one more run; readers' sequence gates are calibrated to that
    lifetime.  ``last_cur`` is compared by ``is`` only, never
    dereferenced — holding the reference also keeps the object from
    being recycled at the same address.

    ``auto_unregister`` makes every created segment deregister from the
    resource tracker immediately — only for rings created under a
    *spawn*-context tracker that must not auto-clean them.  Fork-context
    children share the parent's tracker (registration is a set, unlink
    unregisters), so the default is to leave tracking alone.
    """

    slots: List[Optional[shared_memory.SharedMemory]] = field(
        default_factory=lambda: [None, None]
    )
    prev_seg: Optional[shared_memory.SharedMemory] = None
    capacity: int = 0
    last_cur: Optional[np.ndarray] = None
    last_slot: int = 0
    auto_unregister: bool = False

    def segment_names(self) -> Tuple[str, ...]:
        """Names of every live segment (shipped so readers evict strays)."""
        return tuple(
            seg.name
            for seg in (*self.slots, self.prev_seg)
            if seg is not None
        )

    def _create(self, capacity: int) -> shared_memory.SharedMemory:
        seg = shared_memory.SharedMemory(create=True, size=capacity)
        if self.auto_unregister:
            shm_unregister(seg.name)
        return seg

    def reallocate(self, capacity: int) -> None:
        """Recreate all segments at ``capacity`` bytes; breaks the chain."""
        self.drop_segments()
        self.slots = [self._create(capacity), self._create(capacity)]
        self.prev_seg = self._create(capacity)
        self.capacity = capacity
        self.last_cur = None
        self.last_slot = 0

    def publish(self, transition) -> Tuple[str, str]:
        """Write one transition's snapshots; return ``(prev, cur)`` names."""
        return self.publish_pair(
            transition.previous.positions, transition.current.positions
        )

    def publish_pair(
        self, prev_pos: np.ndarray, cur_pos: np.ndarray
    ) -> Tuple[str, str]:
        """Write one raw ``(prev, cur)`` snapshot pair; return segment names.

        The transition-free entry point: the sharded topology's halo
        exchange publishes boundary-ring rows through the same
        double-buffered protocol without materializing a
        :class:`~repro.core.transition.Transition` first.  The hot path
        (one copy per steady-state publish) triggers whenever ``prev``
        is, by object identity, the frozen array published as the last
        call's ``cur``.
        """
        needed = prev_pos.size * 8
        if self.prev_seg is None or self.capacity < needed:
            # Geometric growth: a regrow renames every segment and makes
            # each reader re-attach, so a monotonically growing
            # population must not pay that on every run.
            self.reallocate(max(needed, 2 * self.capacity, 1))
        count = prev_pos.size
        hot = self.last_cur is prev_pos and not prev_pos.flags.writeable
        if hot:
            prev_seg = self.slots[self.last_slot]
            cur_slot = 1 - self.last_slot
        else:
            prev_seg = self.prev_seg
            np.copyto(
                np.frombuffer(prev_seg.buf, dtype=np.float64, count=count),
                prev_pos.ravel(),
            )
            cur_slot = 1 - self.last_slot
        cur_seg = self.slots[cur_slot]
        np.copyto(
            np.frombuffer(cur_seg.buf, dtype=np.float64, count=count),
            cur_pos.ravel(),
        )
        self.last_cur = cur_pos
        self.last_slot = cur_slot
        return prev_seg.name, cur_seg.name

    def drop_segments(self) -> None:
        """Close and unlink every segment (idempotent)."""
        for seg in (*self.slots, self.prev_seg):
            if seg is not None:
                try:
                    seg.close()
                    seg.unlink()
                except (OSError, FileNotFoundError):  # pragma: no cover
                    pass
        self.slots = [None, None]
        self.prev_seg = None
        self.capacity = 0
        self.last_cur = None
        self.last_slot = 0


# Column layout element: (name, dtype, per-row shape) — () for scalars.
_Field = Tuple[str, np.dtype, Tuple[int, ...]]


def _field_nbytes(capacity: int, dtype: np.dtype, shape: Tuple[int, ...]) -> int:
    per_row = int(np.dtype(dtype).itemsize)
    for s in shape:
        per_row *= int(s)
    return capacity * per_row


class ShmPlanes:
    """One shared-memory segment laid out as named columnar arrays.

    The layout is ``header`` (a small int64 vector for mutable scalars
    like the used-row count and tick serial) followed by each field's
    ``(capacity, *shape)`` block, every block aligned to 8 bytes.  Both
    sides — creator and attacher — derive identical offsets from the
    same ``(capacity, fields)`` description, so the only things that
    must travel out of band are the segment name and the capacity.

    Creator and attachers in a fork world share one resource tracker
    whose per-name registration is a set, so create/attach/unlink pair
    up without manual tracking; ``unregister=True`` exists for
    spawn-context processes whose private tracker would unlink the
    segment at their exit.
    """

    HEADER_SLOTS = 8

    def __init__(
        self,
        seg: shared_memory.SharedMemory,
        capacity: int,
        fields: Sequence[_Field],
        *,
        owner: bool,
    ) -> None:
        self._seg = seg
        self.capacity = int(capacity)
        self._fields = tuple(fields)
        self._owner = owner
        self.header = np.frombuffer(
            seg.buf, dtype=np.int64, count=self.HEADER_SLOTS
        )
        self.arrays: Dict[str, np.ndarray] = {}
        offset = self.HEADER_SLOTS * 8
        for name, dtype, shape in self._fields:
            nbytes = _field_nbytes(self.capacity, dtype, shape)
            count = nbytes // np.dtype(dtype).itemsize
            arr = np.frombuffer(
                seg.buf, dtype=dtype, count=count, offset=offset
            )
            self.arrays[name] = arr.reshape((self.capacity, *shape))
            offset += (nbytes + 7) & ~7

    @classmethod
    def required_bytes(cls, capacity: int, fields: Sequence[_Field]) -> int:
        total = cls.HEADER_SLOTS * 8
        for _, dtype, shape in fields:
            total += (_field_nbytes(capacity, dtype, shape) + 7) & ~7
        return total

    @classmethod
    def create(
        cls,
        capacity: int,
        fields: Sequence[_Field],
        *,
        unregister: bool = False,
    ) -> "ShmPlanes":
        seg = shared_memory.SharedMemory(
            create=True, size=cls.required_bytes(capacity, fields)
        )
        if unregister:
            shm_unregister(seg.name)
        planes = cls(seg, capacity, fields, owner=True)
        planes.header[:] = 0
        return planes

    @classmethod
    def attach(
        cls,
        name: str,
        capacity: int,
        fields: Sequence[_Field],
        *,
        unregister: bool = False,
    ) -> "ShmPlanes":
        seg = shared_memory.SharedMemory(name=name)
        if unregister:
            shm_unregister(name)
        return cls(seg, capacity, fields, owner=False)

    @property
    def name(self) -> str:
        """The segment name (ship with ``capacity`` to re-attach)."""
        return self._seg.name

    def close(self) -> None:
        """Drop this attachment (views must be released first)."""
        self.header = None
        self.arrays = {}
        try:
            self._seg.close()
        except (OSError, BufferError):  # pragma: no cover - views alive
            pass

    def unlink(self) -> None:
        """Close and remove the segment (idempotent, best-effort)."""
        self.close()
        try:
            self._seg.unlink()
        except (OSError, FileNotFoundError):  # pragma: no cover - gone
            pass


class SegmentReader:
    """Cached attach-by-name over foreign shared-memory segments.

    Cross-process readers (a shard worker copying peer halo bands)
    attach segments lazily and keep them mapped across ticks; producers
    regrow under *new* names, so the caller passes the currently-live
    name set and everything else is evicted.  A close still blocked by
    an exported buffer parks the segment on a zombie list for a later
    retry — the same discipline the engine pool workers use.
    """

    def __init__(self, *, unregister: bool = False) -> None:
        self._segments: Dict[str, shared_memory.SharedMemory] = {}
        self._zombies: List[shared_memory.SharedMemory] = []
        self._unregister = unregister

    def evict_except(self, keep: Sequence[str]) -> None:
        """Drop every cached segment not in ``keep``; retry zombies."""
        keep_set = set(keep)
        for name in [n for n in self._segments if n not in keep_set]:
            seg = self._segments.pop(name)
            try:
                seg.close()
            except BufferError:  # pragma: no cover - view alive
                self._zombies.append(seg)
            except OSError:  # pragma: no cover - already gone
                pass
        if self._zombies:
            remaining = []
            for seg in self._zombies:
                try:
                    seg.close()
                except BufferError:  # pragma: no cover
                    remaining.append(seg)
                except OSError:  # pragma: no cover
                    pass
            self._zombies = remaining

    def array(
        self,
        name: str,
        dtype: np.dtype,
        count: int,
        *,
        offset: int = 0,
    ) -> np.ndarray:
        """A read-only view into segment ``name`` (attached on demand)."""
        seg = self._segments.get(name)
        if seg is None:
            seg = shared_memory.SharedMemory(name=name)
            if self._unregister:
                shm_unregister(name)
            self._segments[name] = seg
        arr = np.frombuffer(seg.buf, dtype=dtype, count=count, offset=offset)
        arr.flags.writeable = False
        return arr

    def close(self) -> None:
        for seg in self._segments.values():
            try:
                seg.close()
            except (OSError, BufferError):  # pragma: no cover
                pass
        self._segments = {}
        self._zombies = []
