"""Exception hierarchy for the :mod:`repro` library.

All exceptions raised deliberately by the library derive from
:class:`ReproError`, so callers can catch library failures without also
swallowing programming errors (``TypeError``, ``KeyError``, ...).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class ConfigurationError(ReproError):
    """A parameter is outside the domain the paper's model allows.

    Examples: a consistency radius ``r`` outside ``[0, 1/4)``, a density
    threshold ``tau`` outside ``[1, n - 1]``, or a QoS coordinate outside
    the unit cube.
    """


class DimensionMismatchError(ReproError):
    """Two point collections that must share a dimension do not."""


class UnknownDeviceError(ReproError):
    """A device identifier is not part of the system state."""


class PartitionError(ReproError):
    """A candidate partition violates Definition 6 of the paper."""


class SearchBudgetExceeded(ReproError):
    """An exhaustive search (oracle or Theorem 7) hit its safety budget.

    The necessary-and-sufficient condition of Theorem 7 explores a number
    of collections that grows combinatorially (Table III in the paper
    reports ~2.45e6 collections per unresolved device).  Callers may bound
    that exploration; exceeding the bound raises this exception instead of
    silently returning a wrong answer.
    """


class TraceFormatError(ReproError):
    """A serialized trace or result file could not be parsed."""


class QueueFullError(ReproError):
    """A bounded ingest queue refused an event.

    Raised by the online characterization service when its queue is at
    capacity and the configured backpressure policy is ``"error"`` (the
    ``"block"`` and ``"drop-oldest"`` policies resolve the overflow
    themselves).
    """


class PoolError(ReproError, RuntimeError):
    """A worker-pool dispatch failed permanently.

    Subclasses :class:`RuntimeError` for compatibility with callers that
    predate the supervised pool.  ``worker_traceback`` carries the last
    traceback a worker reported before the failure, so pool teardown
    (close, atexit sweep) can never mask the root cause.
    """

    def __init__(self, message: str, worker_traceback: "str | None" = None):
        super().__init__(message)
        self.worker_traceback = worker_traceback


class CheckpointError(ReproError):
    """A service checkpoint is missing, corrupt, or version-incompatible."""
