"""Local characterization of anomalies (Algorithms 3–5 of the paper).

Given a transition and a flagged device ``j``, decide whether ``j`` belongs
to ``I_k`` (isolated in every admissible anomaly partition), ``M_k``
(massive in every one), or ``U_k`` (unresolved), using only trajectories
within ``4r`` of ``j``:

1. **Theorem 5** (exact, cheap): ``Wbar_k(j) = {}  <=>  j in I_k``.
2. **Theorem 6** (sufficient, cheap): some maximal dense motion of ``j``
   keeps more than ``tau`` members inside ``J_k(j)``  ``=>  j in M_k``.
3. **Theorem 7 / Corollary 8** (exact, expensive): ``j in M_k`` iff *no*
   collection of pairwise-disjoint dense motions of ``L_k(j)`` members can
   simultaneously starve every dense motion of ``j`` (Relation 4) without
   re-admitting ``j`` (Relation 5).  A collection achieving both is a
   *counterexample* and certifies ``j in U_k``.

The Theorem 7 search is implemented as a pruned depth-first search for a
counterexample; Section "Algorithmic notes" of DESIGN.md records the
derivations it relies on:

* Relation (4) holds for a collection ``C`` iff some maximal dense motion
  ``M`` of ``j`` satisfies ``|M \\ union(C)| > tau`` (any dense motion of
  ``j`` inside ``D_k(j) \\ union(C)`` extends to a maximal one and
  conversely any surviving chunk of a maximal one of size ``> tau`` is
  itself a dense motion of ``j`` avoiding ``union(C)``);
* Relation (5) holds for ``C`` iff some ``B in C`` has ``B | {j}``
  r-consistent at both times (density is automatic since ``|B| > tau``).

**Candidate pool.**  The theorem draws collection members from
``W_k(l)`` — *all* tau-dense motions of ``L_k(j)`` members avoiding
``j``, not only maximal ones (a dense block of a partition, e.g. a pair
``{x, y}`` inside a larger maximal motion, need not be maximal).  The
implementation therefore enumerates every dense sub-motion ``B`` of the
``4r`` knowledge ball of ``j`` subject to three WLOG filters, each of
which preserves at least one counterexample whenever one exists:

* ``j not in B`` and ``B | {j}`` inconsistent — a collection containing a
  ``B`` consistent with ``j`` satisfies Relation (5) outright and is not
  a counterexample, so such ``B`` can never be needed;
* ``B`` intersects ``D_k(j)`` — Relation (4) only reads
  ``union(C) & D_k(j)``, and dropping a non-intersecting ``B`` keeps both
  relations failing;
* ``B`` lies inside the ``4r`` ball — any qualifying ``B`` touches
  ``D_k(j)`` (within ``2r`` of ``j``) and is itself ``2r``-bounded.

The membership requirement "``B in W_k(l)`` for some ``l in L_k(j)``" is
implied: if every member of ``B & D_k(j)`` were in ``J_k(j)``, extending
``B`` to a maximal dense motion would capture ``j`` and make
``B | {j}`` consistent, contradicting the first filter.

The search memoizes visited unions and counts every collection it
examines, feeding the Table III cost columns.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.bitset import LocalUniverse, iter_bits, popcount, resolve_kernel
from repro.core.errors import (
    ConfigurationError,
    SearchBudgetExceeded,
    UnknownDeviceError,
)
from repro.core.motions import enumerate_maximal_motions
from repro.core.neighborhood import (
    MotionCache,
    NeighborhoodSplit,
    split_masks,
    split_neighborhood,
)
from repro.core.transition import Transition
from repro.core.types import (
    AnomalyType,
    Characterization,
    CostCounters,
    DecisionRule,
)

__all__ = ["Characterizer", "characterize_transition", "classify_sets"]

Motion = FrozenSet[int]


class _CollectionSearch:
    """DFS for a Theorem 7 counterexample collection.

    State: the set of chosen candidate motions (pairwise disjoint, all
    avoiding ``j``) and their union.  A state is a *counterexample* when
    every maximal dense motion of ``j`` has at most ``tau`` members outside
    the union.  Three prunings keep the search far below the raw
    collection count (compare the two rightmost columns of Table III):

    * branching targets the *most constrained* still-violating motion
      (fewest usable candidates), and only candidates intersecting it;
    * *coverability*: a node is dead when some violating motion cannot be
      starved below ``tau + 1`` even by taking every remaining usable
      candidate;
    * visited unions are memoized (different choice orders reaching the
      same union are explored once).
    """

    def __init__(
        self,
        dense_of_j: Sequence[Motion],
        candidates: Sequence[Motion],
        tau: int,
        budget: Optional[int],
    ) -> None:
        self._dense_of_j = list(dense_of_j)
        self._candidates = list(candidates)
        self._tau = tau
        self._budget = budget
        self._visited: Set[FrozenSet[int]] = set()
        self.tested = 0
        self.work = 0

    def find_counterexample(self) -> Optional[Tuple[Motion, ...]]:
        """Return a counterexample collection, or None if none exists."""
        return self._dfs((), frozenset())

    def _charge(self) -> None:
        # Each node costs roughly one pass over the candidate pool, so the
        # budget is enforced in *work units* (candidate inspections), not
        # raw node counts — a node with a 10k-candidate pool is 10k times
        # more expensive than one with a single candidate and must count
        # accordingly for the bound to mean anything.
        self.tested += 1
        self.work += max(1, len(self._candidates))
        if self._budget is not None and self.work > self._budget:
            raise SearchBudgetExceeded(
                f"Theorem 7 search exceeded its budget of {self._budget} "
                "candidate inspections"
            )

    def _dfs(
        self, chosen: Tuple[Motion, ...], union: FrozenSet[int]
    ) -> Optional[Tuple[Motion, ...]]:
        key = frozenset(union)
        if key in self._visited:
            return None
        self._visited.add(key)
        self._charge()
        usable = [cand for cand in self._candidates if not cand & union]
        # Find all violating motions; prune on coverability; branch on the
        # one with the fewest helpers.
        best_helpers: Optional[List[Motion]] = None
        best_remainder: Optional[FrozenSet[int]] = None
        for motion in self._dense_of_j:
            remainder = motion - union
            if len(remainder) <= self._tau:
                continue
            helpers = [cand for cand in usable if cand & remainder]
            coverable: Set[int] = set()
            for cand in helpers:
                coverable |= cand & remainder
            if len(remainder) - len(coverable & remainder) > self._tau:
                return None  # this motion can never be starved from here
            if best_helpers is None or len(helpers) < len(best_helpers):
                best_helpers = helpers
                best_remainder = remainder
        if best_helpers is None:
            return chosen  # Relations 4 and 5 both fail: counterexample.
        assert best_remainder is not None
        # Try candidates that bite off the most of the remainder first.
        best_helpers.sort(key=lambda cand: -len(cand & best_remainder))
        for cand in best_helpers:
            hit = self._dfs(chosen + (cand,), union | cand)
            if hit is not None:
                return hit
        return None


class _MaskCollectionSearch:
    """Bitmask kernel of :class:`_CollectionSearch`.

    Same DFS, same prunings, same budget accounting — but states are
    ``int`` masks over the device's :class:`LocalUniverse`: disjointness
    is one AND, starvation remainders are ``motion & ~union`` popcounts,
    and the visited-union memo keys are the union ints themselves.
    Candidate iteration order matches the set kernel (both receive the
    canonically sorted pool and use stable sorts), so ``tested`` /
    ``work`` counters and the returned counterexample are identical.
    """

    def __init__(
        self,
        dense_of_j: Sequence[int],
        candidates: Sequence[int],
        tau: int,
        budget: Optional[int],
    ) -> None:
        self._dense_of_j = list(dense_of_j)
        self._candidates = list(candidates)
        self._tau = tau
        self._budget = budget
        self._visited: Set[int] = set()
        self.tested = 0
        self.work = 0

    def find_counterexample(self) -> Optional[Tuple[int, ...]]:
        """Return a counterexample collection (masks), or None."""
        return self._dfs((), 0)

    def _charge(self) -> None:
        self.tested += 1
        self.work += max(1, len(self._candidates))
        if self._budget is not None and self.work > self._budget:
            raise SearchBudgetExceeded(
                f"Theorem 7 search exceeded its budget of {self._budget} "
                "candidate inspections"
            )

    def _dfs(
        self, chosen: Tuple[int, ...], union: int
    ) -> Optional[Tuple[int, ...]]:
        if union in self._visited:
            return None
        self._visited.add(union)
        self._charge()
        not_union = ~union
        usable = [cand for cand in self._candidates if not cand & union]
        best_helpers: Optional[List[int]] = None
        best_remainder = 0
        for motion in self._dense_of_j:
            remainder = motion & not_union
            if popcount(remainder) <= self._tau:
                continue
            helpers = [cand for cand in usable if cand & remainder]
            coverable = 0
            for cand in helpers:
                coverable |= cand & remainder
            if popcount(remainder & ~coverable) > self._tau:
                return None  # this motion can never be starved from here
            if best_helpers is None or len(helpers) < len(best_helpers):
                best_helpers = helpers
                best_remainder = remainder
        if best_helpers is None:
            return chosen  # Relations 4 and 5 both fail: counterexample.
        best_helpers.sort(key=lambda cand: -popcount(cand & best_remainder))
        for cand in best_helpers:
            hit = self._dfs(chosen + (cand,), union | cand)
            if hit is not None:
                return hit
        return None


def _count_collections(candidates: Sequence[Motion], cap: Optional[int] = None) -> int:
    """Count all pairwise-disjoint sub-collections of ``candidates``.

    This is the paper's "all the collections of dense motions containing
    the devices in ``L_k(j)``" (fourth column of Table III).  The empty
    collection is counted.  ``cap`` bounds the count to keep the Table III
    experiment from running forever on adversarial inputs.

    Candidates are compiled to integer bitmasks (one bit per device that
    appears in any candidate) so the disjointness test inside the
    exponential recursion is a single AND.
    """
    cands = list(candidates)
    devices = sorted({device for cand in cands for device in cand})
    bit_of = {device: 1 << i for i, device in enumerate(devices)}
    masks: List[int] = []
    for cand in cands:
        mask = 0
        for device in cand:
            mask |= bit_of[device]
        masks.append(mask)
    total = 0

    def rec(start: int, union: int) -> bool:
        nonlocal total
        total += 1
        if cap is not None and total >= cap:
            return False
        for i in range(start, len(masks)):
            if masks[i] & union:
                continue
            if not rec(i + 1, union | masks[i]):
                return False
        return True

    rec(0, 0)
    return total


#: Largest maximal-motion size whose subset enumeration runs vectorized;
#: above it (rare, adversarial — the default ``pool_cap`` allows up to
#: 2^22 subsets) a per-subset loop bounds memory at the cost of speed.
_VEC_SUBSET_LIMIT = 17

#: Per-size cache of (all local masks, their popcounts); keyed by member
#: count so repeated motions of the same size pay the setup once.
_SUBSET_TABLES: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}


def _subset_tables(m: int) -> Tuple[np.ndarray, np.ndarray]:
    """All ``2^m`` local masks with popcounts (portable across NumPy)."""
    cached = _SUBSET_TABLES.get(m)
    if cached is None:
        masks_idx = np.arange(1 << m, dtype=np.int64)
        counts = np.zeros(1 << m, dtype=np.uint8)
        for bit in range(m):
            counts[(masks_idx >> bit) & 1 == 1] += 1
        cached = _SUBSET_TABLES[m] = (masks_idx, counts)
    return cached


def _qualifying_subsets_vectorized(
    transition: Transition,
    device: int,
    members: Sequence[int],
    member_bits: Sequence[int],
    d_mask: int,
) -> List[int]:
    """All Theorem 7 candidate subsets of one maximal motion, as masks.

    Every subset ``B`` enumerated here sits inside one maximal motion,
    whose combined bounding box already fits a ``2r`` window (up to the
    enumerator's ``atol``).  Under that premise, ``B ∪ {j}``'s box
    exceeds ``2r`` iff some *single member* of ``B`` is more than ``2r``
    away from ``j`` in some combined dimension — the box of ``B`` alone
    can never blow the budget.  Consistency-with-``j`` therefore
    collapses from a per-subset bounding box to a per-*member* flag, and
    the three pool filters become three vectorized mask tests over all
    ``2^m`` local subset masks at once: popcount ``> tau`` (16-bit
    lookup table), ``mask & D_local != 0`` and ``mask & bad_local != 0``.
    """
    tau = transition.tau
    m = len(members)
    masks_idx, counts = _subset_tables(m)
    # Local image of D_k(j): which member indices lie in the dense
    # neighbourhood (subset ∩ D ≠ ∅ is then a single AND).
    d_local = 0
    for i, bit in enumerate(member_bits):
        if bit & d_mask:
            d_local |= 1 << i
    if not d_local:
        return []
    # Members whose combined Chebyshev distance to j exceeds the 2r
    # window (with the same atol as ``is_consistent_motion``): any
    # subset containing one is inconsistent with j, and only those.
    pts = transition.combined_of(list(members))
    jpt = transition.combined_of([device])[0]
    bad = np.abs(pts - jpt).max(axis=1) > 2.0 * transition.r + 1e-12
    bad_local = 0
    for i in np.flatnonzero(bad):
        bad_local |= 1 << int(i)
    if not bad_local:
        return []
    keep = (counts > tau) & ((masks_idx & d_local) != 0)
    keep &= (masks_idx & bad_local) != 0
    survivors = np.flatnonzero(keep)
    if len(survivors) == 0:
        return []
    if max(member_bits) <= 1 << 62:
        # Universe bits fit a machine word: decode every survivor's
        # universe mask in one matmul against the member-bit vector.
        bits_arr = np.asarray(member_bits, dtype=np.int64)
        sel = (survivors[:, None] >> np.arange(m, dtype=np.int64)) & 1
        return (sel @ bits_arr).tolist()
    out: List[int] = []
    for local in survivors:
        um = 0
        rest = int(local)
        while rest:
            low = rest & -rest
            um |= member_bits[low.bit_length() - 1]
            rest ^= low
        out.append(um)
    return out


class Characterizer:
    """Characterize flagged devices of one transition (Algorithm 3/4).

    Parameters
    ----------
    transition:
        The interval ``[k-1, k]`` under analysis.
    full_nsc:
        When true (default), devices that Theorem 6 cannot settle run the
        Theorem 7 / Corollary 8 exact search (Algorithm 4).  When false,
        they are reported unresolved with rule ``ALGORITHM_3`` — the cheap
        mode whose accuracy Table II quantifies (it misses ~0.4% of
        massive devices).
    collection_budget:
        Optional bound on the Theorem 7 search *work* per device, counted
        in candidate inspections (each search node costs one pass over
        the candidate pool); exceeding it raises
        :class:`~repro.core.errors.SearchBudgetExceeded`.
    count_all_collections:
        When true, also count *all* admissible collections per device
        (Table III's last column).  Off by default: the count can be
        astronomically larger than the number of tested collections.
    collection_count_cap:
        Cap for the exhaustive collection count.
    pool_cap:
        Cap on the Theorem 7 candidate-pool size (and on the subset
        enumeration of any single maximal motion).  The pool is tiny in
        the paper's operating regime (the ``4r`` ball holds a handful of
        flagged devices); the cap guards adversarial inputs.
    budget_fallback:
        When true, a device whose exact search exceeds ``collection_budget``
        or ``pool_cap`` is reported *unresolved* with rule ``ALGORITHM_3``
        (an explicit "undecided") instead of raising
        :class:`SearchBudgetExceeded`.  Sound but incomplete — identical
        in spirit to stopping at the Theorem 6 fast path — and the right
        choice for long unattended sweeps.
    cache:
        Optional externally-owned :class:`MotionCache` to use instead of a
        private one.  The engine layer passes a cache it keeps alive for
        the whole transition, so several characterizer instances (or
        repeated subset passes) share motion families.  Must be bound to
        ``transition``.
    kernel:
        Set-algebra representation of the verdict hot path:
        ``"bitset"`` (default) runs window enumeration, the neighbourhood
        split, the candidate pool and the Theorem 7 DFS on integer
        bitmasks over a per-device :class:`LocalUniverse`;
        ``"frozenset"`` is the original representation, kept as the
        equivalence and benchmark baseline.  Verdicts, witnesses and
        cost counters are identical either way.
    """

    def __init__(
        self,
        transition: Transition,
        *,
        full_nsc: bool = True,
        collection_budget: Optional[int] = None,
        count_all_collections: bool = False,
        collection_count_cap: Optional[int] = 10_000_000,
        pool_cap: Optional[int] = 1 << 22,
        budget_fallback: bool = False,
        cache: Optional[MotionCache] = None,
        kernel: Optional[str] = None,
    ) -> None:
        self._transition = transition
        self._full_nsc = full_nsc
        self._budget = collection_budget
        self._count_all = count_all_collections
        self._count_cap = collection_count_cap
        self._pool_cap = pool_cap
        self._budget_fallback = budget_fallback
        self._kernel = resolve_kernel(kernel)
        if cache is not None and cache.transition is not transition:
            raise ConfigurationError(
                "shared MotionCache is bound to a different transition"
            )
        self._cache = (
            cache
            if cache is not None
            else MotionCache(transition, kernel=self._kernel)
        )

    @property
    def transition(self) -> Transition:
        """The transition being characterized."""
        return self._transition

    @property
    def cache(self) -> MotionCache:
        """The shared motion-family cache (exposed for instrumentation)."""
        return self._cache

    @property
    def kernel(self) -> str:
        """The set-algebra kernel the verdict hot path runs on."""
        return self._kernel

    # ------------------------------------------------------------------
    def characterize(self, device: int) -> Characterization:
        """Classify one flagged device (Algorithm 3, optionally 4)."""
        if device not in self._transition.flagged:
            raise UnknownDeviceError(
                f"device {device} is not in A_k; only flagged devices are characterized"
            )
        cost = CostCounters()
        family = self._cache.family(device)
        cost.maximal_motions = len(family.motions)
        cost.window_steps = family.window_steps

        # --- Theorem 5: no dense motion => isolated, exactly. ---
        if not family.has_dense_motion:
            return Characterization(
                device=device,
                anomaly_type=AnomalyType.ISOLATED,
                rule=DecisionRule.THEOREM_5,
                cost=cost,
            )

        cost.dense_motions = len(family.dense)
        if self._kernel == "bitset":
            return self._characterize_dense_masks(device, family, cost)
        return self._characterize_dense_sets(device, family, cost)

    def _fallback_or_raise(
        self, device: int, cost: CostCounters, error: SearchBudgetExceeded
    ) -> Characterization:
        """Apply the ``budget_fallback`` policy to a blown search budget."""
        if not self._budget_fallback:
            raise error
        return Characterization(
            device=device,
            anomaly_type=AnomalyType.UNRESOLVED,
            rule=DecisionRule.ALGORITHM_3,
            cost=cost,
        )

    def _characterize_dense_sets(
        self, device: int, family, cost: CostCounters
    ) -> Characterization:
        """Theorems 6/7 on the frozenset baseline representation."""
        before = self._cache.expansions
        split = split_neighborhood(self._cache, device)
        cost.neighbor_expansions = self._cache.expansions - before

        # --- Theorem 6: a dense motion inside J_k(j) => massive. ---
        tau = self._transition.tau
        for motion in family.dense:
            if len(motion & split.always_with_j) > tau:
                return Characterization(
                    device=device,
                    anomaly_type=AnomalyType.MASSIVE,
                    rule=DecisionRule.THEOREM_6,
                    cost=cost,
                    witness=(motion,),
                )

        if not self._full_nsc:
            return Characterization(
                device=device,
                anomaly_type=AnomalyType.UNRESOLVED,
                rule=DecisionRule.ALGORITHM_3,
                cost=cost,
            )

        try:
            return self._characterize_full(device, family.dense, split, cost)
        except SearchBudgetExceeded as exc:
            return self._fallback_or_raise(device, cost, exc)

    def _characterize_dense_masks(
        self, device: int, family, cost: CostCounters
    ) -> Characterization:
        """Theorems 6/7 on bitmasks over the device's local universe."""
        # Seed the universe with the sorted 4r knowledge ball: every set
        # the verdict touches (D_k(j), neighbour families, pool motions)
        # lives inside it, so bit rank order == device id order and
        # canonical sort keys read straight off the bits.
        universe = LocalUniverse(self._transition.knowledge_ball(device))
        before = self._cache.expansions
        d_mask, j_mask, _ = split_masks(self._cache, device, universe)
        cost.neighbor_expansions = self._cache.expansions - before

        # --- Theorem 6: a dense motion inside J_k(j) => massive. ---
        tau = self._transition.tau
        dense_masks = [universe.mask_of(motion) for motion in family.dense]
        for motion, mask in zip(family.dense, dense_masks):
            if popcount(mask & j_mask) > tau:
                return Characterization(
                    device=device,
                    anomaly_type=AnomalyType.MASSIVE,
                    rule=DecisionRule.THEOREM_6,
                    cost=cost,
                    witness=(motion,),
                )

        if not self._full_nsc:
            return Characterization(
                device=device,
                anomaly_type=AnomalyType.UNRESOLVED,
                rule=DecisionRule.ALGORITHM_3,
                cost=cost,
            )

        try:
            return self._characterize_full_masks(
                device, dense_masks, d_mask, universe, cost
            )
        except SearchBudgetExceeded as exc:
            return self._fallback_or_raise(device, cost, exc)

    # ------------------------------------------------------------------
    def _characterize_full(
        self,
        device: int,
        dense_of_j: Sequence[Motion],
        split: NeighborhoodSplit,
        cost: CostCounters,
    ) -> Characterization:
        """Theorem 7 / Corollary 8 exact decision (Algorithms 4–5)."""
        transition = self._transition
        candidates = self._candidate_pool(device, split)
        if self._count_all:
            cost.total_collections = _count_collections(
                candidates, cap=self._count_cap
            )
        search = _CollectionSearch(dense_of_j, candidates, transition.tau, self._budget)
        counterexample = search.find_counterexample()
        cost.tested_collections = search.tested
        if counterexample is None:
            return Characterization(
                device=device,
                anomaly_type=AnomalyType.MASSIVE,
                rule=DecisionRule.THEOREM_7,
                cost=cost,
            )
        return Characterization(
            device=device,
            anomaly_type=AnomalyType.UNRESOLVED,
            rule=DecisionRule.COROLLARY_8,
            cost=cost,
            witness=counterexample,
        )

    def _characterize_full_masks(
        self,
        device: int,
        dense_masks: Sequence[int],
        d_mask: int,
        universe: LocalUniverse,
        cost: CostCounters,
    ) -> Characterization:
        """Theorem 7 / Corollary 8 exact decision on bitmasks."""
        candidates = self._candidate_pool_masks(device, d_mask, universe)
        if self._count_all:
            cost.total_collections = _count_collections(
                [universe.devices_of(c) for c in candidates], cap=self._count_cap
            )
        search = _MaskCollectionSearch(
            dense_masks, candidates, self._transition.tau, self._budget
        )
        counterexample = search.find_counterexample()
        cost.tested_collections = search.tested
        if counterexample is None:
            return Characterization(
                device=device,
                anomaly_type=AnomalyType.MASSIVE,
                rule=DecisionRule.THEOREM_7,
                cost=cost,
            )
        return Characterization(
            device=device,
            anomaly_type=AnomalyType.UNRESOLVED,
            rule=DecisionRule.COROLLARY_8,
            cost=cost,
            witness=tuple(universe.devices_of(c) for c in counterexample),
        )

    def _candidate_pool_masks(
        self, device: int, d_mask: int, universe: LocalUniverse
    ) -> List[int]:
        """Mask twin of :meth:`_candidate_pool`: same sets, same order.

        Subsets of each maximal motion are enumerated as *local* masks
        over the motion's member list; for motions of ≤ 17 members the
        density, ``D_k(j)``-intersection and box-consistency filters run
        vectorized over all ``2^m`` local masks at once (the consistency
        of every ``B ∪ {j}`` via a subset min/max DP), and only the
        survivors are converted to universe masks.
        """
        transition = self._transition
        tau = transition.tau
        region = [x for x in transition.knowledge_ball(device) if x != device]
        if not region:
            return []
        maximal, _ = enumerate_maximal_motions(
            transition, region, kernel=self._kernel
        )
        pool: Set[int] = set()
        for motion in maximal:
            members = sorted(motion)
            m = len(members)
            if m <= tau:
                continue
            if self._pool_cap is not None and (1 << m) > self._pool_cap:
                raise SearchBudgetExceeded(
                    f"candidate pool for device {device} requires enumerating "
                    f"2^{m} subsets of one maximal motion (cap {self._pool_cap})"
                )
            member_bits = [universe.bit(x) for x in members]
            if m <= _VEC_SUBSET_LIMIT:
                survivors = _qualifying_subsets_vectorized(
                    transition, device, members, member_bits, d_mask
                )
            else:  # pragma: no cover - adversarial sizes; guarded by pool_cap
                survivors = self._qualifying_subsets_loop(
                    device, members, member_bits, d_mask, universe
                )
            pool.update(survivors)
            if self._pool_cap is not None and len(pool) > self._pool_cap:
                raise SearchBudgetExceeded(
                    f"candidate pool for device {device} exceeded {self._pool_cap}"
                )
        # Deterministic order matching the frozenset kernel: larger
        # candidates first, ties broken lexicographically on members.
        devs = universe.devices
        if all(devs[i] < devs[i + 1] for i in range(len(devs) - 1)):
            # Bit rank order == device id order (the seeded-ball common
            # case), so lexicographic member order is exactly descending
            # bit-reversed mask order: among equal-popcount masks the
            # lowest differing bit decides, and fixed-width reversal
            # turns that into plain integer comparison.
            width = max(len(devs), 1)
            return sorted(
                pool,
                key=lambda um: (
                    -popcount(um),
                    -int(f"{um:0{width}b}"[::-1], 2),
                ),
            )
        return sorted(  # widened universe: fall back to explicit tuples
            pool,
            key=lambda um: (
                -popcount(um),
                tuple(sorted(devs[i] for i in iter_bits(um))),
            ),
        )

    def _qualifying_subsets_loop(
        self,
        device: int,
        members: Sequence[int],
        member_bits: Sequence[int],
        d_mask: int,
        universe: LocalUniverse,
    ) -> List[int]:
        """Per-subset fallback for motions too large to vectorize."""
        transition = self._transition
        tau = transition.tau
        m = len(members)
        out: List[int] = []
        for local in range(1, 1 << m):
            if popcount(local) <= tau:
                continue
            um = 0
            subset = [device]
            rest = local
            while rest:
                low = rest & -rest
                i = low.bit_length() - 1
                um |= member_bits[i]
                subset.append(members[i])
                rest ^= low
            if not um & d_mask:
                continue
            if transition.is_consistent_motion(subset):
                continue
            out.append(um)
        return out

    def _candidate_pool(self, device: int, split: NeighborhoodSplit) -> List[Motion]:
        """Enumerate every Theorem 7 collection candidate for ``device``.

        Candidates are all tau-dense motions ``B`` within the ``4r``
        knowledge ball such that ``device not in B``, ``B`` intersects
        ``D_k(j)``, and ``B | {device}`` is not an r-consistent motion
        (see the module docstring for why these filters are WLOG-complete).
        Every consistent set is a subset of some maximal motion of the
        ball, so we enumerate maximal motions first and then their
        qualifying dense subsets.
        """
        transition = self._transition
        tau = transition.tau
        region = [x for x in transition.knowledge_ball(device) if x != device]
        if not region:
            return []
        maximal, _ = enumerate_maximal_motions(
            transition, region, kernel=self._kernel
        )
        neighborhood = split.dense_neighborhood
        pool: Set[Motion] = set()
        for motion in maximal:
            members = sorted(motion)
            m = len(members)
            if m <= tau:
                continue
            if self._pool_cap is not None and (1 << m) > self._pool_cap:
                raise SearchBudgetExceeded(
                    f"candidate pool for device {device} requires enumerating "
                    f"2^{m} subsets of one maximal motion (cap {self._pool_cap})"
                )
            for mask in range(1, 1 << m):
                if bin(mask).count("1") <= tau:
                    continue
                subset = frozenset(
                    members[i] for i in range(m) if mask >> i & 1
                )
                if subset in pool:
                    continue
                if not subset & neighborhood:
                    continue
                if transition.is_consistent_motion(subset | {device}):
                    continue
                pool.add(subset)
            if self._pool_cap is not None and len(pool) > self._pool_cap:
                raise SearchBudgetExceeded(
                    f"candidate pool for device {device} exceeded {self._pool_cap}"
                )
        # Deterministic order: larger candidates first so the DFS starves
        # violating motions quickly; ties broken lexicographically.
        return sorted(pool, key=lambda b: (-len(b), tuple(sorted(b))))

    # ------------------------------------------------------------------
    def characterize_many(
        self, devices: Sequence[int]
    ) -> Dict[int, Characterization]:
        """Classify a subset of ``A_k`` (shared cache across devices)."""
        return {device: self.characterize(device) for device in devices}

    def characterize_all(self) -> Dict[int, Characterization]:
        """Classify every device of ``A_k`` (shared cache across devices)."""
        return self.characterize_many(self._transition.flagged_sorted)


def characterize_transition(
    transition: Transition, **kwargs
) -> Dict[int, Characterization]:
    """One-shot helper: build a :class:`Characterizer` and classify ``A_k``.

    Keyword arguments are forwarded to :class:`Characterizer`.
    """
    return Characterizer(transition, **kwargs).characterize_all()


def classify_sets(
    results: Dict[int, Characterization]
) -> Tuple[FrozenSet[int], FrozenSet[int], FrozenSet[int]]:
    """Split characterization results into the sets ``(I_k, M_k, U_k)``."""
    isolated = frozenset(j for j, c in results.items() if c.is_isolated)
    massive = frozenset(j for j, c in results.items() if c.is_massive)
    unresolved = frozenset(j for j, c in results.items() if c.is_unresolved)
    return isolated, massive, unresolved
