"""Anomaly partitions (Definition 6, Lemma 2 and Algorithm 1).

An *anomaly partition* splits the flagged set ``A_k`` into non-empty,
disjoint r-consistent motions ``B_1, ..., B_l`` such that

* **C1** — no subset of the union of the sparse blocks (``|B_i| <= tau``)
  forms a tau-dense r-consistent motion, and
* **C2** — no (non-empty) subset of that sparse union can merge with a
  dense block into an r-consistent motion.

This module provides:

* :func:`is_anomaly_partition` — a Definition 6 validity checker, using two
  exact simplifications proved in DESIGN.md: C1 reduces to "the largest
  motion inside the sparse union has at most ``tau`` members", and C2 to
  the singleton case "no sparse-union device extends a dense block"
  (because ``B ∪ B_i`` consistent implies ``{x} ∪ B_i`` consistent for each
  ``x in B``).
* :func:`greedy_partition` — the paper's Algorithm 1: repeatedly peel off a
  maximal r-consistent motion of the residue.  Lemma 2 proves the output
  is always a valid anomaly partition; the test-suite asserts it.
* :func:`enumerate_anomaly_partitions` — exhaustive enumeration over all
  set partitions (restricted growth strings), used by the oracle on small
  configurations.
"""

from __future__ import annotations

import random
from typing import FrozenSet, Iterator, List, Optional, Sequence, Set, Tuple

from repro.core.errors import PartitionError, SearchBudgetExceeded
from repro.core.motions import enumerate_maximal_motions, largest_motion_size
from repro.core.transition import Transition

__all__ = [
    "Partition",
    "is_anomaly_partition",
    "validate_anomaly_partition",
    "greedy_partition",
    "enumerate_anomaly_partitions",
    "iter_set_partitions",
    "partition_block_of",
    "massive_isolated_split",
]

Motion = FrozenSet[int]
Partition = Tuple[Motion, ...]


def partition_block_of(partition: Sequence[Motion], device: int) -> Motion:
    """Return ``P_k(device)``: the (unique) block containing the device."""
    for block in partition:
        if device in block:
            return block
    raise PartitionError(f"device {device} is in no block of the partition")


def massive_isolated_split(
    partition: Sequence[Motion], tau: int
) -> Tuple[FrozenSet[int], FrozenSet[int]]:
    """Return ``(M_P, I_P)``: devices in dense blocks vs sparse blocks
    (Definition 7)."""
    massive: Set[int] = set()
    isolated: Set[int] = set()
    for block in partition:
        target = massive if len(block) > tau else isolated
        target.update(block)
    return frozenset(massive), frozenset(isolated)


def _explain_invalid(transition: Transition, blocks: Sequence[Motion]) -> Optional[str]:
    """Return a human-readable reason the partition is invalid, or None."""
    tau = transition.tau
    flagged = transition.flagged
    seen: Set[int] = set()
    for block in blocks:
        if not block:
            return "empty block"
        if block & seen:
            return f"blocks overlap on {sorted(block & seen)}"
        seen.update(block)
        if not block <= flagged:
            return f"block {sorted(block)} contains non-flagged devices"
        if not transition.is_consistent_motion(block):
            return f"block {sorted(block)} is not an r-consistent motion"
    if seen != flagged:
        return f"blocks do not cover A_k (missing {sorted(flagged - seen)})"
    sparse_union: Set[int] = set()
    dense_blocks: List[Motion] = []
    for block in blocks:
        if len(block) > tau:
            dense_blocks.append(block)
        else:
            sparse_union.update(block)
    # C1: the sparse union must not hide a tau-dense motion.
    if sparse_union and largest_motion_size(transition, sorted(sparse_union)) > tau:
        return "C1 violated: the sparse union contains a tau-dense motion"
    # C2: no sparse-union device may extend a dense block (singleton
    # reduction; see module docstring).
    for dense in dense_blocks:
        for device in sparse_union:
            if transition.is_consistent_motion(dense | {device}):
                return (
                    f"C2 violated: device {device} extends dense block "
                    f"{sorted(dense)}"
                )
    return None


def is_anomaly_partition(transition: Transition, blocks: Sequence[Motion]) -> bool:
    """Check whether ``blocks`` is a valid anomaly partition of ``A_k``."""
    return _explain_invalid(transition, blocks) is None


def validate_anomaly_partition(
    transition: Transition, blocks: Sequence[Motion]
) -> Partition:
    """Validate and normalize a partition, raising :class:`PartitionError`
    with an explanation when Definition 6 is violated."""
    reason = _explain_invalid(transition, blocks)
    if reason is not None:
        raise PartitionError(reason)
    return tuple(sorted((frozenset(b) for b in blocks), key=lambda b: tuple(sorted(b))))


def greedy_partition(
    transition: Transition,
    rng: Optional[random.Random] = None,
    *,
    strategy: str = "dense-first",
) -> Partition:
    """Algorithm 1: build an anomaly partition by peeling maximal motions.

    Two strategies are provided:

    ``"dense-first"`` (default)
        While the residue contains a tau-dense maximal motion, peel one
        (chosen at random among the dense maximal motions); once none
        remains, peel maximal motions anchored at random devices.  This
        always yields a valid anomaly partition: every sparse block is
        formed from a residue that contains no dense motion, so no dense
        motion can hide inside the sparse union (C1), and every sparse
        device was still present when each dense block was peeled
        maximally, so it cannot extend it (C2).

    ``"paper"``
        The verbatim Algorithm 1: pick a random device, peel a maximal
        motion of the residue containing it.  **Reproduction note**: the
        paper's Lemma 2 claims this always satisfies Definition 6, but a
        sparse peel can sever a dense motion whose members then land in
        *different* sparse blocks, violating C1 (the dense motion hides
        inside the sparse union).  ``tests/core/test_partition.py``
        carries a concrete counterexample.  Use this mode only to study
        that behaviour.

    Non-uniqueness across ``rng`` seeds is Figure 2's point and is
    exercised by the tests for both strategies.
    """
    if strategy not in ("dense-first", "paper"):
        raise PartitionError(f"unknown greedy strategy {strategy!r}")
    rng = rng or random.Random(0)
    residue: List[int] = list(transition.flagged_sorted)
    blocks: List[Motion] = []
    tau = transition.tau
    while residue:
        block: Optional[Motion] = None
        if strategy == "dense-first":
            motions, _ = enumerate_maximal_motions(transition, residue)
            dense = sorted(
                (m for m in motions if len(m) > tau),
                key=lambda m: tuple(sorted(m)),
            )
            if dense:
                block = dense[rng.randrange(len(dense))]
        if block is None:
            device = residue[rng.randrange(len(residue))]
            anchored, _ = enumerate_maximal_motions(
                transition, residue, anchor=device
            )
            block = max(anchored, key=lambda m: (len(m), tuple(sorted(m))))
        blocks.append(block)
        residue = [x for x in residue if x not in block]
    return tuple(blocks)


def iter_set_partitions(items: Sequence[int]) -> Iterator[List[List[int]]]:
    """Yield every set partition of ``items`` (Bell-number many).

    Uses restricted-growth strings, so each partition appears exactly once.
    Intended for the oracle on small inputs only — Section V of the paper
    explains why this is impractical at scale, which is precisely what the
    local conditions avoid.
    """
    items = list(items)
    n = len(items)
    if n == 0:
        yield []
        return
    codes = [0] * n

    def rec(i: int, max_code: int) -> Iterator[List[List[int]]]:
        if i == n:
            blocks: List[List[int]] = [[] for _ in range(max_code + 1)]
            for idx, code in enumerate(codes):
                blocks[code].append(items[idx])
            yield blocks
            return
        for code in range(max_code + 2):
            codes[i] = code
            yield from rec(i + 1, max(max_code, code))

    codes[0] = 0
    yield from rec(1, 0)


def enumerate_anomaly_partitions(
    transition: Transition, *, limit: Optional[int] = 2_000_000
) -> List[Partition]:
    """Enumerate every valid anomaly partition of ``A_k`` (small inputs).

    ``limit`` bounds the number of *candidate* set partitions examined; the
    Bell numbers grow super-exponentially, so exceeding the bound raises
    :class:`SearchBudgetExceeded` instead of hanging.
    """
    flagged = list(transition.flagged_sorted)
    valid: List[Partition] = []
    examined = 0
    for candidate in iter_set_partitions(flagged):
        examined += 1
        if limit is not None and examined > limit:
            raise SearchBudgetExceeded(
                f"anomaly partition enumeration exceeded {limit} candidates"
            )
        blocks = tuple(frozenset(b) for b in candidate)
        if is_anomaly_partition(transition, blocks):
            valid.append(
                tuple(sorted(blocks, key=lambda b: tuple(sorted(b))))
            )
    return valid
