"""The neighbourhood decomposition of Section V-B.

For a device ``j`` with a non-empty dense family ``Wbar_k(j)`` the paper
splits the devices of ``D_k(j)`` (union of ``j``'s maximal tau-dense
motions) into

* ``J_k(j)`` — devices all of whose maximal tau-dense motions contain
  ``j`` (always includes ``j`` itself), and
* ``L_k(j)`` — devices owning at least one maximal tau-dense motion that
  avoids ``j``.

Theorem 6 decides *massive* from ``J_k(j)`` alone; Theorem 7 additionally
explores dense motions of ``L_k(j)`` members.  Computing the split needs
the motion families of ``j``'s neighbours — i.e. trajectories within
``4r`` of ``j`` — which is the paper's knowledge-radius claim.

:class:`MotionCache` memoizes per-device motion families for one
transition so a full characterization pass computes each family once.
It can also be *carried* across consecutive transitions
(:meth:`MotionCache.carry_from`): a device whose ``4r`` surroundings did
not change between two transitions has, a fortiori, unchanged ``2r``
family inputs, so its family can be reused verbatim — the online
service uses the dirty-region tracker's affected set as the (sound,
conservative) invalidation set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Optional, Set, Tuple

from repro.core.bitset import LocalUniverse, resolve_kernel
from repro.core.motions import motion_family
from repro.core.transition import Transition
from repro.core.types import MotionFamily

__all__ = ["MotionCache", "NeighborhoodSplit", "split_neighborhood"]

Motion = FrozenSet[int]


class MotionCache:
    """Per-transition memo of :func:`repro.core.motions.motion_family`.

    The characterization of one device touches the families of its
    neighbours, and neighbourhoods overlap heavily, so a shared cache
    turns a quadratic-ish pass into a linear one.  The cache also counts
    how many families were computed (``expansions``), which feeds the
    ``neighbor_expansions`` cost column.

    Parameters
    ----------
    transition:
        The transition families are computed against.
    kernel:
        Enumeration kernel (``"bitset"`` default / ``"frozenset"``)
        forwarded to :func:`motion_family`; both produce identical
        families.

    Cross-tick reuse counters: ``carried`` is how many families were
    pre-seeded by :meth:`carry_from`; ``carried_used`` counts the
    distinct carried devices whose family was actually served, i.e.
    recomputations genuinely avoided.
    """

    def __init__(
        self, transition: Transition, *, kernel: Optional[str] = None
    ) -> None:
        self._transition = transition
        self._kernel = resolve_kernel(kernel)
        self._families: Dict[int, MotionFamily] = {}
        self._carried_pending: Set[int] = set()
        self.expansions = 0
        self.carried = 0
        self.carried_used = 0

    @property
    def transition(self) -> Transition:
        """The transition this cache is bound to."""
        return self._transition

    @property
    def kernel(self) -> str:
        """The enumeration kernel families are computed with."""
        return self._kernel

    @classmethod
    def carry_from(
        cls,
        previous: "MotionCache",
        transition: Transition,
        devices: Iterable[int],
        *,
        kernel: Optional[str] = None,
    ) -> "MotionCache":
        """Build a cache for ``transition`` pre-seeded from ``previous``.

        Only the families of ``devices`` (the *clean* set — devices whose
        ``4r`` surroundings are unchanged between the two transitions)
        are carried over; everyone else recomputes on demand.  Sound
        because a :class:`~repro.core.types.MotionFamily` is a pure value
        determined by the trajectories of flagged devices within ``2r``
        of its owner, all of which lie inside the unchanged ``4r`` ball.
        """
        cache = cls(transition, kernel=kernel or previous.kernel)
        families = previous._families
        for device in devices:
            family = families.get(device)
            if family is not None:
                cache._families[device] = family
                cache._carried_pending.add(device)
        cache.carried = len(cache._families)
        return cache

    def family(self, device: int) -> MotionFamily:
        """Return (and memoize) the motion family of ``device``."""
        fam = self._families.get(device)
        if fam is None:
            fam = motion_family(self._transition, device, kernel=self._kernel)
            self._families[device] = fam
            self.expansions += 1
        elif self._carried_pending:
            if device in self._carried_pending:
                self._carried_pending.discard(device)
                self.carried_used += 1
        return fam

    def dense_family(self, device: int) -> Tuple[Motion, ...]:
        """Return ``Wbar_k(device)``: its maximal tau-dense motions."""
        return self.family(device).dense

    def __contains__(self, device: int) -> bool:
        return device in self._families

    def __len__(self) -> int:
        return len(self._families)


@dataclass(frozen=True)
class NeighborhoodSplit:
    """The ``(D_k(j), J_k(j), L_k(j))`` decomposition for one device."""

    device: int
    dense_neighborhood: FrozenSet[int]   # D_k(j)
    always_with_j: FrozenSet[int]        # J_k(j)
    sometimes_without_j: FrozenSet[int]  # L_k(j)

    def __post_init__(self) -> None:
        # Invariants from the paper: D = J ⊎ L, j ∈ J, j ∉ L.
        assert self.always_with_j | self.sometimes_without_j == self.dense_neighborhood
        assert not (self.always_with_j & self.sometimes_without_j)


def split_masks(
    cache: MotionCache, device: int, universe: LocalUniverse
) -> Tuple[int, int, int]:
    """Mask form of the split: ``(D_mask, J_mask, L_mask)`` over ``universe``.

    The verdict hot path keeps the decomposition as bitmasks — Theorem 6
    becomes a popcount of ``motion_mask & J_mask`` and the Theorem 7
    pool filter a single AND against ``D_mask`` — while
    :func:`split_neighborhood` decodes the same masks back to frozensets
    at the public boundary.  The per-member test stays on the family's
    frozensets (a handful of O(1) membership probes beats converting
    every neighbour family to masks).
    """
    dense = cache.dense_family(device)
    d_mask = 0
    for motion in dense:
        d_mask |= universe.mask_of(motion)
    j_mask = 0
    l_mask = 0
    for member in sorted(universe.devices_of(d_mask)):
        if member == device:
            j_mask |= universe.bit(member)
            continue
        member_dense = cache.dense_family(member)
        # ``member`` is in D_k(j) so it shares at least one maximal dense
        # motion with j; its own dense family is therefore non-empty.
        if all(device in motion for motion in member_dense):
            j_mask |= universe.bit(member)
        else:
            l_mask |= universe.bit(member)
    return d_mask, j_mask, l_mask


def split_neighborhood(cache: MotionCache, device: int) -> NeighborhoodSplit:
    """Compute ``D_k(j)``, ``J_k(j)`` and ``L_k(j)`` for ``device``.

    Precondition: ``Wbar_k(device)`` is non-empty (otherwise Theorem 5
    already classified the device as isolated and the split is moot); an
    empty family yields the trivial split ``D = J = {}``, ``L = {}``.
    """
    universe = LocalUniverse()
    d_mask, j_mask, l_mask = split_masks(cache, device, universe)
    return NeighborhoodSplit(
        device=device,
        dense_neighborhood=universe.devices_of(d_mask),
        always_with_j=universe.devices_of(j_mask),
        sometimes_without_j=universe.devices_of(l_mask),
    )
