"""The neighbourhood decomposition of Section V-B.

For a device ``j`` with a non-empty dense family ``Wbar_k(j)`` the paper
splits the devices of ``D_k(j)`` (union of ``j``'s maximal tau-dense
motions) into

* ``J_k(j)`` — devices all of whose maximal tau-dense motions contain
  ``j`` (always includes ``j`` itself), and
* ``L_k(j)`` — devices owning at least one maximal tau-dense motion that
  avoids ``j``.

Theorem 6 decides *massive* from ``J_k(j)`` alone; Theorem 7 additionally
explores dense motions of ``L_k(j)`` members.  Computing the split needs
the motion families of ``j``'s neighbours — i.e. trajectories within
``4r`` of ``j`` — which is the paper's knowledge-radius claim.

:class:`MotionCache` memoizes per-device motion families for one
transition so a full characterization pass computes each family once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Tuple

from repro.core.motions import motion_family
from repro.core.transition import Transition
from repro.core.types import MotionFamily

__all__ = ["MotionCache", "NeighborhoodSplit", "split_neighborhood"]

Motion = FrozenSet[int]


class MotionCache:
    """Per-transition memo of :func:`repro.core.motions.motion_family`.

    The characterization of one device touches the families of its
    neighbours, and neighbourhoods overlap heavily, so a shared cache
    turns a quadratic-ish pass into a linear one.  The cache also counts
    how many families were computed (``expansions``), which feeds the
    ``neighbor_expansions`` cost column.
    """

    def __init__(self, transition: Transition) -> None:
        self._transition = transition
        self._families: Dict[int, MotionFamily] = {}
        self.expansions = 0

    @property
    def transition(self) -> Transition:
        """The transition this cache is bound to."""
        return self._transition

    def family(self, device: int) -> MotionFamily:
        """Return (and memoize) the motion family of ``device``."""
        fam = self._families.get(device)
        if fam is None:
            fam = motion_family(self._transition, device)
            self._families[device] = fam
            self.expansions += 1
        return fam

    def dense_family(self, device: int) -> Tuple[Motion, ...]:
        """Return ``Wbar_k(device)``: its maximal tau-dense motions."""
        return self.family(device).dense

    def __contains__(self, device: int) -> bool:
        return device in self._families

    def __len__(self) -> int:
        return len(self._families)


@dataclass(frozen=True)
class NeighborhoodSplit:
    """The ``(D_k(j), J_k(j), L_k(j))`` decomposition for one device."""

    device: int
    dense_neighborhood: FrozenSet[int]   # D_k(j)
    always_with_j: FrozenSet[int]        # J_k(j)
    sometimes_without_j: FrozenSet[int]  # L_k(j)

    def __post_init__(self) -> None:
        # Invariants from the paper: D = J ⊎ L, j ∈ J, j ∉ L.
        assert self.always_with_j | self.sometimes_without_j == self.dense_neighborhood
        assert not (self.always_with_j & self.sometimes_without_j)


def split_neighborhood(cache: MotionCache, device: int) -> NeighborhoodSplit:
    """Compute ``D_k(j)``, ``J_k(j)`` and ``L_k(j)`` for ``device``.

    Precondition: ``Wbar_k(device)`` is non-empty (otherwise Theorem 5
    already classified the device as isolated and the split is moot); an
    empty family yields the trivial split ``D = J = {}``, ``L = {}``.
    """
    dense = cache.dense_family(device)
    neighborhood: set = set()
    for motion in dense:
        neighborhood.update(motion)
    j_set: set = set()
    l_set: set = set()
    for member in neighborhood:
        if member == device:
            j_set.add(member)
            continue
        member_dense = cache.dense_family(member)
        # ``member`` is in D_k(j) so it shares at least one maximal dense
        # motion with j; its own dense family is therefore non-empty.
        if all(device in motion for motion in member_dense):
            j_set.add(member)
        else:
            l_set.add(member)
    return NeighborhoodSplit(
        device=device,
        dense_neighborhood=frozenset(neighborhood),
        always_with_j=frozenset(j_set),
        sometimes_without_j=frozenset(l_set),
    )
