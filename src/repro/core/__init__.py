"""Core machinery: the paper's primary contribution.

Public surface:

* :class:`~repro.core.transition.Snapshot`, :class:`~repro.core.transition.Transition`
  — system states and one monitored interval;
* :func:`~repro.core.motions.maximal_motions_containing`,
  :func:`~repro.core.motions.all_maximal_motions` — Algorithm 2;
* :func:`~repro.core.partition.greedy_partition`,
  :func:`~repro.core.partition.is_anomaly_partition` — Algorithm 1 /
  Definition 6;
* :class:`~repro.core.characterize.Characterizer` — Algorithms 3–5
  (Theorems 5–7, Corollary 8);
* :func:`~repro.core.oracle.oracle_classify` — the omniscient observer.
"""

from repro.core.bitset import DEFAULT_KERNEL, KERNELS, LocalUniverse
from repro.core.characterize import (
    Characterizer,
    characterize_transition,
    classify_sets,
)
from repro.core.errors import (
    ConfigurationError,
    DimensionMismatchError,
    PartitionError,
    QueueFullError,
    ReproError,
    SearchBudgetExceeded,
    TraceFormatError,
    UnknownDeviceError,
)
from repro.core.motions import (
    all_maximal_motions,
    enumerate_maximal_motions,
    maximal_motions_containing,
    motion_family,
)
from repro.core.neighborhood import MotionCache, NeighborhoodSplit, split_neighborhood
from repro.core.oracle import OracleVerdict, oracle_classify, oracle_characterizations
from repro.core.partition import (
    enumerate_anomaly_partitions,
    greedy_partition,
    is_anomaly_partition,
    massive_isolated_split,
    validate_anomaly_partition,
)
from repro.core.transition import Snapshot, Transition
from repro.core.types import (
    AnomalyType,
    Characterization,
    CostCounters,
    DecisionRule,
    MotionFamily,
)

__all__ = [
    "AnomalyType",
    "Characterization",
    "Characterizer",
    "ConfigurationError",
    "CostCounters",
    "DEFAULT_KERNEL",
    "DecisionRule",
    "DimensionMismatchError",
    "KERNELS",
    "LocalUniverse",
    "MotionCache",
    "MotionFamily",
    "NeighborhoodSplit",
    "OracleVerdict",
    "PartitionError",
    "QueueFullError",
    "ReproError",
    "SearchBudgetExceeded",
    "Snapshot",
    "TraceFormatError",
    "Transition",
    "UnknownDeviceError",
    "all_maximal_motions",
    "characterize_transition",
    "classify_sets",
    "enumerate_anomaly_partitions",
    "enumerate_maximal_motions",
    "greedy_partition",
    "is_anomaly_partition",
    "massive_isolated_split",
    "maximal_motions_containing",
    "motion_family",
    "oracle_characterizations",
    "oracle_classify",
    "split_neighborhood",
    "validate_anomaly_partition",
]
