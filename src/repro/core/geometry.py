"""Geometry of the QoS space ``E = [0, 1]^d`` under the uniform norm.

The paper models the QoS of a device consuming ``d`` services as a point in
the unit cube and measures closeness with the uniform (sup / Chebyshev /
``L-inf``) norm: ``||x|| = max_i |x_i|``.  Two facts drive every algorithm
in :mod:`repro.core`:

* a set is *r-consistent* (pairwise distance at most ``2r``) **iff** its
  axis-aligned bounding box has side at most ``2r`` in every dimension;
* the ball of radius ``rho`` around a point is the axis-aligned box of
  side ``2 * rho`` centred at it.

This module provides the norm, box predicates and a uniform grid index used
to answer "who is within distance ``rho`` of ``j``" queries in roughly
constant time per neighbour, which keeps the local algorithms local in cost
as well as in information.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.errors import ConfigurationError, DimensionMismatchError

__all__ = [
    "uniform_norm",
    "uniform_distance",
    "pairwise_uniform_distances",
    "bounding_box_side",
    "is_r_consistent_points",
    "points_within",
    "validate_radius",
    "validate_unit_cube",
    "GridIndex",
]


def uniform_norm(x: np.ndarray) -> float:
    """Return ``||x||_inf = max_i |x_i|``.

    The paper (Section III-B) uses this norm for all closeness arguments;
    since all norms on a finite-dimensional space are equivalent, results
    transfer to any norm up to a constant factor.
    """
    arr = np.asarray(x, dtype=float)
    if arr.size == 0:
        return 0.0
    return float(np.max(np.abs(arr)))


def uniform_distance(x: np.ndarray, y: np.ndarray) -> float:
    """Return the uniform-norm distance between two points."""
    ax = np.asarray(x, dtype=float)
    ay = np.asarray(y, dtype=float)
    if ax.shape != ay.shape:
        raise DimensionMismatchError(
            f"points have shapes {ax.shape} and {ay.shape}"
        )
    return uniform_norm(ax - ay)


def pairwise_uniform_distances(points: np.ndarray) -> np.ndarray:
    """Return the ``(m, m)`` matrix of pairwise uniform distances.

    ``points`` is an ``(m, d)`` array.  Vectorized; used by tests and by
    the exhaustive oracle where clarity beats asymptotics.
    """
    pts = np.asarray(points, dtype=float)
    if pts.ndim != 2:
        raise DimensionMismatchError("points must be an (m, d) array")
    diff = pts[:, None, :] - pts[None, :, :]
    return np.max(np.abs(diff), axis=-1)


def bounding_box_side(points: np.ndarray) -> float:
    """Return the largest per-dimension extent of the point set.

    For the uniform norm, the diameter of a finite set equals the largest
    side of its axis-aligned bounding box, so a set is r-consistent iff
    ``bounding_box_side(points) <= 2 * r``.
    """
    pts = np.asarray(points, dtype=float)
    if pts.ndim != 2:
        raise DimensionMismatchError("points must be an (m, d) array")
    if pts.shape[0] == 0:
        return 0.0
    return float(np.max(pts.max(axis=0) - pts.min(axis=0)))


def is_r_consistent_points(points: np.ndarray, r: float, *, atol: float = 1e-12) -> bool:
    """Check Definition 1: pairwise uniform distances all at most ``2r``.

    A small absolute tolerance absorbs floating-point noise so that points
    engineered to sit exactly ``2r`` apart (as in the paper's figures) are
    classified consistently across platforms.
    """
    return bounding_box_side(points) <= 2.0 * r + atol


def points_within(points: np.ndarray, center: np.ndarray, rho: float,
                  *, atol: float = 1e-12) -> np.ndarray:
    """Return indices of rows of ``points`` within uniform distance ``rho``.

    This is the vicinity ``V = {x : ||x - center|| <= rho}`` of
    Section VII-A, realized as a box membership test.
    """
    pts = np.asarray(points, dtype=float)
    ctr = np.asarray(center, dtype=float)
    if pts.ndim != 2 or pts.shape[1] != ctr.shape[0]:
        raise DimensionMismatchError(
            f"points shape {pts.shape} incompatible with center shape {ctr.shape}"
        )
    mask = np.all(np.abs(pts - ctr) <= rho + atol, axis=1)
    return np.nonzero(mask)[0]


def validate_radius(r: float) -> float:
    """Validate the consistency impact radius ``r in [0, 1/4)``.

    The bound comes from Definition 1 of the paper: beyond ``1/4`` the
    ``2r`` boxes can cover half the unit interval and the locality argument
    (knowledge radius ``4r``) stops being meaningfully local.
    """
    if not 0.0 <= r < 0.25:
        raise ConfigurationError(f"radius r must lie in [0, 1/4), got {r!r}")
    return float(r)


def validate_unit_cube(points: np.ndarray, *, atol: float = 1e-9) -> np.ndarray:
    """Validate that every coordinate lies in ``[0, 1]`` and return the array.

    QoS measurement functions have range ``[0, 1]`` by definition
    (Section III-A); out-of-range data indicates a broken measurement
    pipeline and is rejected eagerly.
    """
    pts = np.asarray(points, dtype=float)
    if pts.size and (pts.min() < -atol or pts.max() > 1.0 + atol):
        raise ConfigurationError(
            "QoS coordinates must lie in [0, 1]; got range "
            f"[{pts.min()}, {pts.max()}]"
        )
    return pts


class GridIndex:
    """Uniform-grid spatial index over points in ``[0, 1]^d``.

    Cells have side ``cell``; a range query of radius ``rho`` inspects the
    ``ceil(rho / cell) + 1`` ring of cells around the query point.  For the
    paper's regime (``n = 1000``, ``r = 0.03``) neighbourhood queries touch
    a handful of cells, so building the index once per snapshot makes the
    whole characterization pass near-linear in ``n``.
    """

    def __init__(self, points: np.ndarray, cell: float) -> None:
        if cell <= 0:
            raise ConfigurationError(f"cell side must be positive, got {cell!r}")
        self._points = np.asarray(points, dtype=float)
        if self._points.ndim != 2:
            raise DimensionMismatchError("points must be an (m, d) array")
        self._cell = float(cell)
        self._dim = self._points.shape[1]
        self._cells: Dict[Tuple[int, ...], List[int]] = {}
        keys = np.floor(self._points / self._cell).astype(int)
        for idx, key in enumerate(map(tuple, keys)):
            self._cells.setdefault(key, []).append(idx)
        # Batch-query structures (built lazily on first query_batch): points
        # sorted by a linearized cell code so a whole batch of range queries
        # reduces to searchsorted + fancy indexing, no per-point dict walks.
        self._keys = keys
        self._sorted_codes: Optional[np.ndarray] = None
        self._order: Optional[np.ndarray] = None
        self._key_lo: Optional[np.ndarray] = None
        self._key_span: Optional[np.ndarray] = None
        self._strides: Optional[np.ndarray] = None
        self._linearizable = True

    @property
    def dim(self) -> int:
        """Dimensionality of the indexed points."""
        return self._dim

    @property
    def cell(self) -> float:
        """Side of the grid cells."""
        return self._cell

    @property
    def points(self) -> np.ndarray:
        """The indexed ``(m, d)`` point array (do not mutate).

        Exposed so callers holding an index built for one snapshot can
        verify it matches another use site (:class:`Transition` validates
        prebuilt indexes against its own flagged positions this way).
        """
        return self._points

    def __len__(self) -> int:
        return self._points.shape[0]

    def query(self, center: Sequence[float], rho: float) -> List[int]:
        """Return indices of points within uniform distance ``rho``.

        The returned list is sorted for determinism.
        """
        ctr = np.asarray(center, dtype=float)
        if ctr.shape != (self._dim,):
            raise DimensionMismatchError(
                f"center shape {ctr.shape} incompatible with dim {self._dim}"
            )
        lo = np.floor((ctr - rho) / self._cell).astype(int)
        hi = np.floor((ctr + rho) / self._cell).astype(int)
        out: List[int] = []
        for key in _iter_cells(lo, hi):
            bucket = self._cells.get(key)
            if not bucket:
                continue
            pts = self._points[bucket]
            mask = np.all(np.abs(pts - ctr) <= rho + 1e-12, axis=1)
            out.extend(bucket[i] for i in np.nonzero(mask)[0])
        out.sort()
        return out

    def _ensure_batch_structures(self) -> None:
        """Build the sorted-cell-code arrays backing :meth:`query_batch`."""
        if self._sorted_codes is not None:
            return
        m = self._points.shape[0]
        if m == 0:
            self._key_lo = np.zeros(self._dim, dtype=np.int64)
            self._key_span = np.ones(self._dim, dtype=np.int64)
            self._strides = np.ones(self._dim, dtype=np.int64)
            self._sorted_codes = np.empty(0, dtype=np.int64)
            self._order = np.empty(0, dtype=np.int64)
            return
        keys = self._keys.astype(np.int64)
        self._key_lo = keys.min(axis=0)
        self._key_span = keys.max(axis=0) - self._key_lo + 1
        # Row-major strides over the occupied key box: code is a bijection
        # from in-box cell keys to [0, prod(span)).  Degenerate cells (r
        # near 0 in high dimension) can make that range overflow int64;
        # query_batch then falls back to scalar queries.
        span_product = 1
        for span in self._key_span.tolist():
            span_product *= int(span)
        self._linearizable = span_product < (1 << 62)
        strides = np.ones(self._dim, dtype=np.int64)
        if self._linearizable:
            for d in range(self._dim - 2, -1, -1):
                strides[d] = strides[d + 1] * self._key_span[d + 1]
        self._strides = strides
        codes = (keys - self._key_lo) @ strides
        order = np.argsort(codes, kind="stable")
        self._order = order
        self._sorted_codes = codes[order]

    def query_batch(
        self, centers: np.ndarray, rho: float, *, atol: float = 1e-12
    ) -> List[List[int]]:
        """Answer many range queries in one vectorized pass.

        Equivalent to ``[self.query(c, rho) for c in centers]`` but executed
        as a handful of numpy operations: candidate cells of *all* queries
        are linearized to sorted cell codes, located with ``searchsorted``,
        gathered with fancy indexing, and distance-filtered in one shot.
        Each result list is sorted, matching :meth:`query`.
        """
        query_of, rows = self.query_batch_flat(centers, rho, atol=atol)
        q = np.asarray(centers).shape[0]
        if q == 0:
            return []
        splits = np.cumsum(np.bincount(query_of, minlength=q))[:-1]
        return [chunk.tolist() for chunk in np.split(rows, splits)]

    def query_batch_flat(
        self, centers: np.ndarray, rho: float, *, atol: float = 1e-12
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorized batch range query, flat-array form.

        Returns ``(query_of, rows)``: parallel int64 arrays such that point
        ``rows[i]`` lies within ``rho`` of ``centers[query_of[i]]``, sorted
        by ``(query_of, rows)``.  This is the zero-copy interface the batch
        neighbourhood computation consumes; :meth:`query_batch` is a
        per-query split of it.
        """
        ctrs = np.asarray(centers, dtype=float)
        if ctrs.ndim != 2 or ctrs.shape[1] != self._dim:
            raise DimensionMismatchError(
                f"centers shape {ctrs.shape} incompatible with dim {self._dim}"
            )
        q = ctrs.shape[0]
        empty = (
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.int64),
        )
        if q == 0 or len(self) == 0:
            return empty
        self._ensure_batch_structures()
        if not self._linearizable:
            query_of_parts: List[np.ndarray] = []
            row_parts: List[np.ndarray] = []
            for i in range(q):
                hits = np.asarray(self.query(ctrs[i], rho), dtype=np.int64)
                query_of_parts.append(np.full(hits.shape, i, dtype=np.int64))
                row_parts.append(hits)
            return np.concatenate(query_of_parts), np.concatenate(row_parts)
        assert (
            self._sorted_codes is not None
            and self._order is not None
            and self._key_lo is not None
            and self._key_span is not None
            and self._strides is not None
        )
        lo = np.floor((ctrs - rho) / self._cell).astype(np.int64)
        hi = np.floor((ctrs + rho) / self._cell).astype(np.int64)
        counts = hi - lo + 1                                   # (q, d)
        width = counts.max(axis=0)                             # (d,)
        # Offsets enumerate the largest query box; narrower queries and
        # cells outside the occupied key range are masked out below.
        offs = np.stack(
            np.meshgrid(*[np.arange(w) for w in width], indexing="ij"),
            axis=-1,
        ).reshape(-1, self._dim)                               # (c, d)
        cells = lo[:, None, :] + offs[None, :, :]              # (q, c, d)
        shifted = cells - self._key_lo
        valid = np.all(
            (offs[None, :, :] < counts[:, None, :])
            & (shifted >= 0)
            & (shifted < self._key_span),
            axis=2,
        )                                                      # (q, c)
        codes = np.where(valid, shifted @ self._strides, 0).ravel()
        left = np.searchsorted(self._sorted_codes, codes, side="left")
        right = np.searchsorted(self._sorted_codes, codes, side="right")
        lens = np.where(valid.ravel(), right - left, 0)
        cum = np.concatenate(([0], np.cumsum(lens)))
        total = int(cum[-1])
        if total == 0:
            return empty
        # Expand each [left, right) slice into explicit row positions.
        pos = np.arange(total, dtype=np.int64) - np.repeat(cum[:-1], lens)
        rows = self._order[np.repeat(left, lens) + pos]
        per_query = lens.reshape(q, -1).sum(axis=1)
        query_of = np.repeat(np.arange(q, dtype=np.int64), per_query)
        keep = np.all(
            np.abs(self._points[rows] - ctrs[query_of]) <= rho + atol, axis=1
        )
        rows = rows[keep]
        query_of = query_of[keep]
        order = np.lexsort((rows, query_of))
        return query_of[order], rows[order]

    def query_pairs_within(self, rho: float) -> List[Tuple[int, int]]:
        """Return all index pairs ``(i, j), i < j`` within distance ``rho``.

        Useful for building neighbourhood graphs in analysis code and tests.
        """
        pairs: List[Tuple[int, int]] = []
        for i in range(len(self)):
            for j in self.query(self._points[i], rho):
                if j > i:
                    pairs.append((i, j))
        return pairs


def _iter_cells(lo: np.ndarray, hi: np.ndarray) -> Iterable[Tuple[int, ...]]:
    """Yield every integer lattice point of the box ``[lo, hi]``."""
    if lo.shape != hi.shape:
        raise DimensionMismatchError("lo and hi must share a shape")
    ranges = [range(int(a), int(b) + 1) for a, b in zip(lo, hi)]

    def rec(prefix: Tuple[int, ...], rest: List[range]) -> Iterable[Tuple[int, ...]]:
        if not rest:
            yield prefix
            return
        head, tail = rest[0], rest[1:]
        for v in head:
            yield from rec(prefix + (v,), tail)

    yield from rec((), ranges)
