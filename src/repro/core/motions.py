"""Enumeration of maximal r-consistent motions (Algorithm 2 of the paper).

A subset ``B`` of flagged devices has an *r-consistent motion* in
``[k-1, k]`` iff it is r-consistent at both times, i.e. iff its points fit
inside an axis-aligned box of side ``2r`` in the combined
``2d``-dimensional embedding (previous coordinates concatenated with
current ones).  The *maximal* such subsets containing a device ``j`` are
exactly what the characterization theorems consume, via the families
``W_k(j)`` and ``Wbar_k(j)``.

The paper's Algorithm 2 enumerates them by sliding a window of width
``2r`` along each dimension in turn, recursing on the devices covered by
the current window placement.  We implement the same scheme:

* window origins are point coordinates (every maximal box can be slid until
  each lower face touches a point, so point-anchored windows lose nothing);
* when an *anchor* device is supplied, only windows covering the anchor's
  coordinate are explored — this is what keeps the computation local;
* the recursion memoizes on (candidate set, dimension) so overlapping
  windows do not multiply work;
* results are reduced to inclusion-maximal sets at the end.

Two *kernels* implement the scheme (selected per call, default
``"bitset"``): the original ``frozenset`` recursion, kept as the
equivalence/benchmark baseline, and a bitmask kernel whose recursion
states are ``int`` masks over the candidate rows and whose per-dimension
sweep replaces per-row NumPy scalar reads with one NumPy argsort per
dimension at the root, C-sorted column lists plus binary-searched window
edges inside the recursion, and O(1) prefix-sum window masks.  Both
kernels examine the same window placements, report identical ``steps``
and return identical motion lists — the equivalence tests enforce it.

Correctness is cross-checked in the test-suite against a brute-force
enumerator over all subsets (``tests/core/test_motions.py``) and, at the
characterization level, against the exhaustive partition oracle.
"""

from __future__ import annotations

from bisect import bisect_right
from itertools import accumulate
from typing import FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.bitset import iter_bits, popcount, resolve_kernel
from repro.core.errors import UnknownDeviceError
from repro.core.transition import Transition
from repro.core.types import MotionFamily

__all__ = [
    "enumerate_maximal_motions",
    "maximal_motions_containing",
    "motion_family",
    "all_maximal_motions",
    "largest_motion_size",
    "brute_force_maximal_motions",
]

Motion = FrozenSet[int]


class _WindowEnumerator:
    """Recursive sliding-window sweep over the combined coordinates.

    The ``frozenset`` baseline kernel.  One instance handles one
    (transition, candidate set, anchor) query.  ``steps`` counts window
    placements; it is surfaced as the machine-independent cost proxy
    reported in Table III benchmarks.
    """

    def __init__(
        self,
        coords: np.ndarray,
        width: float,
        anchor_row: Optional[int],
        atol: float = 1e-12,
    ) -> None:
        self._coords = coords
        self._width = width
        self._anchor = anchor_row
        self._atol = atol
        self._dims = coords.shape[1]
        self._memo: Set[Tuple[FrozenSet[int], int]] = set()
        self._results: Set[FrozenSet[int]] = set()
        self.steps = 0

    def run(self) -> List[FrozenSet[int]]:
        """Enumerate and return inclusion-maximal covered sets (row indices)."""
        m = self._coords.shape[0]
        if m == 0:
            return []
        self._recurse(frozenset(range(m)), 0)
        return _maximal_only(self._results)

    def _recurse(self, rows: FrozenSet[int], dim: int) -> None:
        if (rows, dim) in self._memo:
            return
        self._memo.add((rows, dim))
        if not rows:
            return
        if dim == self._dims:
            self._results.add(rows)
            return
        order = sorted(rows, key=lambda i: self._coords[i, dim])
        values = [self._coords[i, dim] for i in order]
        anchor_value = (
            self._coords[self._anchor, dim] if self._anchor is not None else None
        )
        seen_here: Set[FrozenSet[int]] = set()
        for start_pos, left in enumerate(values):
            if start_pos > 0 and left == values[start_pos - 1]:
                continue  # identical window
            if anchor_value is not None:
                # The window [left, left + width] must cover the anchor.
                if left > anchor_value + self._atol:
                    break
                if anchor_value > left + self._width + self._atol:
                    continue
            covered = frozenset(
                order[i]
                for i in range(start_pos, len(order))
                if values[i] <= left + self._width + self._atol
            )
            self.steps += 1
            if covered in seen_here:
                continue
            if any(covered < other for other in seen_here):
                continue  # strictly dominated placement in this dimension
            seen_here.add(covered)
            self._recurse(covered, dim + 1)


class _MaskWindowEnumerator:
    """Bitmask kernel of the sliding-window sweep.

    Recursion states are ``int`` masks over the candidate *rows*
    (always a local universe by construction).  The root node of every
    dimension is ordered by one NumPy argsort over the full coordinate
    column; interior nodes re-sort their (already small) row lists with
    C-speed list keys and find every window's right edge with
    ``bisect_right`` on the sorted value list.  Each window's covered
    mask is then a prefix-sum difference — row bits are disjoint, so OR
    over a sorted slice equals subtraction of prefix sums — making a
    placement O(1) big-int work.  Placement order, memoization,
    dominance pruning and the ``steps`` counter match
    :class:`_WindowEnumerator` placement for placement.
    """

    def __init__(
        self,
        coords: np.ndarray,
        width: float,
        anchor_row: Optional[int],
        atol: float = 1e-12,
    ) -> None:
        m = coords.shape[0]
        self._m = m
        rows = coords.tolist()
        self._columns: List[List[float]] = [list(col) for col in zip(*rows)]
        # Root ordering (the recursion enters dimension 0 exactly once,
        # with all rows): NumPy argsort pays off on large candidate
        # sets; tiny neighbourhood queries (the common per-device case)
        # sort faster with a C list key.
        if m >= 64:
            self._root_order: List[int] = np.argsort(
                coords[:, 0], kind="stable"
            ).tolist()
        elif m:
            self._root_order = sorted(
                range(m), key=self._columns[0].__getitem__
            )
        else:
            self._root_order = []
        self._width = width
        self._anchor = anchor_row
        self._atol = atol
        self._dims = coords.shape[1]
        self._memo: List[Set[int]] = [set() for _ in range(self._dims + 1)]
        self._results: Set[int] = set()
        self.steps = 0

    def run(self) -> List[int]:
        """Enumerate and return inclusion-maximal covered row masks."""
        if self._m == 0:
            return []
        self._recurse(None, (1 << self._m) - 1, 0)
        return _maximal_only_masks(self._results)

    def _recurse(self, rows: Optional[List[int]], mask: int, dim: int) -> None:
        memo = self._memo[dim]
        if mask in memo:
            return
        memo.add(mask)
        if dim == self._dims:
            self._results.add(mask)
            return
        column = self._columns[dim]
        if rows is None:  # root node: all rows at dim 0, pre-sorted
            rows_sorted = self._root_order
        else:
            rows_sorted = sorted(rows, key=column.__getitem__)
        values = [column[i] for i in rows_sorted]
        anchor_value = column[self._anchor] if self._anchor is not None else None
        reach = self._width + self._atol
        # Fast path: the whole node fits one window along this dimension.
        # The first admissible placement covers every row and strictly
        # dominates all later ones, so only it recurses; the remaining
        # placements are still counted to keep ``steps`` parity with the
        # one-by-one sweep.
        if values[-1] <= values[0] + reach:
            count = 0
            previous: Optional[float] = None
            limit = None if anchor_value is None else anchor_value + self._atol
            for value in values:
                if limit is not None and value > limit:
                    break
                if value != previous:
                    count += 1
                    previous = value
            self.steps += count
            self._recurse(rows_sorted, mask, dim + 1)
            return
        # Disjoint row bits: the mask of a sorted slice is a prefix-sum
        # difference, so each window placement costs O(1) big-int work.
        prefix = list(accumulate((1 << i for i in rows_sorted), initial=0))
        seen_here: List[int] = []
        previous_left: Optional[float] = None
        for start, left in enumerate(values):
            if left == previous_left:
                continue  # identical window
            previous_left = left
            if anchor_value is not None:
                # The window [left, left + width] must cover the anchor.
                if left > anchor_value + self._atol:
                    break
                if anchor_value > left + reach:
                    continue
            end = bisect_right(values, left + reach, start)
            self.steps += 1
            covered = prefix[end] - prefix[start]
            dominated = False
            for other in seen_here:
                if covered & ~other == 0:  # equal or strictly dominated
                    dominated = True
                    break
            if dominated:
                continue
            seen_here.append(covered)
            self._recurse(rows_sorted[start:end], covered, dim + 1)


def _maximal_only(sets: Iterable[FrozenSet[int]]) -> List[FrozenSet[int]]:
    """Filter a family of sets down to its inclusion-maximal members.

    Candidates are processed in decreasing-size order and dominance is
    only checked against kept sets of *strictly larger* size — a
    same-size set can never strictly contain another — so the common
    case of many equal-size windows skips the quadratic scan entirely.
    """
    ordered = sorted(set(sets), key=len, reverse=True)
    out: List[FrozenSet[int]] = []
    larger_end = 0  # kept sets in out[:larger_end] are strictly larger
    current_size = -1
    for cand in ordered:
        if len(cand) != current_size:
            current_size = len(cand)
            larger_end = len(out)
        if not any(cand < out[i] for i in range(larger_end)):
            out.append(cand)
    return out


def _maximal_only_masks(masks: Iterable[int]) -> List[int]:
    """Mask twin of :func:`_maximal_only` (dominance = ``a & ~b == 0``)."""
    ordered = sorted(set(masks), key=popcount, reverse=True)
    out: List[int] = []
    larger_end = 0
    current_size = -1
    for cand in ordered:
        size = popcount(cand)
        if size != current_size:
            current_size = size
            larger_end = len(out)
        if not any(cand & ~out[i] == 0 for i in range(larger_end)):
            out.append(cand)
    return out


def enumerate_maximal_motions(
    transition: Transition,
    candidates: Sequence[int],
    anchor: Optional[int] = None,
    *,
    kernel: Optional[str] = None,
) -> Tuple[List[Motion], int]:
    """Enumerate maximal r-consistent motions within ``candidates``.

    Parameters
    ----------
    transition:
        The interval ``[k-1, k]`` under analysis.
    candidates:
        Device identifiers to consider (typically ``N(j)`` or a partition
        residue).  Duplicates are ignored.
    anchor:
        When given, only motions containing this device are enumerated and
        maximality is relative to motions containing it — which coincides
        with global maximality because any motion containing the anchor
        extends to a maximal one that still contains it (Remark 1).
    kernel:
        ``"bitset"`` (default) runs the vectorized mask sweep,
        ``"frozenset"`` the original set recursion; results and ``steps``
        are identical either way.

    Returns
    -------
    (motions, steps):
        ``motions`` is a list of frozensets of device ids in canonical
        order (decreasing size, then lexicographic members), each an
        inclusion-maximal r-consistent motion; ``steps`` counts window
        placements examined (cost proxy).
    """
    kernel = resolve_kernel(kernel)
    ids = sorted(set(int(c) for c in candidates))
    if anchor is not None and anchor not in ids:
        raise UnknownDeviceError(f"anchor {anchor} not among candidates")
    if not ids:
        return [], 0
    coords = transition.combined_of(ids)
    anchor_row = ids.index(anchor) if anchor is not None else None
    if kernel == "bitset":
        mask_enum = _MaskWindowEnumerator(coords, 2.0 * transition.r, anchor_row)
        raw_masks = mask_enum.run()
        if anchor_row is not None:
            anchor_bit = 1 << anchor_row
            raw_masks = _maximal_only_masks(
                m for m in raw_masks if m & anchor_bit
            )
        motions = [
            frozenset(ids[i] for i in iter_bits(mask)) for mask in raw_masks
        ]
        steps = mask_enum.steps
    else:
        enum = _WindowEnumerator(coords, 2.0 * transition.r, anchor_row)
        raw = enum.run()
        motions = [frozenset(ids[i] for i in rows) for rows in raw]
        if anchor is not None:
            motions = [m for m in motions if anchor in m]
            motions = _maximal_only(frozenset(m) for m in motions)
        steps = enum.steps
    motions.sort(key=lambda m: (-len(m), tuple(sorted(m))))
    return motions, steps


def maximal_motions_containing(
    transition: Transition, device: int, *, kernel: Optional[str] = None
) -> Tuple[List[Motion], int]:
    """Return all maximal r-consistent motions (within ``A_k``) containing
    ``device``.

    The candidate pool is ``N(device)`` — flagged devices within ``2r`` at
    both times — which is sufficient because every member of a motion
    containing ``device`` lies within ``2r`` of it at both times.
    """
    neighborhood = transition.neighborhood(device)
    return enumerate_maximal_motions(
        transition, neighborhood, anchor=device, kernel=kernel
    )


def motion_family(
    transition: Transition, device: int, *, kernel: Optional[str] = None
) -> MotionFamily:
    """Build the :class:`MotionFamily` of a device.

    Packages ``M(j)`` (all maximal motions through ``j``) together with the
    dense subfamily ``Wbar_k(j)`` (those with more than ``tau`` members).
    """
    motions, steps = maximal_motions_containing(transition, device, kernel=kernel)
    dense = tuple(m for m in motions if len(m) > transition.tau)
    return MotionFamily(
        device=device,
        motions=tuple(motions),
        dense=dense,
        window_steps=steps,
    )


def all_maximal_motions(transition: Transition) -> List[Motion]:
    """Enumerate every maximal r-consistent motion within ``A_k``.

    Used by the greedy partition construction (Algorithm 1) and the test
    oracle.  Computed as the union of per-device anchored enumerations —
    every maximal motion contains at least one device, so nothing is
    missed — followed by a global maximality filter.
    """
    found: Set[Motion] = set()
    for device in transition.flagged_sorted:
        motions, _ = maximal_motions_containing(transition, device)
        found.update(motions)
    return sorted(_maximal_only(found), key=lambda m: tuple(sorted(m)))


def largest_motion_size(transition: Transition, candidates: Sequence[int]) -> int:
    """Return the size of the largest r-consistent motion within
    ``candidates`` (0 for an empty pool).

    This is the workhorse of the oracle's C1 check: condition C1 of
    Definition 6 holds iff no subset of the sparse union is tau-dense,
    i.e. iff this value is at most ``tau``.
    """
    motions, _ = enumerate_maximal_motions(transition, candidates)
    return max((len(m) for m in motions), default=0)


def brute_force_maximal_motions(
    transition: Transition,
    candidates: Sequence[int],
    anchor: Optional[int] = None,
) -> List[Motion]:
    """Reference enumerator: test every subset (exponential; tests only).

    Enumerates all subsets of ``candidates`` (containing ``anchor`` when
    given), keeps the r-consistent motions, and reduces to maximal ones.
    The sliding-window enumerator must agree with this on every input.
    """
    ids = sorted(set(int(c) for c in candidates))
    if anchor is not None and anchor not in ids:
        raise UnknownDeviceError(f"anchor {anchor} not among candidates")
    consistent: List[Motion] = []
    m = len(ids)
    for mask in range(1, 1 << m):
        subset = frozenset(ids[i] for i in range(m) if mask >> i & 1)
        if anchor is not None and anchor not in subset:
            continue
        if transition.is_consistent_motion(subset):
            consistent.append(subset)
    return sorted(_maximal_only(consistent), key=lambda s: tuple(sorted(s)))
