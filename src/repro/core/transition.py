"""System states and transitions between two successive snapshots.

The paper reasons about one time interval ``[k-1, k]`` at a time: the system
state ``S_{k-1}``, the state ``S_k``, and the flagged set
``A_k = {j : a_k(j) = true}``.  :class:`Transition` packages those three
pieces together with the model parameters ``r`` (consistency impact radius)
and ``tau`` (density threshold), pre-builds spatial indexes on both
snapshots, and exposes the neighbourhood queries every local algorithm
needs:

* ``N(j)`` — flagged devices within ``2r`` of ``j`` at **both** times
  (the input of Algorithm 2);
* combined coordinates — the ``2d``-dimensional embedding in which an
  r-consistent *motion* is simply a box of side ``2r``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Optional, Sequence, Tuple

import numpy as np

from repro.core.errors import (
    ConfigurationError,
    DimensionMismatchError,
    UnknownDeviceError,
)
from repro.core.geometry import GridIndex, validate_radius, validate_unit_cube

__all__ = ["Snapshot", "Transition"]


@dataclass(frozen=True)
class Snapshot:
    """Positions of ``n`` devices in the QoS space at one discrete time.

    ``positions[j]`` is the point ``p_k(j) = (q_{1,k}(j), ..., q_{d,k}(j))``
    of Section III-A.  Device identifiers are the row indices ``0..n-1``
    (the paper's ``[[1, n]]`` shifted to zero-based).
    """

    positions: np.ndarray

    def __post_init__(self) -> None:
        pts = validate_unit_cube(np.asarray(self.positions, dtype=float))
        if pts.ndim != 2:
            raise DimensionMismatchError("positions must be an (n, d) array")
        object.__setattr__(self, "positions", pts)

    @property
    def n(self) -> int:
        """Number of devices."""
        return self.positions.shape[0]

    @property
    def dim(self) -> int:
        """Number of services ``d`` (dimensionality of the QoS space)."""
        return self.positions.shape[1]

    def position(self, device: int) -> np.ndarray:
        """Return ``p_k(device)``."""
        if not 0 <= device < self.n:
            raise UnknownDeviceError(f"device {device} not in [0, {self.n})")
        return self.positions[device]

    @classmethod
    def trusted(cls, positions: np.ndarray) -> "Snapshot":
        """Wrap an already-validated ``(n, d)`` float array without copying.

        Skips ``__post_init__`` — no dtype conversion, no unit-cube scan.
        For hot paths (the online store's snapshot views, shared-memory
        attaches in pool workers) where the producer has already enforced
        the invariants and an O(n·d) revalidation per tick is pure waste.
        The caller promises: float dtype, 2-d shape, values in the unit
        cube, and no writes through ``positions`` for the snapshot's
        lifetime (pass a read-only view).
        """
        snap = object.__new__(cls)
        object.__setattr__(snap, "positions", positions)
        return snap


class Transition:
    """One monitored interval ``[k-1, k]``: states, flags and parameters.

    Parameters
    ----------
    previous, current:
        Snapshots ``S_{k-1}`` and ``S_k``; must have identical shape.
    flagged:
        The set ``A_k`` of devices whose error detection function returned
        true.  Motions, partitions and characterizations only ever involve
        flagged devices (Definition 5 onwards).
    r:
        Consistency impact radius in ``[0, 1/4)``.
    tau:
        Density threshold in ``[1, n - 1]`` separating isolated from
        massive anomalies (Definition 4).
    index_prev, index_cur:
        Optional prebuilt :class:`GridIndex` objects over the *flagged*
        positions (sorted device order, cell side ``max(2r, 1e-6)``),
        adopted instead of rebuilding.  Consecutive transitions share
        index work this way: when the flagged set is unchanged from one
        interval to the next, the previous transition's
        :attr:`cur_index` indexes exactly the positions the next
        transition needs for its ``prev`` side.  Adopted indexes are
        validated (cell side, shape, and point content) so a stale or
        mismatched index fails fast instead of corrupting neighbourhood
        queries.
    """

    def __init__(
        self,
        previous: Snapshot,
        current: Snapshot,
        flagged: Iterable[int],
        r: float,
        tau: int,
        *,
        index_prev: Optional[GridIndex] = None,
        index_cur: Optional[GridIndex] = None,
    ) -> None:
        if previous.positions.shape != current.positions.shape:
            raise DimensionMismatchError(
                "previous and current snapshots must have the same shape; got "
                f"{previous.positions.shape} vs {current.positions.shape}"
            )
        self._previous = previous
        self._current = current
        self._r = validate_radius(r)
        n = previous.n
        if not isinstance(tau, (int, np.integer)) or not 1 <= int(tau) <= max(1, n - 1):
            raise ConfigurationError(
                f"tau must be an integer in [1, n-1] = [1, {n - 1}], got {tau!r}"
            )
        self._tau = int(tau)
        flagged_set = frozenset(int(j) for j in flagged)
        for j in flagged_set:
            if not 0 <= j < n:
                raise UnknownDeviceError(f"flagged device {j} not in [0, {n})")
        self._flagged: FrozenSet[int] = flagged_set
        self._flagged_sorted: Tuple[int, ...] = tuple(sorted(flagged_set))
        # Combined 2d-dimensional embedding: prev coords ++ cur coords.  A
        # subset has an r-consistent *motion* iff it fits a 2r-box here.
        # Built lazily: online ticks that only touch a few flagged devices
        # never pay the (n, 2d) allocation.
        self._combined: Optional[np.ndarray] = None
        self._index_prev: Optional[GridIndex] = None
        self._index_cur: Optional[GridIndex] = None
        if index_prev is not None:
            self._index_prev = self._adopt_index(index_prev, previous, "index_prev")
        if index_cur is not None:
            self._index_cur = self._adopt_index(index_cur, current, "index_cur")
        # Memo of N(j) keyed by (device, radius_factor): both the 2r
        # operating neighbourhood and the 4r knowledge ball are cached, so
        # _candidate_pool / ablation_locality never recompute the 4r query.
        self._neighborhood_cache: Dict[Tuple[int, float], Tuple[int, ...]] = {}

    # ------------------------------------------------------------------
    # Simple accessors
    # ------------------------------------------------------------------
    @property
    def previous(self) -> Snapshot:
        """Snapshot ``S_{k-1}``."""
        return self._previous

    @property
    def current(self) -> Snapshot:
        """Snapshot ``S_k``."""
        return self._current

    @property
    def r(self) -> float:
        """Consistency impact radius."""
        return self._r

    @property
    def tau(self) -> int:
        """Density threshold."""
        return self._tau

    @property
    def n(self) -> int:
        """Number of devices in the system."""
        return self._previous.n

    @property
    def dim(self) -> int:
        """Number of services per device."""
        return self._previous.dim

    @property
    def flagged(self) -> FrozenSet[int]:
        """The set ``A_k`` of devices with abnormal trajectories."""
        return self._flagged

    @property
    def flagged_sorted(self) -> Tuple[int, ...]:
        """``A_k`` as a sorted tuple, for deterministic iteration."""
        return self._flagged_sorted

    @property
    def combined(self) -> np.ndarray:
        """The ``(n, 2d)`` combined coordinates (prev ++ cur)."""
        if self._combined is None:
            self._combined = np.hstack(
                [self._previous.positions, self._current.positions]
            ).astype(float)
        return self._combined

    def combined_of(self, devices: Sequence[int]) -> np.ndarray:
        """Return combined coordinates for a subset of devices."""
        return self.combined[list(devices)]

    # ------------------------------------------------------------------
    # Neighbourhood queries
    # ------------------------------------------------------------------
    @property
    def index_cell(self) -> float:
        """Grid-cell side used by this transition's spatial indexes."""
        return max(2.0 * self._r, 1e-6)

    def _flagged_points(self, snapshot: Snapshot) -> np.ndarray:
        """Positions of the flagged devices (sorted order) at one time."""
        if not self._flagged_sorted:
            return np.zeros((0, self.dim))
        return snapshot.positions[list(self._flagged_sorted)]

    def _adopt_index(
        self, index: GridIndex, snapshot: Snapshot, label: str
    ) -> GridIndex:
        """Validate a prebuilt index against this transition's flagged set.

        The content check is a vectorized ``array_equal`` — far cheaper
        than the per-point dict build it saves — so reuse cannot silently
        serve neighbourhoods of the wrong snapshot or flagged set.
        """
        expected = self._flagged_points(snapshot)
        if abs(index.cell - self.index_cell) > 1e-12:
            raise ConfigurationError(
                f"{label} has cell side {index.cell}, expected {self.index_cell}"
            )
        if index.points.shape != expected.shape or not np.array_equal(
            index.points, expected
        ):
            raise ConfigurationError(
                f"{label} does not index this transition's flagged positions "
                f"(shape {index.points.shape}, expected {expected.shape})"
            )
        return index

    def _indexes(self) -> Tuple[GridIndex, GridIndex]:
        """Lazily build grid indexes over the *flagged* devices."""
        if self._index_prev is None:
            self._index_prev = GridIndex(
                self._flagged_points(self._previous), self.index_cell
            )
        if self._index_cur is None:
            self._index_cur = GridIndex(
                self._flagged_points(self._current), self.index_cell
            )
        return self._index_prev, self._index_cur

    @property
    def prev_index(self) -> GridIndex:
        """The ``S_{k-1}``-side flagged index (built on first access)."""
        return self._indexes()[0]

    @property
    def cur_index(self) -> GridIndex:
        """The ``S_k``-side flagged index (built on first access).

        When the next interval's flagged set equals this one's, pass this
        as that transition's ``index_prev`` to skip one index build.
        """
        return self._indexes()[1]

    def neighborhood(self, device: int, *, radius_factor: float = 2.0) -> Tuple[int, ...]:
        """Return ``N(j)``: flagged devices within ``radius_factor * r`` of
        ``j`` at both times (including ``j`` itself when flagged).

        With the default factor 2 this is exactly the set Algorithm 2
        receives: any device sharing an r-consistent motion with ``j`` is
        within ``2r`` of it at both ``k-1`` and ``k``.
        """
        if device not in self._flagged:
            raise UnknownDeviceError(
                f"device {device} is not flagged; N(j) is defined on A_k"
            )
        cache_key = (device, float(radius_factor))
        cached = self._neighborhood_cache.get(cache_key)
        if cached is not None:
            return cached
        rho = radius_factor * self._r
        idx_prev, idx_cur = self._indexes()
        flagged = self._flagged_sorted
        prev_hits = {flagged[i] for i in idx_prev.query(self._previous.positions[device], rho)}
        cur_hits = {flagged[i] for i in idx_cur.query(self._current.positions[device], rho)}
        out = tuple(sorted(prev_hits & cur_hits))
        self._neighborhood_cache[cache_key] = out
        return out

    def neighborhoods_batch(
        self,
        devices: Optional[Sequence[int]] = None,
        *,
        radius_factor: float = 2.0,
    ) -> Dict[int, Tuple[int, ...]]:
        """Compute ``N(j)`` for many flagged devices in one vectorized pass.

        Semantically identical to calling :meth:`neighborhood` per device,
        but the range queries of the whole batch run through
        :meth:`GridIndex.query_batch` (sorted cell codes + ``searchsorted``)
        instead of one dict-walk per device.  Results land in the same memo
        :meth:`neighborhood` uses, so a batch pass warms the per-device
        path for free.  ``devices`` defaults to all of ``A_k``.
        """
        devs = (
            list(self._flagged_sorted)
            if devices is None
            else [int(j) for j in devices]
        )
        factor = float(radius_factor)
        for j in devs:
            if j not in self._flagged:
                raise UnknownDeviceError(
                    f"device {j} is not flagged; N(j) is defined on A_k"
                )
        missing = [j for j in devs if (j, factor) not in self._neighborhood_cache]
        if missing:
            rho = factor * self._r
            idx_prev, idx_cur = self._indexes()
            flagged = np.asarray(self._flagged_sorted, dtype=np.int64)
            prev_q, prev_rows = idx_prev.query_batch_flat(
                self._previous.positions[missing], rho
            )
            cur_q, cur_rows = idx_cur.query_batch_flat(
                self._current.positions[missing], rho
            )
            # Intersect prev/cur hits of all queries at once: encode each
            # (query, row) pair as one integer; both encodings are unique
            # and sorted, so the global intersection decomposes per query.
            m = max(len(idx_prev), 1)
            both = np.intersect1d(
                prev_q * m + prev_rows, cur_q * m + cur_rows, assume_unique=True
            )
            hit_devices = flagged[both % m]
            counts = np.bincount(both // m, minlength=len(missing))
            splits = np.cumsum(counts)[:-1]
            for j, hits in zip(missing, np.split(hit_devices, splits)):
                self._neighborhood_cache[(j, factor)] = tuple(map(int, hits))
        return {j: self._neighborhood_cache[(j, factor)] for j in devs}

    def knowledge_ball(self, device: int) -> Tuple[int, ...]:
        """Return the ``4r`` knowledge radius of Section V.

        The paper shows a device never needs trajectories farther than
        ``4r`` from its own: its neighbours' neighbourhoods.  Exposed so
        tests can assert the locality claim (Ablation A3).
        """
        return self.neighborhood(device, radius_factor=4.0)

    # ------------------------------------------------------------------
    # Consistency predicates
    # ------------------------------------------------------------------
    def is_consistent_motion(self, devices: Iterable[int], *, atol: float = 1e-12) -> bool:
        """Definition 3: the subset is r-consistent at both times.

        Implemented as a single bounding-box check in the combined
        ``2d``-dimensional embedding.
        """
        idx = list(devices)
        if len(idx) <= 1:
            return True
        pts = self.combined[idx]
        side = float(np.max(pts.max(axis=0) - pts.min(axis=0)))
        return side <= 2.0 * self._r + atol

    def is_dense(self, devices: Iterable[int]) -> bool:
        """Definition 4: a motion is tau-dense iff it has > tau members."""
        return len(set(devices)) > self._tau

    def is_dense_motion(self, devices: Iterable[int]) -> bool:
        """True iff the subset is an r-consistent motion with > tau members."""
        idx = list(set(devices))
        return len(idx) > self._tau and self.is_consistent_motion(idx)

    # ------------------------------------------------------------------
    # Convenience constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_arrays(
        cls,
        previous: np.ndarray,
        current: np.ndarray,
        flagged: Iterable[int],
        r: float,
        tau: int,
    ) -> "Transition":
        """Build a transition straight from two ``(n, d)`` arrays."""
        return cls(Snapshot(previous), Snapshot(current), flagged, r, tau)

    @classmethod
    def from_views(
        cls,
        previous: np.ndarray,
        current: np.ndarray,
        flagged: Iterable[int],
        r: float,
        tau: int,
        *,
        index_prev: Optional[GridIndex] = None,
        index_cur: Optional[GridIndex] = None,
    ) -> "Transition":
        """Build a transition over *pre-validated* array views, zero-copy.

        The columnar hot path: the online store (or a pool worker
        attaching a shared-memory segment) already guarantees float
        ``(n, d)`` unit-cube arrays, so the snapshots adopt the views via
        :meth:`Snapshot.trusted` — no copy, no revalidation scan.  The
        views should be read-only for the transition's lifetime; the
        flagged-subset indexes fancy-index *copies* of the flagged rows,
        so neighbourhood state never dangles into the caller's buffers.
        """
        return cls(
            Snapshot.trusted(previous),
            Snapshot.trusted(current),
            flagged,
            r,
            tau,
            index_prev=index_prev,
            index_cur=index_cur,
        )

    @classmethod
    def from_trajectories_1d(
        cls,
        prev_cur: Sequence[Tuple[float, float]],
        flagged: Optional[Iterable[int]] = None,
        *,
        r: float,
        tau: int,
    ) -> "Transition":
        """Build a one-service transition from ``(q_{k-1}, q_k)`` pairs.

        Matches the paper's figures, which plot QoS at time ``k`` against
        QoS at time ``k-1`` for a single service.  When ``flagged`` is
        omitted every device is taken to be in ``A_k`` (as in the figures).
        """
        arr = np.asarray(prev_cur, dtype=float)
        if arr.ndim != 2 or arr.shape[1] != 2:
            raise DimensionMismatchError("prev_cur must be a sequence of pairs")
        prev = arr[:, :1]
        cur = arr[:, 1:]
        if flagged is None:
            flagged = range(arr.shape[0])
        return cls(Snapshot(prev), Snapshot(cur), flagged, r, tau)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Transition(n={self.n}, d={self.dim}, |A_k|={len(self._flagged)}, "
            f"r={self._r}, tau={self._tau})"
        )
