"""The omniscient-observer oracle (Relations (2)/(3), Definition 8).

The oracle enumerates *every* admissible anomaly partition of ``A_k`` and
classifies each flagged device:

* ``I_k`` — its block is sparse in every partition;
* ``M_k`` — its block is dense in every partition;
* ``U_k`` — both kinds of partition exist (unresolved).

This is exactly the knowledge ceiling of the paper's omniscient observer,
and Theorem 3 (ACP impossibility) manifests as ``U_k`` being non-empty for
the Figure 3 configuration.  The oracle is exponential (Bell numbers) and
exists to *validate* the local conditions: Theorems 5 and 7 and
Corollary 8 must reproduce its verdict on every input, which the
property-based tests check on random configurations.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional

from repro.core.partition import (
    Partition,
    enumerate_anomaly_partitions,
    partition_block_of,
)
from repro.core.transition import Transition
from repro.core.types import AnomalyType, Characterization, CostCounters, DecisionRule

__all__ = ["OracleVerdict", "oracle_classify", "oracle_characterizations"]


class OracleVerdict:
    """Full output of the omniscient observer on one transition."""

    def __init__(
        self,
        transition: Transition,
        partitions: List[Partition],
    ) -> None:
        if not partitions:
            # Lemma 2 guarantees at least one partition exists for any
            # non-empty A_k; reaching this branch indicates a bug upstream.
            if transition.flagged:
                raise AssertionError(
                    "no admissible anomaly partition found; Lemma 2 violated"
                )
        self.transition = transition
        self.partitions = partitions
        tau = transition.tau
        isolated: set = set()
        massive: set = set()
        unresolved: set = set()
        for device in transition.flagged_sorted:
            dense_votes = 0
            sparse_votes = 0
            for partition in partitions:
                block = partition_block_of(partition, device)
                if len(block) > tau:
                    dense_votes += 1
                else:
                    sparse_votes += 1
            if dense_votes and not sparse_votes:
                massive.add(device)
            elif sparse_votes and not dense_votes:
                isolated.add(device)
            else:
                unresolved.add(device)
        self.isolated: FrozenSet[int] = frozenset(isolated)
        self.massive: FrozenSet[int] = frozenset(massive)
        self.unresolved: FrozenSet[int] = frozenset(unresolved)

    def type_of(self, device: int) -> AnomalyType:
        """Return the oracle classification of one device."""
        if device in self.isolated:
            return AnomalyType.ISOLATED
        if device in self.massive:
            return AnomalyType.MASSIVE
        return AnomalyType.UNRESOLVED

    @property
    def acp_solvable(self) -> bool:
        """Corollary 4: ACP is solvable on this configuration iff
        ``U_k`` is empty."""
        return not self.unresolved


def oracle_classify(
    transition: Transition, *, limit: Optional[int] = 2_000_000
) -> OracleVerdict:
    """Run the omniscient observer (exhaustive; small ``|A_k|`` only)."""
    partitions = enumerate_anomaly_partitions(transition, limit=limit)
    return OracleVerdict(transition, partitions)


def oracle_characterizations(
    transition: Transition, *, limit: Optional[int] = 2_000_000
) -> Dict[int, Characterization]:
    """Return oracle verdicts in the same shape the local characterizer
    produces, for direct comparison in tests and ablations."""
    verdict = oracle_classify(transition, limit=limit)
    return {
        device: Characterization(
            device=device,
            anomaly_type=verdict.type_of(device),
            rule=DecisionRule.ORACLE,
            cost=CostCounters(),
        )
        for device in transition.flagged_sorted
    }
