"""Integer-bitmask set algebra over a per-neighborhood local universe.

The verdict hot path (Algorithms 3-5) is wall-to-wall set algebra:
window coverage, inclusion-maximality, the ``J_k/L_k`` split, subset
filters on the Theorem 7 candidate pool, and the disjoint-collection
DFS.  Executing it on ``frozenset`` objects pays a hash-table walk per
element per operation.  This module provides the alternative
representation every hot-path component shares: subsets of one ``4r``
knowledge ball encoded as plain Python ``int`` bitmasks over a
:class:`LocalUniverse` — a compact device-id ↔ bit mapping local to the
ball (a handful of devices in the paper's operating regime).

The algebra then collapses to single machine-word operations:

====================  =============================
set operation         mask identity
====================  =============================
``a | b``             ``a | b``
``a & b``             ``a & b``
``a - b``             ``a & ~b``
``a <= b`` (subset)   ``a & ~b == 0``
``a < b`` (strict)    ``a != b and a & ~b == 0``
``a.isdisjoint(b)``   ``a & b == 0``
``len(a)``            ``popcount(a)``
memo / dedup key      the ``int`` itself
====================  =============================

Python integers are arbitrary precision, so the representation widens
past 64 devices transparently: a universe that grows beyond one machine
word simply yields multi-word ints, and every identity above still
holds (at a few ns per extra word).  The universe is append-only —
bits are never reassigned — so masks minted early remain valid as the
universe widens.

Public APIs keep speaking frozensets; conversion happens at the
boundary via :meth:`LocalUniverse.mask_of` / :meth:`LocalUniverse.devices_of`.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Tuple

__all__ = [
    "DEFAULT_KERNEL",
    "KERNELS",
    "LocalUniverse",
    "iter_bits",
    "popcount",
    "resolve_kernel",
]

#: Selectable verdict-kernel representations.  ``"bitset"`` is the fast
#: default; ``"frozenset"`` is the original representation, kept as the
#: equivalence and benchmark baseline.
KERNELS: Tuple[str, ...] = ("bitset", "frozenset")
DEFAULT_KERNEL = "bitset"

try:  # int.bit_count is Python >= 3.10; fall back for 3.9.
    popcount = int.bit_count  # type: ignore[attr-defined]
except AttributeError:  # pragma: no cover - exercised only on 3.9
    def popcount(mask: int) -> int:
        """Number of set bits in ``mask``."""
        return bin(mask).count("1")


def resolve_kernel(kernel: Optional[str]) -> str:
    """Validate a kernel name, defaulting ``None`` to :data:`DEFAULT_KERNEL`."""
    if kernel is None:
        return DEFAULT_KERNEL
    if kernel not in KERNELS:
        raise ValueError(f"kernel must be one of {KERNELS}, got {kernel!r}")
    return kernel


def iter_bits(mask: int) -> Iterator[int]:
    """Yield the set bit positions of ``mask`` in ascending order."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


class LocalUniverse:
    """Bidirectional device-id ↔ bit mapping for one knowledge ball.

    Bits are assigned on first sight and never reassigned, so the
    universe can be grown lazily while previously minted masks stay
    valid.  :meth:`mask_of` registers unseen devices in sorted order,
    which keeps bit assignment deterministic for any iterable input.
    """

    __slots__ = ("_bit_index", "_devices")

    def __init__(self, devices: Iterable[int] = ()) -> None:
        self._bit_index: Dict[int, int] = {}
        self._devices: List[int] = []
        for device in devices:
            self.bit(device)

    def __len__(self) -> int:
        return len(self._devices)

    def __contains__(self, device: int) -> bool:
        return device in self._bit_index

    @property
    def devices(self) -> Tuple[int, ...]:
        """Registered device ids, in bit-position order."""
        return tuple(self._devices)

    def bit(self, device: int) -> int:
        """Return ``1 << position`` of ``device``, registering it if new."""
        index = self._bit_index.get(device)
        if index is None:
            index = len(self._devices)
            self._bit_index[device] = index
            self._devices.append(device)
        return 1 << index

    def mask_of(self, devices: Iterable[int]) -> int:
        """Encode a device collection as a bitmask (registering new ids).

        Unseen devices are registered in sorted order so the bit layout
        never depends on set-iteration order.
        """
        mask = 0
        fresh: List[int] = []
        for device in devices:
            index = self._bit_index.get(device)
            if index is None:
                fresh.append(device)
            else:
                mask |= 1 << index
        for device in sorted(fresh):
            mask |= self.bit(device)
        return mask

    def devices_of(self, mask: int) -> FrozenSet[int]:
        """Decode a bitmask back to a frozenset of device ids."""
        devices = self._devices
        return frozenset(devices[i] for i in iter_bits(mask))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"LocalUniverse(size={len(self._devices)})"
