"""Shared value types for the core characterization machinery.

These small immutable types are the vocabulary the rest of the library
speaks: which class a device fell into (Definition 7 / Definition 8 of the
paper), which rule produced the decision, and how much work it took
(Table III instruments exactly these counters).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Optional, Tuple

__all__ = [
    "AnomalyType",
    "DecisionRule",
    "CostCounters",
    "Characterization",
    "MotionFamily",
]

DeviceId = int
Motion = FrozenSet[DeviceId]


class AnomalyType(enum.Enum):
    """Classification of an impacted device in the interval ``[k-1, k]``.

    ``ISOLATED``   — the device belongs to ``I_k``: in *every* admissible
                     anomaly partition its block has at most ``tau`` members
                     (Relation (2) of the paper).
    ``MASSIVE``    — the device belongs to ``M_k``: in every admissible
                     partition its block exceeds ``tau`` members
                     (Relation (3)).
    ``UNRESOLVED`` — the device belongs to ``U_k``: partitions of both kinds
                     exist (Definition 8); even an omniscient observer
                     cannot decide.
    """

    ISOLATED = "isolated"
    MASSIVE = "massive"
    UNRESOLVED = "unresolved"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class DecisionRule(enum.Enum):
    """Which result of the paper produced a classification."""

    THEOREM_5 = "theorem-5"          # NSC for I_k (empty dense family)
    THEOREM_6 = "theorem-6"          # sufficient condition for M_k (J_k split)
    THEOREM_7 = "theorem-7"          # NSC for M_k (collection search)
    COROLLARY_8 = "corollary-8"      # NSC for U_k (counterexample found)
    ALGORITHM_3 = "algorithm-3"      # cheap-path fallback (Th. 6 inconclusive)
    ORACLE = "oracle"                # exhaustive partition enumeration

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass
class CostCounters:
    """Operation counters mirroring the cost columns of Table III.

    Attributes
    ----------
    maximal_motions:
        Number of maximal r-consistent motions enumerated for the deciding
        device (the cost the paper reports for devices in ``I_k``).
    dense_motions:
        Number of maximal tau-dense motions the device belongs to (the cost
        reported for devices decided by Theorem 6).
    neighbor_expansions:
        Number of *other* devices whose maximal-motion family had to be
        computed (the ``L_k(j)`` / ``J_k(j)`` split of Algorithm 3).
    tested_collections:
        Collections of disjoint dense motions actually examined by the
        Theorem 7 search before reaching a verdict (third column of
        Table III).
    total_collections:
        Total number of admissible collections (fourth column of
        Table III); only populated when the caller asks for an exhaustive
        count because it can be astronomically larger than
        ``tested_collections``.
    window_steps:
        Sliding-window advances performed by the Algorithm 2 enumerator;
        a machine-independent proxy for its running time.
    """

    maximal_motions: int = 0
    dense_motions: int = 0
    neighbor_expansions: int = 0
    tested_collections: int = 0
    total_collections: Optional[int] = None
    window_steps: int = 0

    def merge(self, other: "CostCounters") -> None:
        """Accumulate another counter set into this one (for aggregation)."""
        self.maximal_motions += other.maximal_motions
        self.dense_motions += other.dense_motions
        self.neighbor_expansions += other.neighbor_expansions
        self.tested_collections += other.tested_collections
        self.window_steps += other.window_steps
        if other.total_collections is not None:
            self.total_collections = (self.total_collections or 0) + other.total_collections

    def as_dict(self) -> Dict[str, Optional[int]]:
        """Return a plain-dict view for result serialization."""
        return {
            "maximal_motions": self.maximal_motions,
            "dense_motions": self.dense_motions,
            "neighbor_expansions": self.neighbor_expansions,
            "tested_collections": self.tested_collections,
            "total_collections": self.total_collections,
            "window_steps": self.window_steps,
        }


@dataclass(frozen=True)
class Characterization:
    """Decision for one device: type, rule that fired, and cost.

    ``witness`` optionally carries evidence: for Theorem 6 a dense motion
    contained in ``J_k(j)``; for Corollary 8 a counterexample collection.
    """

    device: DeviceId
    anomaly_type: AnomalyType
    rule: DecisionRule
    cost: CostCounters = field(default_factory=CostCounters)
    witness: Optional[Tuple[Motion, ...]] = None

    @property
    def is_isolated(self) -> bool:
        """True iff the device was classified into ``I_k``."""
        return self.anomaly_type is AnomalyType.ISOLATED

    @property
    def is_massive(self) -> bool:
        """True iff the device was classified into ``M_k``."""
        return self.anomaly_type is AnomalyType.MASSIVE

    @property
    def is_unresolved(self) -> bool:
        """True iff the device was classified into ``U_k``."""
        return self.anomaly_type is AnomalyType.UNRESOLVED


@dataclass(frozen=True)
class MotionFamily:
    """The family of maximal r-consistent motions a device belongs to.

    This is ``M(j)`` from Algorithm 2 plus the derived dense family
    ``Wbar_k(j)`` (maximal tau-dense motions) and the neighbourhood
    ``D_k(j)`` (union of the dense family, Section V-B).

    A family is a pure *value*: it holds no reference to the transition
    it was computed on, which is what lets the online service carry
    families of undisturbed devices across consecutive transitions
    (:meth:`~repro.core.neighborhood.MotionCache.carry_from`) instead of
    re-enumerating them.
    """

    device: DeviceId
    motions: Tuple[Motion, ...]
    dense: Tuple[Motion, ...]
    window_steps: int = 0

    @property
    def neighborhood(self) -> Motion:
        """``D_k(j)``: every device sharing a maximal dense motion with j."""
        return frozenset().union(*self.dense) if self.dense else frozenset()

    @property
    def has_dense_motion(self) -> bool:
        """True iff ``Wbar_k(j)`` is non-empty (Theorem 5 gate)."""
        return bool(self.dense)
