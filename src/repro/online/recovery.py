"""Checkpoint–restore for the online characterization service.

A checkpoint is one ``.npz`` file holding everything a fresh process
needs to resume a killed service *verdict-identically* mid-stream:

* the columnar :class:`~repro.online.store.DeviceStateStore` planes
  (both snapshots, flags, verdict codes, the id↔row table and free
  list) as plain arrays, trimmed to used rows;
* the :class:`~repro.online.dirty.DirtyRegionTracker` cell sets —
  without them the first post-restore tick would miss the one-tick move
  carry and reuse verdicts it must recompute;
* the verdict map, the pending ingest queue, the detector bank (its
  window state decides every future flag), service stats and the
  rejected-input tally, all pickled into ``uint8`` blobs inside the
  same archive;
* a JSON metadata record carrying the format version, the tick number
  and the :class:`~repro.online.service.ServiceConfig`.

Writes are crash-safe: the archive is written to a ``.tmp`` sibling,
fsynced, then published with an atomic ``os.replace`` — a reader can
never observe a torn checkpoint, and a writer killed mid-write leaves
the previous checkpoint intact.  :class:`CheckpointWriter` packages the
cadence as a service sink (every ``N`` ticks, keep the last ``K``).

What deliberately does *not* travel: the cross-tick perf caches (the
previous transition, the motion-cache carry, the chained ``cur`` copy).
They only accelerate the next tick, so the first post-restore tick pays
one fresh index build and family recompute — verdicts are unaffected,
which is exactly the contract ``tests/online/test_recovery.py`` pins.
"""

from __future__ import annotations

import json
import os
import pickle
import re
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Union

import numpy as np

from repro.core.errors import CheckpointError, ConfigurationError
from repro.online.service import (
    OnlineCharacterizationService,
    OnlineTick,
    QosUpdate,
    ServiceConfig,
)
from repro.online.store import NO_VERDICT, DeviceStateStore

__all__ = [
    "CHECKPOINT_VERSION",
    "Checkpoint",
    "CheckpointWriter",
    "ShardedCheckpoint",
    "ShardedCheckpointWriter",
    "checkpoint_path",
    "latest_checkpoint",
    "latest_sharded_checkpoint",
    "list_checkpoints",
    "list_sharded_checkpoints",
    "load_checkpoint",
    "load_sharded_checkpoint",
    "prune_checkpoints",
    "prune_sharded_checkpoints",
    "restore_service",
    "restore_sharded_service",
    "save_checkpoint",
    "save_sharded_checkpoint",
    "sharded_manifest_path",
]

#: Format version written into (and required from) every checkpoint.
CHECKPOINT_VERSION = 1

_CHECKPOINT_RE = re.compile(r"^checkpoint-(\d{8})\.npz$")

_PathLike = Union[str, os.PathLike]


def _pack(obj: object) -> np.ndarray:
    """Pickle ``obj`` into a uint8 array storable inside an npz."""
    return np.frombuffer(
        pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL), dtype=np.uint8
    )


def _unpack(arr: np.ndarray) -> object:
    return pickle.loads(np.asarray(arr, dtype=np.uint8).tobytes())


@dataclass
class Checkpoint:
    """One loaded checkpoint, ready for :func:`restore_service`."""

    version: int
    tick: int
    applied_since_tick: int
    stats: Dict[str, int]
    rejected: Dict[str, int]
    config: ServiceConfig
    store_state: Dict[str, np.ndarray]
    tracker_state: Dict[str, np.ndarray]
    verdicts: Dict[int, object]
    queue: List[QosUpdate]
    bank: object
    last_detection: object
    extra: Dict[str, object]


def save_checkpoint(
    service: OnlineCharacterizationService,
    path: _PathLike,
    *,
    extra: Optional[Dict[str, object]] = None,
) -> Path:
    """Write one atomic checkpoint of ``service`` to ``path``.

    ``extra`` is an arbitrary (picklable) dict carried alongside the
    service state — e.g. the CLI replay driver stores its external
    detector bank there.  Returns the published path.
    """
    path = Path(path)
    meta = {
        "version": CHECKPOINT_VERSION,
        "tick": service.current_tick,
        "applied_since_tick": service._applied_since_tick,
        "stats": service.stats.as_dict(),
        "rejected": dict(service.rejected),
        "config": asdict(service.config),
        "has_bank": service.bank is not None,
    }
    arrays: Dict[str, np.ndarray] = {
        "meta_json": np.frombuffer(
            json.dumps(meta).encode("utf-8"), dtype=np.uint8
        ),
        "verdicts_blob": _pack(service._verdicts),
        "queue_blob": _pack(list(service._queue)),
        "aux_blob": _pack(
            {
                "bank": service.bank,
                "last_detection": service.last_detection,
                "extra": dict(extra or {}),
            }
        ),
    }
    for key, value in service.store.state().items():
        arrays[f"store_{key}"] = value
    for key, value in service._tracker.state().items():
        arrays[f"tracker_{key}"] = value
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as fh:
        np.savez_compressed(fh, **arrays)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    return path


def load_checkpoint(path: _PathLike) -> Checkpoint:
    """Read and validate one checkpoint; raises :class:`CheckpointError`."""
    path = Path(path)
    if not path.exists():
        raise CheckpointError(f"checkpoint {path} does not exist")
    try:
        with np.load(path, allow_pickle=False) as data:
            arrays = {key: data[key] for key in data.files}
    except CheckpointError:
        raise
    except Exception as exc:
        raise CheckpointError(
            f"checkpoint {path} is unreadable: {exc}"
        ) from exc
    if "meta_json" not in arrays:
        raise CheckpointError(f"checkpoint {path} carries no metadata")
    try:
        meta = json.loads(arrays["meta_json"].tobytes().decode("utf-8"))
    except ValueError as exc:
        raise CheckpointError(
            f"checkpoint {path} has corrupt metadata: {exc}"
        ) from exc
    version = int(meta.get("version", -1))
    if version != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"checkpoint {path} is format version {version}; this build "
            f"reads version {CHECKPOINT_VERSION}"
        )
    store_state = {
        key[len("store_") :]: value
        for key, value in arrays.items()
        if key.startswith("store_")
    }
    tracker_state = {
        key[len("tracker_") :]: value
        for key, value in arrays.items()
        if key.startswith("tracker_")
    }
    aux = _unpack(arrays["aux_blob"])
    return Checkpoint(
        version=version,
        tick=int(meta["tick"]),
        applied_since_tick=int(meta["applied_since_tick"]),
        stats={k: int(v) for k, v in meta["stats"].items()},
        rejected={k: int(v) for k, v in meta.get("rejected", {}).items()},
        config=ServiceConfig(**meta["config"]),
        store_state=store_state,
        tracker_state=tracker_state,
        verdicts=_unpack(arrays["verdicts_blob"]),
        queue=list(_unpack(arrays["queue_blob"])),
        bank=aux.get("bank"),
        last_detection=aux.get("last_detection"),
        extra=dict(aux.get("extra", {})),
    )


def restore_service(
    source: Union[Checkpoint, _PathLike],
    *,
    config: Optional[ServiceConfig] = None,
    engine=None,
    sinks: Iterable[Callable[[OnlineTick], None]] = (),
    tracer=None,
) -> OnlineCharacterizationService:
    """Rebuild a service from a checkpoint, verdict-identically.

    ``config`` overrides the checkpointed :class:`ServiceConfig` (e.g.
    to resume on a different backend — verdicts are backend-invariant).
    The restored service recomputes exactly what the uninterrupted one
    would have: store, tracker, verdict cache, queue and bank state are
    all reinstated; only the cross-tick perf caches start cold, so the
    first resumed tick trades some reuse for correctness.
    """
    ckpt = (
        source
        if isinstance(source, Checkpoint)
        else load_checkpoint(source)
    )
    cfg = config or ckpt.config
    store = DeviceStateStore.from_state(ckpt.store_state)
    # The constructor wants initial positions; hand it the restored
    # current plane (scrubbed free rows are 0.0, safely in-cube) and
    # then swap the real store in underneath.
    service = OnlineCharacterizationService(
        store.current_positions(copy=True),
        cfg,
        engine=engine,
        sinks=sinks,
        tracer=tracer,
    )
    service._store = store
    service._tracker.restore_state(ckpt.tracker_state)
    service._bank = ckpt.bank
    service._last_detection = ckpt.last_detection
    service._verdicts = dict(ckpt.verdicts)
    service._queue.extend(ckpt.queue)
    service._applied_since_tick = int(ckpt.applied_since_tick)
    service._tick = int(ckpt.tick)
    for name, value in ckpt.stats.items():
        setattr(service.stats, name, value)
    service.rejected = dict(ckpt.rejected)
    rows = np.nonzero(store.verdict_codes() != NO_VERDICT)[0]
    service._verdict_rows = rows if rows.size else None
    # Perf caches start cold on purpose: they reference arrays and
    # transitions of the dead process and only ever accelerate, never
    # decide, the next tick.
    service._last_transition = None
    service._last_flagged = None
    service._last_cache = None
    service._chain_cur = None
    service._chain_serial = -1
    return service


def checkpoint_path(directory: _PathLike, tick: int) -> Path:
    """The canonical checkpoint filename for ``tick``."""
    return Path(directory) / f"checkpoint-{tick:08d}.npz"


def list_checkpoints(directory: _PathLike) -> List[Path]:
    """Canonical-named checkpoints in ``directory``, oldest first."""
    directory = Path(directory)
    if not directory.is_dir():
        return []
    found: List[tuple] = []
    for entry in directory.iterdir():
        match = _CHECKPOINT_RE.match(entry.name)
        if match:
            found.append((int(match.group(1)), entry))
    return [path for _, path in sorted(found)]


def latest_checkpoint(directory: _PathLike) -> Optional[Path]:
    """The newest canonical checkpoint in ``directory``, if any."""
    found = list_checkpoints(directory)
    return found[-1] if found else None


def prune_checkpoints(directory: _PathLike, keep: int) -> int:
    """Delete all but the newest ``keep`` checkpoints; returns removals."""
    if keep < 1:
        raise ConfigurationError(f"keep must be >= 1, got {keep!r}")
    stale = list_checkpoints(directory)[:-keep]
    for path in stale:
        try:
            path.unlink()
        except FileNotFoundError:  # pragma: no cover - concurrent prune
            pass
    return len(stale)


class CheckpointWriter:
    """Service sink: checkpoint every ``every`` ticks, keep the last few.

    Attach with ``service.add_sink(CheckpointWriter(service, dir))`` or
    pass it via the service's ``sinks``.  Each write is atomic (see
    :func:`save_checkpoint`) and followed by retention pruning, so the
    directory always holds the ``keep`` newest complete checkpoints.
    """

    def __init__(
        self,
        service: OnlineCharacterizationService,
        directory: _PathLike,
        *,
        every: int = 1,
        keep: int = 3,
        extra: Optional[Dict[str, object]] = None,
    ) -> None:
        if every < 1:
            raise ConfigurationError(f"every must be >= 1, got {every!r}")
        if keep < 1:
            raise ConfigurationError(f"keep must be >= 1, got {keep!r}")
        self._service = service
        self._directory = Path(directory)
        self._every = int(every)
        self._keep = int(keep)
        self._extra = extra
        self.written: List[Path] = []

    def __call__(self, tick: OnlineTick) -> None:
        if tick.tick % self._every:
            return
        path = checkpoint_path(self._directory, tick.tick)
        save_checkpoint(self._service, path, extra=self._extra)
        self.written.append(path)
        prune_checkpoints(self._directory, self._keep)


# ----------------------------------------------------------------------
# Sharded topology: per-shard checkpoint sets as one consistent cut
# ----------------------------------------------------------------------
#
# A :class:`~repro.online.sharded.ShardedService` checkpoint is a *set*
# of files under one directory:
#
#   shard-NN/part-XXXXXXXX.npz   one per spatial shard (store planes,
#                                tracker cell sets, verdict cache)
#   front-XXXXXXXX.npz           the front door (queue, bank, stats,
#                                config, topology)
#   manifest-XXXXXXXX.json       written last, atomically
#
# The manifest is the commit record: every part is fsynced and
# published before the manifest exists, so a reader that finds a
# manifest finds a complete, mutually-consistent cut — all parts carry
# the same tick, written between the same two tick boundaries.  A
# writer killed mid-set leaves at most orphan part files and no
# manifest; the previous cut stays the latest readable one.

_MANIFEST_RE = re.compile(r"^manifest-(\d{8})\.json$")


@dataclass
class _ShardPart:
    """One spatial shard's slice of a sharded checkpoint."""

    shard: int
    store_state: Dict[str, np.ndarray]
    tracker_state: Dict[str, np.ndarray]
    verdicts: Dict[int, object]


@dataclass
class ShardedCheckpoint:
    """One loaded consistent cut, ready for :func:`restore_sharded_service`."""

    version: int
    tick: int
    topology_shards: int
    applied_since_tick: int
    stats: Dict[str, int]
    rejected: Dict[str, int]
    config: ServiceConfig
    queue: List[QosUpdate]
    bank: object
    last_detection: object
    extra: Dict[str, object]
    shards: List[_ShardPart]


def sharded_manifest_path(directory: _PathLike, tick: int) -> Path:
    """The canonical manifest filename for ``tick``."""
    return Path(directory) / f"manifest-{tick:08d}.json"


def _write_npz(path: Path, arrays: Dict[str, np.ndarray]) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as fh:
        np.savez_compressed(fh, **arrays)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)


def save_sharded_checkpoint(
    service,
    directory: _PathLike,
    *,
    extra: Optional[Dict[str, object]] = None,
) -> Path:
    """Write one consistent-cut sharded checkpoint; returns the manifest.

    Call between ticks (e.g. from a sink) — the cut's consistency
    argument is that no shard advances while the set is being written.
    """
    directory = Path(directory)
    tick = service.current_tick
    shard_files: List[str] = []
    for shard, (store_state, tracker_state, verdicts) in enumerate(
        service.shard_states()
    ):
        meta = {
            "version": CHECKPOINT_VERSION,
            "tick": tick,
            "shard": shard,
        }
        arrays: Dict[str, np.ndarray] = {
            "meta_json": np.frombuffer(
                json.dumps(meta).encode("utf-8"), dtype=np.uint8
            ),
            "verdicts_blob": _pack(dict(verdicts)),
        }
        for key, value in store_state.items():
            arrays[f"store_{key}"] = value
        for key, value in tracker_state.items():
            arrays[f"tracker_{key}"] = value
        rel = f"shard-{shard:02d}/part-{tick:08d}.npz"
        _write_npz(directory / rel, arrays)
        shard_files.append(rel)
    front_meta = {
        "version": CHECKPOINT_VERSION,
        "tick": tick,
        "topology_shards": service.n_shards,
        "applied_since_tick": service._applied_since_tick,
        "stats": service.stats.as_dict(),
        "rejected": dict(service.rejected),
        "config": asdict(service.config),
        "has_bank": service.bank is not None,
    }
    front_rel = f"front-{tick:08d}.npz"
    _write_npz(
        directory / front_rel,
        {
            "meta_json": np.frombuffer(
                json.dumps(front_meta).encode("utf-8"), dtype=np.uint8
            ),
            "queue_blob": _pack(list(service._queue)),
            "aux_blob": _pack(
                {
                    "bank": service.bank,
                    "last_detection": service.last_detection,
                    "extra": dict(extra or {}),
                }
            ),
        },
    )
    manifest = {
        "version": CHECKPOINT_VERSION,
        "tick": tick,
        "topology_shards": service.n_shards,
        "front": front_rel,
        "shards": shard_files,
    }
    manifest_path = sharded_manifest_path(directory, tick)
    tmp = manifest_path.with_name(manifest_path.name + ".tmp")
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(manifest, fh)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, manifest_path)
    return manifest_path


def _load_part_arrays(path: Path) -> Dict[str, np.ndarray]:
    if not path.exists():
        raise CheckpointError(
            f"sharded checkpoint part {path} is missing; the manifest "
            "references an incomplete cut"
        )
    try:
        with np.load(path, allow_pickle=False) as data:
            return {key: data[key] for key in data.files}
    except Exception as exc:
        raise CheckpointError(f"checkpoint part {path} is unreadable: {exc}") from exc


def _part_meta(path: Path, arrays: Dict[str, np.ndarray]) -> Dict[str, object]:
    if "meta_json" not in arrays:
        raise CheckpointError(f"checkpoint part {path} carries no metadata")
    try:
        return json.loads(arrays["meta_json"].tobytes().decode("utf-8"))
    except ValueError as exc:
        raise CheckpointError(
            f"checkpoint part {path} has corrupt metadata: {exc}"
        ) from exc


def load_sharded_checkpoint(manifest_path: _PathLike) -> ShardedCheckpoint:
    """Read and validate one consistent cut from its manifest."""
    manifest_path = Path(manifest_path)
    if not manifest_path.exists():
        raise CheckpointError(f"manifest {manifest_path} does not exist")
    try:
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    except ValueError as exc:
        raise CheckpointError(
            f"manifest {manifest_path} is corrupt: {exc}"
        ) from exc
    version = int(manifest.get("version", -1))
    if version != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"manifest {manifest_path} is format version {version}; this "
            f"build reads version {CHECKPOINT_VERSION}"
        )
    tick = int(manifest["tick"])
    directory = manifest_path.parent
    front_arrays = _load_part_arrays(directory / manifest["front"])
    front_meta = _part_meta(directory / manifest["front"], front_arrays)
    if int(front_meta["tick"]) != tick:
        raise CheckpointError(
            f"front part of {manifest_path} is from tick "
            f"{front_meta['tick']}, manifest says {tick}"
        )
    aux = _unpack(front_arrays["aux_blob"])
    shards: List[_ShardPart] = []
    for rel in manifest["shards"]:
        part_path = directory / rel
        arrays = _load_part_arrays(part_path)
        meta = _part_meta(part_path, arrays)
        if int(meta["tick"]) != tick:
            raise CheckpointError(
                f"shard part {part_path} is from tick {meta['tick']}, "
                f"manifest says {tick} — not a consistent cut"
            )
        shards.append(
            _ShardPart(
                shard=int(meta["shard"]),
                store_state={
                    key[len("store_") :]: value
                    for key, value in arrays.items()
                    if key.startswith("store_")
                },
                tracker_state={
                    key[len("tracker_") :]: value
                    for key, value in arrays.items()
                    if key.startswith("tracker_")
                },
                verdicts=_unpack(arrays["verdicts_blob"]),
            )
        )
    expected = int(manifest["topology_shards"])
    if len(shards) != expected:
        raise CheckpointError(
            f"manifest {manifest_path} lists {len(shards)} shard parts "
            f"for a {expected}-shard topology"
        )
    return ShardedCheckpoint(
        version=version,
        tick=tick,
        topology_shards=expected,
        applied_since_tick=int(front_meta["applied_since_tick"]),
        stats={k: int(v) for k, v in front_meta["stats"].items()},
        rejected={
            k: int(v) for k, v in front_meta.get("rejected", {}).items()
        },
        config=ServiceConfig(**front_meta["config"]),
        queue=list(_unpack(front_arrays["queue_blob"])),
        bank=aux.get("bank"),
        last_detection=aux.get("last_detection"),
        extra=dict(aux.get("extra", {})),
        shards=sorted(shards, key=lambda part: part.shard),
    )


def restore_sharded_service(
    source: Union[ShardedCheckpoint, _PathLike],
    *,
    config: Optional[ServiceConfig] = None,
    sinks: Iterable[Callable[[OnlineTick], None]] = (),
    tracer=None,
    parallel: bool = True,
    topology_workers: str = "thread",
):
    """Rebuild a :class:`ShardedService` from a consistent cut.

    Mirrors :func:`restore_service` per shard: stores, trackers and
    verdict caches are reinstated exactly; cross-tick perf caches start
    cold; the device→shard owner map is rebuilt from the parts'
    id columns (authoritative — placement is part of the stores' state,
    not recomputed from positions).  ``topology_workers`` picks where
    the restored shards run; a cut taken under either topology restores
    under either.
    """
    from repro.online.sharded import ShardedService

    ckpt = (
        source
        if isinstance(source, ShardedCheckpoint)
        else load_sharded_checkpoint(source)
    )
    cfg = config or ckpt.config
    dim = int(np.asarray(ckpt.shards[0].store_state["cur"]).shape[1])
    service = ShardedService(
        np.zeros((1, dim)),
        cfg,
        topology_shards=ckpt.topology_shards,
        parallel=parallel,
        sinks=sinks,
        tracer=tracer,
        topology_workers=topology_workers,
    )
    try:
        service.load_shard_states(ckpt.shards)
    except ConfigurationError as exc:
        service.close()
        raise CheckpointError(str(exc)) from exc
    service._bank = ckpt.bank
    service._last_detection = ckpt.last_detection
    service._queue.extend(ckpt.queue)
    service._applied_since_tick = int(ckpt.applied_since_tick)
    service._tick = int(ckpt.tick)
    for name, value in ckpt.stats.items():
        setattr(service.stats, name, value)
    service.rejected = dict(ckpt.rejected)
    return service


def list_sharded_checkpoints(directory: _PathLike) -> List[Path]:
    """Manifest files in ``directory``, oldest first."""
    directory = Path(directory)
    if not directory.is_dir():
        return []
    found: List[tuple] = []
    for entry in directory.iterdir():
        match = _MANIFEST_RE.match(entry.name)
        if match:
            found.append((int(match.group(1)), entry))
    return [path for _, path in sorted(found)]


def latest_sharded_checkpoint(directory: _PathLike) -> Optional[Path]:
    """The newest manifest in ``directory``, if any."""
    found = list_sharded_checkpoints(directory)
    return found[-1] if found else None


def prune_sharded_checkpoints(directory: _PathLike, keep: int) -> int:
    """Delete all but the newest ``keep`` cuts (manifest *and* parts)."""
    if keep < 1:
        raise ConfigurationError(f"keep must be >= 1, got {keep!r}")
    directory = Path(directory)
    stale = list_sharded_checkpoints(directory)[:-keep]
    for manifest_path in stale:
        try:
            manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
            parts = [manifest.get("front", ""), *manifest.get("shards", [])]
        except (ValueError, OSError):  # pragma: no cover - corrupt stale cut
            parts = []
        # Manifest first: once it is gone the cut is invisible to
        # readers and the part deletions cannot strand a live manifest.
        try:
            manifest_path.unlink()
        except FileNotFoundError:  # pragma: no cover - concurrent prune
            pass
        for rel in parts:
            if not rel:
                continue
            try:
                (directory / rel).unlink()
            except FileNotFoundError:  # pragma: no cover - concurrent prune
                pass
    return len(stale)


class ShardedCheckpointWriter:
    """Sharded-service sink: one consistent cut every ``every`` ticks."""

    def __init__(
        self,
        service,
        directory: _PathLike,
        *,
        every: int = 1,
        keep: int = 3,
        extra: Optional[Dict[str, object]] = None,
    ) -> None:
        if every < 1:
            raise ConfigurationError(f"every must be >= 1, got {every!r}")
        if keep < 1:
            raise ConfigurationError(f"keep must be >= 1, got {keep!r}")
        self._service = service
        self._directory = Path(directory)
        self._every = int(every)
        self._keep = int(keep)
        self._extra = extra
        self.written: List[Path] = []

    def __call__(self, tick: OnlineTick) -> None:
        if tick.tick % self._every:
            return
        path = save_sharded_checkpoint(
            self._service, self._directory, extra=self._extra
        )
        self.written.append(path)
        prune_sharded_checkpoints(self._directory, self._keep)
