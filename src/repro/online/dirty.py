"""Dirty-region bookkeeping: which verdicts can a tick's updates change?

The paper's locality result (Section V) says a device's verdict is a
function of the trajectories and flag bits of flagged devices within
``4r`` of it, at both interval endpoints.  Turned around, that is an
*invalidation* rule: verdict ``k``'s inputs for device ``j`` differ from
verdict ``k-1``'s only if some device ``i`` inside ``j``'s ``4r``
influence region changed its transition tuple
``(p_{k-1}(i), p_k(i), a_k(i))`` — i.e. ``i`` moved during this interval,
moved during the *previous* one (its ``prev`` endpoint shifted under it),
or toggled its flag.  Moves of devices that are unflagged on both sides
of the toggle are invisible to every verdict and tracked for free.

:class:`DirtyRegionTracker` accumulates those changes as grid-cell keys:

* a relevant update marks the device's old and new current cells
  (``old`` doubles as the device's ``prev`` endpoint — the store rolled
  snapshots at the last tick boundary);
* a *position* move additionally carries its two cells into the next
  tick's dirty set, because ``prev_{k+1} = cur_k`` shifts the device's
  trajectory again one tick later;
* at tick end, every flagged device within ``rings`` cells (Chebyshev)
  of a dirty cell is reported as *affected* — a conservative superset of
  the devices whose verdicts can have changed, with ``rings`` sized so
  that anything farther is provably more than ``4r`` away.

The complement of the affected set is sound for more than verdict-cache
reuse: a device's *motion family* (``M(j)`` / ``Wbar_k(j)``) is a
function of the trajectories and flag bits of flagged devices within
``2r`` of it — a strict subset of the ``4r`` inputs of its verdict — so
any unaffected device's family from the previous transition is still
exact, and the online service carries those families across ticks via
:meth:`~repro.core.neighborhood.MotionCache.carry_from` using this same
affected set as the invalidation region.  The one-tick move carry is
what makes this valid for trajectories, not just positions: a device
that moved in tick ``k`` re-dirties its cells in tick ``k+1`` (its
``prev`` endpoint shifts under it), so no family survives a change to
*either* endpoint of a nearby trajectory.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Set, Tuple

import numpy as np

from repro.core.errors import ConfigurationError
from repro.online.grid import CellKey, MutableGridIndex
from repro.online.store import AppliedBatch, AppliedUpdate

__all__ = ["DirtyRegionTracker"]


class DirtyRegionTracker:
    """Map a tick's updated cells to the verdicts they can invalidate.

    Parameters
    ----------
    cell:
        Grid-cell side (must match the store's index).
    influence_radius:
        How far a change can reach: ``4r``, the paper's knowledge radius.
    family_radius:
        How far a change can reach into *motion families*: ``2r``, the
        neighbourhood radius of Algorithm 2 (defaults to half the
        influence radius).  Devices beyond this tighter band keep their
        families across the tick even when their verdicts must be
        recomputed — the set the service's cross-tick motion carry is
        allowed to reuse.
    """

    def __init__(
        self,
        *,
        cell: float,
        influence_radius: float,
        family_radius: Optional[float] = None,
    ) -> None:
        if cell <= 0:
            raise ConfigurationError(f"cell side must be positive, got {cell!r}")
        if influence_radius < 0:
            raise ConfigurationError(
                f"influence_radius must be >= 0, got {influence_radius!r}"
            )
        if family_radius is None:
            family_radius = influence_radius / 2.0
        if not 0 <= family_radius <= influence_radius:
            raise ConfigurationError(
                "family_radius must lie in [0, influence_radius], got "
                f"{family_radius!r}"
            )
        self._cell = float(cell)
        # Two cells at Chebyshev key-distance D hold points at least
        # (D - 1) * cell apart, so rings = floor(4r / cell) + 1 guarantees
        # rings * cell > 4r: anything outside the ring band is strictly
        # beyond the influence radius even at cell-boundary extremes.
        self._rings = int(math.floor(influence_radius / self._cell + 1e-9)) + 1
        self._family_rings = int(
            math.floor(family_radius / self._cell + 1e-9)
        ) + 1
        self._pending: Set[CellKey] = set()
        self._carry: Set[CellKey] = set()
        self._carry_next: Set[CellKey] = set()

    @property
    def rings(self) -> int:
        """Cell-ring radius of the influence band."""
        return self._rings

    @property
    def family_rings(self) -> int:
        """Cell-ring radius of the (tighter) motion-family band."""
        return self._family_rings

    @property
    def pending_cells(self) -> Tuple[CellKey, ...]:
        """Cells dirtied so far this tick (including last tick's carry)."""
        return tuple(sorted(self._pending | self._carry))

    def mark(self, applied: AppliedUpdate, *, was_relevant: bool) -> bool:
        """Record one applied update; returns whether it dirtied anything.

        ``was_relevant`` is true when the device was flagged *before* the
        update — a move of a device that is unflagged before and after
        cannot change any verdict and is skipped entirely.
        """
        relevant = applied.flag_changed or (
            applied.moved and (applied.flagged or was_relevant)
        )
        if not relevant:
            return False
        self._pending.add(applied.old_cell)
        self._pending.add(applied.new_cell)
        if applied.moved:
            # prev_{k+1} = cur_k: this trajectory shifts again next tick.
            self._carry_next.add(applied.old_cell)
            self._carry_next.add(applied.new_cell)
        return True

    def mark_batch(
        self, batch: AppliedBatch, *, was_relevant: np.ndarray
    ) -> int:
        """Vectorized :meth:`mark` over one applied row batch.

        Computes the relevance mask in one pass and materializes cell
        tuples *only* for the relevant rows — the irrelevant bulk of a
        steady-state tick allocates nothing per device.  Returns the
        number of relevant updates.
        """
        relevant = batch.flag_changed | (
            batch.moved & (batch.flagged | np.asarray(was_relevant, dtype=bool))
        )
        count = int(np.count_nonzero(relevant))
        if not count:
            return 0
        idx = np.nonzero(relevant)[0]
        old_cells = [tuple(key) for key in batch.old_keys[idx].tolist()]
        new_cells = [tuple(key) for key in batch.new_keys[idx].tolist()]
        self._pending.update(old_cells)
        self._pending.update(new_cells)
        moved = batch.moved[idx]
        if moved.any():
            # prev_{k+1} = cur_k: these trajectories shift again next tick.
            for i in np.nonzero(moved)[0]:
                self._carry_next.add(old_cells[i])
                self._carry_next.add(new_cells[i])
        return count

    def invalidate_cells(self, keys) -> None:
        """Force ``keys`` dirty this tick *and* carry them into the next.

        Recovery hook: after a shard process is respawned from its
        shared-memory planes, the in-flight verdict caches are gone and
        any partially applied updates are unattributable, so the parent
        conservatively dirties every alive cell.  Adding the cells to
        the move carry as well covers trajectories whose ``prev``
        endpoint shifted in the lost tick.
        """
        cells = {tuple(key) for key in keys}
        self._pending.update(cells)
        self._carry_next.update(cells)

    def finish_cells(self) -> Tuple[CellKey, ...]:
        """Close the tick's *cell* bookkeeping: return the dirty cells.

        Resets per-tick state; the carry of this tick's moves seeds the
        next tick's dirty set.  The sharded topology uses this half of
        :meth:`finish_tick` on its own: each shard closes its cells,
        the front door unions them, and every shard then derives its
        affected set from the *global* union — a change near a shard
        boundary must invalidate verdicts on both sides.
        """
        dirty = self._pending | self._carry
        self._pending = set()
        self._carry = self._carry_next
        self._carry_next = set()
        return tuple(sorted(dirty))

    def finish_tick(
        self, index: MutableGridIndex
    ) -> Tuple[Tuple[CellKey, ...], Set[int]]:
        """Close the tick: return ``(dirty_cells, affected_devices)``.

        ``affected_devices`` is every indexed device within ``rings``
        cells of a dirty cell — callers intersect with the flagged set.
        Resets per-tick state; the carry of this tick's moves seeds the
        next tick's dirty set.  The devices whose motion *families* are
        invalidated (the tighter ``family_rings`` band) can be recovered
        from the returned cells via
        ``index.devices_near_cells(dirty_cells, tracker.family_rings)``.
        """
        dirty = self.finish_cells()
        affected = index.devices_near_cells(dirty, self._rings) if dirty else set()
        return dirty, affected

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def state(self) -> Dict[str, np.ndarray]:
        """The three cell sets as ``(k, d)`` integer arrays (sorted)."""

        def pack(cells: Set[CellKey]) -> np.ndarray:
            if not cells:
                return np.empty((0, 0), dtype=np.int64)
            return np.array(sorted(cells), dtype=np.int64)

        return {
            "pending": pack(self._pending),
            "carry": pack(self._carry),
            "carry_next": pack(self._carry_next),
        }

    def restore_state(self, state: Dict[str, np.ndarray]) -> None:
        """Restore the cell sets from :meth:`state` output."""

        def unpack(arr: np.ndarray) -> Set[CellKey]:
            arr = np.asarray(arr, dtype=np.int64)
            if arr.size == 0:
                return set()
            return {tuple(key) for key in arr.tolist()}

        self._pending = unpack(state["pending"])
        self._carry = unpack(state["carry"])
        self._carry_next = unpack(state["carry_next"])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DirtyRegionTracker(rings={self._rings}, "
            f"pending={len(self._pending)}, carry={len(self._carry)})"
        )
