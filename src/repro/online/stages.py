"""The online tick as explicit pipeline stages.

The service's ``end_tick`` used to be one ~300-line method; the spans it
emitted (``ingest-drain``, ``detect``, ``index-update``,
``dirty-region``, ``transition-build``, ``verdict``, ``sinks``) were
names painted onto inline code.  This module makes each span a *stage
object* with an array-in/array-out contract over a shared
:class:`TickContext`, so the same stages can be composed two ways:

* :class:`~repro.online.service.OnlineCharacterizationService` runs one
  pipeline over the whole population (exactly the old behaviour — the
  refactor is observationally identical, including which spans a tick
  emits);
* :class:`~repro.online.sharded.ShardedService` runs one pipeline *per
  spatial shard*, swapping only the transition-build stage for a
  halo-aware variant and keying the verdict cache by global device id.

Stage contract
--------------
A stage is constructed once with its long-lived collaborators (store,
tracker, engine, config) and holds whatever cross-tick state it needs
(the transition chain, the verdict cache, the motion-cache carry).  Per
tick it receives one :class:`TickContext` and fills in its outputs:

===================  ==========================================  =============================
stage                reads                                       writes
===================  ==========================================  =============================
``dirty-region``     store flags, tracker cells                  ``flagged, dirty_cells, affected``
``transition-build`` store planes, ``flagged``                   ``transition, chain_next, index_reused``
``verdict``          ``transition, flagged, affected``           ``recompute, reused, verdicts, families_*``
``sinks``            the finished ``OnlineTick``                 (side effects only)
===================  ==========================================  =============================

Each stage opens its own tracer span *only when it actually works*, so
the per-tick ``stage_seconds`` breakdown keeps exactly the keys the
inline code produced (quiet ticks still skip ``transition-build`` /
``verdict``).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.errors import ConfigurationError
from repro.core.neighborhood import MotionCache
from repro.core.transition import Transition
from repro.core.types import Characterization
from repro.detection.banks import BankDetection, DetectorBank
from repro.obs.trace import Tracer
from repro.online.grid import CellKey

__all__ = [
    "DetectStage",
    "DirtyRegionStage",
    "IndexUpdateStage",
    "IngestDrainStage",
    "SinkStage",
    "TickContext",
    "TickPipeline",
    "TransitionBuildStage",
    "VerdictStage",
    "remap_characterization",
]


@dataclass
class TickContext:
    """The array-valued blackboard one tick's stages read and write.

    ``flagged``, ``affected``, ``recompute`` and ``reused`` are in
    *transition id space*: for the single service that is the global
    device id, for a shard pipeline it is the local row of the shard's
    transition arrays and ``key_of`` carries the local→global id map
    (``None`` means identity).  ``verdicts`` is always keyed by the
    *cache key* (global id).

    The context itself never crosses a process boundary: a process-shard
    child builds it from the ``verdict`` command's payload (tick plus
    the global dirty-cell union) and ships back only the plain result
    dict distilled by :func:`repro.online.sharded._ctx_result`, so every
    field here may hold arbitrarily large arrays without ever being
    pickled down a pipe.
    """

    tick: int
    applied: int = 0
    flagged: Tuple[int, ...] = ()
    dirty_cells: Tuple[CellKey, ...] = ()
    affected: Set[int] = field(default_factory=set)
    transition: Optional[Transition] = None
    chain_next: Optional[np.ndarray] = None
    index_reused: bool = False
    allow_carry: bool = True
    key_of: Optional[np.ndarray] = None
    verdict_targets: Optional[Tuple[int, ...]] = None
    recompute: List[int] = field(default_factory=list)
    reused: List[int] = field(default_factory=list)
    verdicts: Dict[int, Characterization] = field(default_factory=dict)
    families_recomputed: int = 0
    families_reused: int = 0

    def key(self, device: int) -> int:
        """Map a transition-space id to its stable cache key."""
        if self.key_of is None:
            return device
        return int(self.key_of[device])


def remap_characterization(
    verdict: Characterization, key_of: np.ndarray
) -> Characterization:
    """Rewrite a verdict from transition-local ids to global ids.

    A shard's transition numbers devices by local row; the verdict it
    produces — including the witness motions, which are frozensets of
    device ids — must leave the shard in the global id space or two
    shards' reports could not be compared, merged or checkpointed.
    """
    witness = verdict.witness
    if witness is not None:
        witness = tuple(
            frozenset(int(key_of[j]) for j in motion) for motion in witness
        )
    return replace(
        verdict, device=int(key_of[verdict.device]), witness=witness
    )


class IngestDrainStage:
    """``ingest-drain``: empty the bounded queue into the store.

    The queue and its backpressure policy are service-level API; the
    stage wraps the service's drain callable so the pipeline owns the
    span and the loop, not the queue semantics.
    """

    name = "ingest-drain"

    def __init__(self, drain: Callable[[], int], pending: Callable[[], int]) -> None:
        self._drain = drain
        self._pending = pending

    def run(self, tracer: Tracer) -> None:
        if not self._pending():
            return
        with tracer.span(self.name):
            while self._pending():
                self._drain()


class DetectStage:
    """``detect``: run the in-service detector bank over one raw frame."""

    name = "detect"

    def __init__(self, get_bank: Callable[[], Optional[DetectorBank]]) -> None:
        self._get_bank = get_bank

    def require_bank(self) -> DetectorBank:
        bank = self._get_bank()
        if bank is None:
            raise ConfigurationError(
                "feed_measurements needs a detector; construct the service "
                "with detector=DetectorSpec(...)"
            )
        return bank

    def observe(self, frame: np.ndarray, tracer: Tracer) -> BankDetection:
        bank = self.require_bank()
        with tracer.span(self.name):
            return bank.observe_batch(frame)


class IndexUpdateStage:
    """``index-update``: diff one snapshot against the store and apply it.

    The bridge the snapshot-shaped drivers share: rows whose position
    or flag bit differs from the owner's store are applied as one
    vectorized batch and marked on the dirty tracker.  ``current`` and
    ``flags`` must be aligned with the store's allocated rows.  Returns
    the number of rows applied.
    """

    name = "index-update"

    def __init__(self, owner) -> None:
        self._owner = owner

    def apply_diff(
        self, current: np.ndarray, flags, tracer: Tracer
    ) -> int:
        from repro.online.replay import diff_rows

        store = self._owner.store
        with tracer.span(self.name):
            rows, positions, new_flags = diff_rows(
                store.current_positions(),
                current,
                store.flag_vector(),
                flags,
            )
            if rows.size:
                applied = store.apply_rows(rows, positions, new_flags)
                self._owner.tracker.mark_batch(
                    applied, was_relevant=applied.was_flagged
                )
            return int(rows.size)


class DirtyRegionStage:
    """``dirty-region``: close the tracker and fan out to affected rows.

    ``owner`` is any object with ``store`` / ``tracker`` properties (a
    service or a shard worker); stages read through it so a checkpoint
    restore that swaps the owner's store is seen by every stage.
    """

    name = "dirty-region"

    def __init__(self, owner) -> None:
        self._owner = owner

    def run(self, ctx: TickContext, tracer: Tracer) -> None:
        store = self._owner.store
        ctx.flagged = store.flagged_devices()
        with tracer.span(self.name):
            ctx.dirty_cells, ctx.affected = self._owner.tracker.finish_tick(
                store.index
            )


class TransitionBuildStage:
    """``transition-build``: freeze the snapshot pair into a transition.

    Owns the cross-tick perf state of the build: the *chained* current
    copy (steady-state ticks pay one ``(n, d)`` copy, not two — the
    previous tick's frozen ``cur`` is this tick's ``prev`` by object
    identity) and the previous transition whose current-side grid index
    is adopted when the flagged set is unchanged.
    """

    name = "transition-build"

    def __init__(self, owner, r: float, tau: int, *,
                 reuse_indexes: bool) -> None:
        self._owner = owner
        self._r = float(r)
        self._tau = int(tau)
        self._reuse_indexes = bool(reuse_indexes)
        self.last_transition: Optional[Transition] = None
        self.last_flagged: Optional[Tuple[int, ...]] = None
        self.chain_cur: Optional[np.ndarray] = None
        self.chain_serial: int = -1

    def reset(self) -> None:
        """Drop all cross-tick perf state (checkpoint restore path)."""
        self.last_transition = None
        self.last_flagged = None
        self.chain_cur = None
        self.chain_serial = -1

    def run(self, ctx: TickContext, tracer: Tracer) -> None:
        if not ctx.flagged:
            return
        store = self._owner.store
        with tracer.span(self.name):
            prev_view, cur_view = store.snapshot_arrays()
            # One read-only copy freezes the current positions for the
            # published transition (ticks retain them; live views would
            # be corrupted by the next update).  The prev side chains
            # the previous tick's frozen cur — same content as the
            # store's prev plane, zero extra copy — unless the store
            # rolled an unexpected number of times in between.
            cur_arr = cur_view.copy()
            cur_arr.flags.writeable = False
            if (
                self.chain_cur is not None
                and store.tick_serial == self.chain_serial
                and self.chain_cur.shape == prev_view.shape
            ):
                prev_arr = self.chain_cur
            else:
                prev_arr = prev_view.copy()
                prev_arr.flags.writeable = False
            ctx.chain_next = cur_arr
            index_prev = None
            if (
                self._reuse_indexes
                and self.last_transition is not None
                and self.last_flagged == ctx.flagged
            ):
                index_prev = self.last_transition.cur_index
                ctx.index_reused = True
            ctx.transition = Transition.from_views(
                prev_arr,
                cur_arr,
                ctx.flagged,
                self._r,
                self._tau,
                index_prev=index_prev,
            )

    def advance(self, ctx: TickContext) -> None:
        """Roll the store and the chain after the tick's verdicts land."""
        store = self._owner.store
        store.advance_tick()
        self.chain_cur = ctx.chain_next
        self.chain_serial = store.tick_serial
        self.last_transition = ctx.transition
        self.last_flagged = ctx.flagged if ctx.transition is not None else None


class VerdictStage:
    """``verdict``: plan the recompute set, carry families, characterize.

    Owns the per-device verdict cache (the incremental path serves
    unaffected devices from it) and the cross-tick
    :class:`~repro.core.neighborhood.MotionCache` carry.  Ids seen by
    the engine are transition-space; the cache is keyed through
    ``ctx.key`` so a sharded pipeline can keep it in global id space
    across halo churn and migrations.
    """

    name = "verdict"

    def __init__(
        self,
        owner,
        *,
        incremental: bool,
        reuse_motions: bool,
        transition_source: TransitionBuildStage,
    ) -> None:
        self._owner = owner
        self._incremental = bool(incremental)
        self._reuse_motions = bool(reuse_motions)
        self._transitions = transition_source
        self.cache: Dict[int, Characterization] = {}
        self.last_cache: Optional[MotionCache] = None

    def reset(self) -> None:
        """Drop the motion-cache carry (checkpoint restore path)."""
        self.last_cache = None

    def run(self, ctx: TickContext, tracer: Tracer) -> None:
        # ``targets`` is who this stage owes a verdict: everything
        # flagged for the single service, the *owned* flagged subset for
        # a shard pipeline (halo devices participate in the transition
        # but are characterized by their owning shard).
        targets = (
            ctx.flagged
            if ctx.verdict_targets is None
            else ctx.verdict_targets
        )
        if not targets:
            self.last_cache = None
            self.cache = {}
            return
        transition = ctx.transition
        if self._incremental:
            ctx.recompute = [
                j
                for j in targets
                if j in ctx.affected or ctx.key(j) not in self.cache
            ]
            recompute_set = set(ctx.recompute)
            ctx.reused = [j for j in targets if j not in recompute_set]
        else:
            ctx.recompute = list(targets)
        # Cross-tick motion-family carry: families see only the 2r ball,
        # half the verdicts' 4r reach, so the family-clean set (outside
        # the tighter family_rings band) is strictly larger than the
        # verdict-clean set — devices whose verdicts must be recomputed
        # still reuse their own and their neighbours' families.  The
        # decision is per *run*: the serial path (and any pool tick that
        # degrades to it) carries the engine's shared cache, while the
        # persistent pool receives the clean set so its workers carry
        # their private caches.
        reuse_effective = (
            self._incremental and self._reuse_motions and ctx.allow_carry
        )
        carry: Optional[MotionCache] = None
        carry_clean: Optional[List[int]] = None
        if reuse_effective and self._transitions.last_transition is not None:
            family_dirty = (
                self._owner.store.index.devices_near_cells(
                    ctx.dirty_cells, self._owner.tracker.family_rings
                )
                if ctx.dirty_cells
                else set()
            )
            carry_clean = [j for j in targets if j not in family_dirty]
            if self.last_cache is not None:
                carry = MotionCache.carry_from(
                    self.last_cache, transition, carry_clean
                )
        if ctx.recompute:
            # The engine aggregates motion-family work across every
            # cache the run touched — shared and worker-process — so the
            # counters stay truthful under every backend.
            engine = self._owner.engine
            with tracer.span(self.name):
                run = engine.characterize_run(
                    transition,
                    devices=ctx.recompute,
                    cache=carry,
                    carry_clean=carry_clean,
                )
            fresh = run.verdicts
            ctx.families_recomputed = run.families_recomputed
            ctx.families_reused = run.families_reused
            self.last_cache = (
                engine.motion_cache if reuse_effective else None
            )
        else:
            fresh = {}
            self.last_cache = carry
        key_of = ctx.key_of
        merged: Dict[int, Characterization] = {}
        for j in targets:
            if j in fresh:
                verdict = fresh[j]
                if key_of is not None:
                    verdict = remap_characterization(verdict, key_of)
                merged[ctx.key(j)] = verdict
            else:
                merged[ctx.key(j)] = self.cache[ctx.key(j)]
        ctx.verdicts = merged
        self.cache = merged


class SinkStage:
    """``sinks``: fan the finished tick out to every attached sink."""

    name = "sinks"

    def __init__(self, sinks: List[Callable]) -> None:
        self.sinks = sinks

    def run(self, tick, tracer: Tracer) -> None:
        with tracer.span(self.name):
            for sink in self.sinks:
                sink(tick)


class TickPipeline:
    """An ordered run of the core per-tick stages over one context."""

    def __init__(self, stages: Sequence[object]) -> None:
        self.stages = list(stages)

    def run(self, ctx: TickContext, tracer: Tracer) -> TickContext:
        for stage in self.stages:
            stage.run(ctx, tracer)
        return ctx
