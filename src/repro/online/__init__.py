"""Online characterization service: events in, fresh verdicts out.

The batch drivers (:mod:`repro.simulation`, :mod:`repro.experiments`)
rebuild every spatial index and recompute every verdict each interval.
This package keeps a live population warm instead:

* :class:`~repro.online.grid.MutableGridIndex` — the incremental twin of
  :class:`~repro.core.geometry.GridIndex`: insert / remove / move in
  O(1), query-identical by contract;
* :class:`~repro.online.store.DeviceStateStore` — last two QoS snapshots
  and flag state per device, sharded by grid cell;
* :class:`~repro.online.dirty.DirtyRegionTracker` — maps a tick's
  updated cells to the flagged devices whose ``4r`` neighbourhoods could
  have changed (the paper's locality result read as an invalidation
  rule);
* :class:`~repro.online.service.OnlineCharacterizationService` — bounded
  ingest queue, batching and backpressure knobs
  (:class:`~repro.online.service.ServiceConfig`), pluggable sinks, and a
  per-tick verdict map equal to full batch recharacterization;
* :mod:`repro.online.replay` — drivers feeding recorded traces or
  synthetic load through the service;
* :mod:`repro.online.stages` — the tick pipeline decomposed into
  composable stage objects over a shared :class:`TickContext`;
* :mod:`repro.online.sharded` — spatial shards with per-tick halo
  exchange: N shard workers behind one
  :class:`~repro.online.sharded.ShardedService` front door, verdicts
  identical to one big service.

The tick pipeline is instrumented end to end through :mod:`repro.obs`:
every service owns a stage-span tracer (``service.tracer``), each
:class:`~repro.online.service.OnlineTick` carries a ``stage_seconds``
breakdown, and the registry accumulates per-stage latency histograms.

See DESIGN.md, sections "Online subsystem" and "Observability".
"""

from repro.online.dirty import DirtyRegionTracker
from repro.online.grid import MutableGridIndex
from repro.online.recovery import (
    CHECKPOINT_VERSION,
    Checkpoint,
    CheckpointWriter,
    ShardedCheckpoint,
    ShardedCheckpointWriter,
    checkpoint_path,
    latest_checkpoint,
    latest_sharded_checkpoint,
    list_checkpoints,
    list_sharded_checkpoints,
    load_checkpoint,
    load_sharded_checkpoint,
    prune_checkpoints,
    prune_sharded_checkpoints,
    restore_service,
    restore_sharded_service,
    save_checkpoint,
    save_sharded_checkpoint,
    sharded_manifest_path,
)
from repro.online.replay import (
    LoadGenerator,
    LoadProfile,
    OnlineReplayResult,
    diff_updates,
    drive_load,
    drive_load_measurements,
    replay_trace_online,
)
from repro.online.service import (
    BACKPRESSURE_POLICIES,
    VALIDATION_MODES,
    MetricsSink,
    OnlineCharacterizationService,
    OnlineTick,
    QosUpdate,
    ReportSink,
    ServiceConfig,
    ServiceStats,
)
from repro.online.sharded import (
    HaloTransitionBuildStage,
    ShardMap,
    ShardedService,
)
from repro.online.stages import (
    DetectStage,
    DirtyRegionStage,
    IndexUpdateStage,
    IngestDrainStage,
    SinkStage,
    TickContext,
    TickPipeline,
    TransitionBuildStage,
    VerdictStage,
)
from repro.online.store import AppliedUpdate, DeviceStateStore

__all__ = [
    "AppliedUpdate",
    "BACKPRESSURE_POLICIES",
    "CHECKPOINT_VERSION",
    "Checkpoint",
    "CheckpointWriter",
    "DetectStage",
    "DeviceStateStore",
    "DirtyRegionStage",
    "DirtyRegionTracker",
    "HaloTransitionBuildStage",
    "IndexUpdateStage",
    "IngestDrainStage",
    "LoadGenerator",
    "LoadProfile",
    "MetricsSink",
    "MutableGridIndex",
    "OnlineCharacterizationService",
    "OnlineReplayResult",
    "OnlineTick",
    "QosUpdate",
    "ReportSink",
    "ServiceConfig",
    "ServiceStats",
    "ShardMap",
    "ShardedCheckpoint",
    "ShardedCheckpointWriter",
    "ShardedService",
    "SinkStage",
    "TickContext",
    "TickPipeline",
    "TransitionBuildStage",
    "VALIDATION_MODES",
    "VerdictStage",
    "checkpoint_path",
    "diff_updates",
    "drive_load",
    "drive_load_measurements",
    "latest_checkpoint",
    "latest_sharded_checkpoint",
    "list_checkpoints",
    "list_sharded_checkpoints",
    "load_checkpoint",
    "load_sharded_checkpoint",
    "prune_checkpoints",
    "prune_sharded_checkpoints",
    "replay_trace_online",
    "restore_service",
    "restore_sharded_service",
    "save_checkpoint",
    "save_sharded_checkpoint",
    "sharded_manifest_path",
]
