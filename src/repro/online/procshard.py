"""Process topology: shard workers as supervised daemonic processes.

The thread topology (:mod:`repro.online.sharded`) anti-scales: every
``_ShardWorker`` pipeline shares the GIL, so four shards cost *more*
wall-clock than one.  This module moves whole shard workers out of the
GIL.  Each spatial shard becomes one long-lived **fork-context daemonic
process** hosting an ordinary ``_ShardWorker`` whose store partition
lives in shared-memory columnar planes
(:func:`repro.online.store.shm_planes_factory`); the front door ships
*commands* — global device ids, tick numbers, segment names — over a
duplex pipe, never pickled stores.

Protocol
--------
One tick is a fixed phase sequence, each phase one scatter/collect
roundtrip per shard: ``events``/``frame`` (ingest), ``movers`` →
``migrate_out`` → ``migrate_in`` (parent-mediated migration), ``halo``
(close dirty cells, publish the boundary band, reply segment names),
``verdict`` (read peer bands seq-gated, run the local pipeline, reply a
result dict).  Every mutating command carries its tick and the child
rolls the deferred snapshot (``advance_tick``) lazily at the *first*
command of the next tick — deferring the roll past the verdict is what
makes a kill-and-respawn recoverable: the shared-memory planes always
hold a consistent ``(S_{k-1}, partially-updated S_k)`` pair.

Supervision
-----------
The parent (:class:`_ProcessShardHandle` driven by
``ShardedService._collect_one``) reuses the engine pool's discipline:
a per-roundtrip ``dispatch_deadline`` catches hangs, EOF on the pipe
catches kills fast, and a failed roundtrip is retried
``dispatch_retries`` times against a respawned child that *adopts* the
planes its predecessor left in shared memory
(:meth:`DeviceStateStore.adopt_planes`).  Because in-memory state
(dirty tracker, verdict caches) dies with the child, the respawn
conservatively invalidates every alive cell — a superset dirty region
is exact, just slower for one tick — and every command handler is
idempotent under re-execution against partially-applied planes
(re-scatters no-op, evictions and admissions skip when already done).
Exhausted retries degrade the shard to an in-parent serial worker
(:class:`_InlineShardHandle`) running the *same* command handler —
degraded, never divergent.

Why ``fork``: children inherit the parent's modules, chaos plan and
resource tracker, so shared-memory create/attach/unlink registrations
pair up without manual tracking, and spawning costs one page-table
copy, not an interpreter boot.
"""

from __future__ import annotations

import multiprocessing
import time
import traceback
from dataclasses import replace
from multiprocessing import shared_memory
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.errors import (
    ConfigurationError,
    DimensionMismatchError,
    QueueFullError,
    UnknownDeviceError,
)
from repro.ipc import (
    SegmentReader,
    ShardDeadError,
    ShardTimeoutError,
    StaleHaloError,
    WorkerHandle,
    reap_worker,
    shutdown_worker,
    unlink_by_name,
)
from repro.obs.trace import Tracer
from repro.online.store import (
    NO_VERDICT,
    DeviceStateStore,
    attach_store_planes,
    shm_planes_factory,
)

__all__ = [
    "handle_command",
    "_FrameBoard",
    "_InlineShardHandle",
    "_ProcessShardHandle",
]

#: How long a consumer's seq gate spins for a peer's halo publication
#: before declaring the band unattributable.
_HALO_GATE_TIMEOUT = 10.0

#: Deadline for the child's post-fork "ready" handshake.
_READY_DEADLINE = 60.0

#: Child-raised exception classes the parent re-raises by name (every
#: other class surfaces as a RuntimeError carrying the child traceback).
_CHILD_ERRORS = {
    cls.__name__: cls
    for cls in (
        ConfigurationError,
        DimensionMismatchError,
        QueueFullError,
        UnknownDeviceError,
        StaleHaloError,
    )
}


def _serial_config(config):
    """The per-shard config a child runs under: daemonic processes
    cannot have children, so the local engine is forced serial."""
    return replace(
        config,
        backend="serial",
        workers=None,
        max_worker_tasks=None,
        dispatch_deadline=None,
    )


def _maybe_roll(store: DeviceStateStore, tick: int) -> None:
    """Roll the deferred ``S_{k-1} <- S_k`` snapshot copy lazily.

    A deferred-advance worker leaves tick ``k``'s verdict with
    ``tick_serial == k - 1``; the first mutating command of tick ``k+1``
    must roll *before* touching the current plane, or the update would
    corrupt the previous endpoint of every trajectory.
    """
    if store.tick_serial < tick - 1:
        store.advance_tick()


def _mark_recovered(worker) -> None:
    """Reinstate the respawn invariants on an adopted-planes worker.

    The planes carry rows, flags, verdict codes and the tick serial;
    everything in-memory — the dirty tracker's cell sets, the verdict
    cache — died with the predecessor.  Dirtying every alive cell on
    *both* snapshot planes (with the move carry, so next tick's
    ``prev``-shift invalidation is also covered) makes the lost
    bookkeeping a conservative superset: the ``prev``-plane cells are
    the old trajectory endpoints of any updates the dead child had
    already applied, the ``cur``-plane cells the new ones, so every
    verdict those updates could touch recomputes once, bit-identically.
    (The lost *carry* set — cells of the previous tick's moves — is
    covered at the front door, which re-unions the previous tick's
    global dirty set whenever a shard was respawned.)
    """
    store = worker.store
    codes = np.asarray(store.verdict_codes())
    rows = np.nonzero(codes != NO_VERDICT)[0]
    worker._verdict_rows = rows if rows.size else None
    ids = np.asarray(store.row_ids())
    alive = np.nonzero(ids >= 0)[0]
    if alive.size:
        cur_keys = store.index.keys_of_rows(alive)
        prev_plane, _ = store.snapshot_arrays()
        prev_keys = np.floor(prev_plane[alive] / store.index.cell).astype(
            np.int64
        )
        keys = np.concatenate([cur_keys, prev_keys])
        worker.tracker.invalidate_cells(
            map(tuple, np.unique(keys, axis=0).tolist())
        )


def _read_halo_sources(
    reader: SegmentReader, sources: Sequence[Dict[str, Any]], dim: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Copy the masked peer bands out of shared memory, seq-gated.

    Each source names a peer ring's ``(prev, cur)`` payload segments
    plus its header segment; the header's sequence slot is written
    *after* the payload, so observing the expected sequence **before**
    the copy proves the band is complete, and re-checking **after** the
    copy proves the publisher did not run ahead and overwrite it
    mid-read.  A late publisher (chaos delay, slow shard) stalls only
    this gate — the copy below it can never be stale.
    """
    ids_parts: List[np.ndarray] = []
    prev_parts: List[np.ndarray] = []
    cur_parts: List[np.ndarray] = []
    live: List[str] = []
    for src in sources:
        live.extend(src["live"])
    reader.evict_except(live)
    for src in sources:
        hdr = reader.array(src["hdr"], np.int64, 2)
        expected = int(src["seq"])
        deadline = time.monotonic() + _HALO_GATE_TIMEOUT
        while int(hdr[0]) != expected:
            if time.monotonic() > deadline:
                raise StaleHaloError(
                    f"halo band from shard {src['shard']} stuck at seq "
                    f"{int(hdr[0])}, expected {expected}"
                )
            time.sleep(0.0002)
        rows = int(src["rows"])
        take = np.asarray(src["take"], dtype=np.int64)
        prev = reader.array(src["prev"], np.float64, rows * dim).reshape(
            rows, dim
        )
        cur = reader.array(src["cur"], np.float64, rows * dim).reshape(
            rows, dim
        )
        prev_copy = prev[take].copy()
        cur_copy = cur[take].copy()
        if int(hdr[0]) != expected:
            raise StaleHaloError(
                f"halo band from shard {src['shard']} republished "
                f"(seq {int(hdr[0])}) while seq {expected} was being copied"
            )
        ids_parts.append(np.asarray(src["ids"], dtype=np.int64))
        prev_parts.append(prev_copy)
        cur_parts.append(cur_copy)
    if not ids_parts:
        empty = np.empty((0, dim), dtype=np.float64)
        return np.empty(0, dtype=np.int64), empty, empty
    return (
        np.concatenate(ids_parts),
        np.concatenate(prev_parts),
        np.concatenate(cur_parts),
    )


def handle_command(
    worker,
    op: str,
    tick: int,
    payload: Dict[str, Any],
    *,
    shard_map,
    halo_reader: SegmentReader,
    board_reader: SegmentReader,
    planes_factory,
):
    """Execute one front-door command against a deferred-advance worker.

    The single implementation both the child main loop and the degraded
    in-parent fallback (:class:`_InlineShardHandle`) run — supervision
    must never change *what* a shard computes, only where.  Every
    handler is idempotent under re-execution on partially-applied
    planes (the respawn-retry contract).
    """
    from repro.online.stages import TickContext
    from repro.online.sharded import _ctx_result

    store = worker.store
    if op == "state":
        # Checkpoints capture *completed* ticks: roll the deferred
        # advance so the cut is bit-identical to the thread topology's.
        if store.tick_serial < tick:
            store.advance_tick()
        return (
            store.state(),
            worker.tracker.state(),
            dict(worker.verdict_stage.cache),
        )
    if op == "query":
        what = payload["what"]
        if what == "frame":
            ids = np.asarray(store.row_ids())
            alive = np.nonzero(ids >= 0)[0]
            return (
                ids[alive].copy(),
                np.asarray(store.current_positions())[alive].copy(),
            )
        if what == "verdicts":
            return dict(worker.verdict_stage.cache)
        if what == "flagged":
            return store.flagged_devices()
        raise ConfigurationError(f"unknown shard query {what!r}")
    if op == "restore":
        new_store = DeviceStateStore.from_state(
            payload["store"], planes_factory=planes_factory
        )
        old = worker.store
        worker.store = new_store
        if old.planes is not None:
            old.release_planes(unlink=True)
        worker.tracker.restore_state(payload["tracker"])
        worker.verdict_stage.cache = dict(payload["verdicts"])
        worker.verdict_stage.last_cache = None
        worker.transition_stage.last_transition = None
        codes = np.asarray(new_store.verdict_codes())
        rows = np.nonzero(codes != NO_VERDICT)[0]
        worker._verdict_rows = rows if rows.size else None
        return None

    # Every mutating command below belongs to tick ``tick``; roll the
    # deferred snapshot from the previous tick before touching state.
    _maybe_roll(store, tick)

    if op == "events":
        ids = np.asarray(payload["ids"], dtype=np.int64)
        rows = np.fromiter(
            (store.row_of(int(j)) for j in ids.tolist()),
            dtype=np.int64,
            count=ids.shape[0],
        )
        applied = store.apply_rows(
            rows, payload["positions"], payload["flags"]
        )
        worker.tracker.mark_batch(applied, was_relevant=applied.was_flagged)
        return None
    if op == "frame":
        rows_total = int(payload["rows"])
        dim = store.dim
        board_reader.evict_except(payload["live"])
        board_cur = board_reader.array(
            payload["board"], np.float64, rows_total * dim
        ).reshape(rows_total, dim)
        board_flags = board_reader.array(
            payload["board"], np.bool_, rows_total, offset=rows_total * dim * 8
        )
        ids = np.asarray(store.row_ids())
        alive = np.nonzero(ids >= 0)[0]
        if alive.size == 0:
            return 0
        alive_ids = ids[alive]
        if int(alive_ids.max()) >= rows_total:
            raise DimensionMismatchError(
                "snapshot frame rows do not cover the fleet's global id "
                "range; feed churned populations through ingest/join/leave"
            )
        sub_cur = store.current_positions().copy()
        sub_flags = store.flag_vector().copy()
        sub_cur[alive] = board_cur[alive_ids]
        sub_flags[alive] = board_flags[alive_ids]
        return worker.index_stage.apply_diff(sub_cur, sub_flags, worker.tracer)
    if op == "movers":
        # Scan-only: eviction happens in the separate ``migrate_out``
        # phase, *after* the parent has durably received these records —
        # a kill between leave and reply must not lose devices.
        ids = np.asarray(store.row_ids())
        alive = np.nonzero(ids >= 0)[0]
        records: List[tuple] = []
        if alive.size:
            keys = store.index.keys_of_rows(alive)
            dest = shard_map.shard_of_keys(keys)
            off = np.nonzero(dest != worker.shard)[0]
            for i in off.tolist():
                device, prev, cur, flagged, code = store.row_state(
                    int(alive[i])
                )
                records.append((int(dest[i]), device, prev, cur, flagged, code))
        return records
    if op == "migrate_out":
        for device in payload["devices"]:
            if store.row_if_present(int(device)) is not None:
                store.leave(int(device))
        return None
    if op == "migrate_in":
        for device, prev, cur, flagged, code in payload["records"]:
            if store.row_if_present(int(device)) is None:
                store.admit(int(device), prev, cur, flagged, code)
        return None
    if op == "join":
        if store.row_if_present(int(payload["device"])) is None:
            store.join(
                int(payload["device"]),
                payload["position"],
                bool(payload["flagged"]),
            )
        return None
    if op == "leave":
        if store.row_if_present(int(payload["device"])) is not None:
            store.leave(int(payload["device"]))
        return None
    if op == "halo":
        cells = worker.tracker.finish_cells()
        worker.publish_halo(shard_map, seq=tick)
        return (cells, worker.channel.meta(worker.shard))
    if op == "verdict":
        halo_ids, halo_prev, halo_cur = _read_halo_sources(
            halo_reader, payload["sources"], store.dim
        )
        worker.transition_stage.stage_halo(halo_ids, halo_prev, halo_cur)
        ctx = TickContext(
            tick=tick,
            dirty_cells=tuple(map(tuple, payload["dirty"])),
        )
        worker.run_tick(ctx)
        return _ctx_result(worker, ctx)
    raise ConfigurationError(f"unknown shard command {op!r}")


def _reply_header(worker) -> Tuple[bool, Optional[str], int, int]:
    planes = worker.store.planes
    if planes is None:
        return (True, None, 0, worker.store.n)
    return (True, planes.name, planes.capacity, worker.store.n)


def _child_cleanup(worker, *, unlink: bool) -> None:
    try:
        worker.channel.close()
    except Exception:  # pragma: no cover - teardown best-effort
        pass
    try:
        worker.engine.close()
    except Exception:  # pragma: no cover
        pass
    try:
        if worker.store.planes is not None:
            worker.store.release_planes(unlink=unlink)
    except Exception:  # pragma: no cover
        pass


def _shard_child_main(
    conn, shard, config, dim, shard_map, init, trace_enabled
) -> None:
    """The shard-process entry point: build (or adopt) a worker, serve.

    ``init`` is ``("fresh", positions, ids)`` at service construction or
    ``("adopt", plane_name, capacity)`` on a supervised respawn.  The
    loop answers one command per message; a ``None`` sentinel (clean
    shutdown) and parent death (EOF) both unlink the owned segments.
    """
    from repro.online.sharded import _ShardWorker

    cfg = _serial_config(config)
    factory = shm_planes_factory()
    tracer = Tracer(enabled=trace_enabled)
    if init[0] == "fresh":
        _, positions, ids = init
        worker = _ShardWorker(
            shard,
            positions,
            ids,
            dim,
            cfg,
            tracer,
            planes_factory=factory,
            defer_advance=True,
        )
    else:
        _, plane_name, capacity = init
        planes = attach_store_planes(plane_name, capacity, dim)
        store = DeviceStateStore.adopt_planes(
            planes,
            cell=cfg.cell,
            shards=cfg.shards,
            planes_factory=factory,
        )
        worker = _ShardWorker(
            shard,
            None,
            None,
            dim,
            cfg,
            tracer,
            store=store,
            defer_advance=True,
        )
        _mark_recovered(worker)
    halo_reader = SegmentReader()
    board_reader = SegmentReader()
    try:
        conn.send(_reply_header(worker) + ("ready",))
        while True:
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                # Parent died without a sentinel: nobody left to clean
                # up by name, so unlink everything we own.
                _child_cleanup(worker, unlink=True)
                return
            if msg is None:
                _child_cleanup(worker, unlink=True)
                return
            op, tick, payload = msg
            # The parent has, by protocol, processed our previous reply
            # (and with it the current plane name) before sending this
            # command — segments retired by a grow are safe to drop.
            worker.store.drop_retired_planes()
            try:
                result = handle_command(
                    worker,
                    op,
                    tick,
                    payload,
                    shard_map=shard_map,
                    halo_reader=halo_reader,
                    board_reader=board_reader,
                    planes_factory=factory,
                )
                reply = _reply_header(worker) + (result,)
                ok = True
            except Exception as exc:
                reply = (
                    False,
                    None,
                    0,
                    0,
                    (type(exc).__name__, traceback.format_exc()),
                )
                ok = False
            hang = payload.get("_hang") if isinstance(payload, dict) else None
            if hang:
                time.sleep(float(hang))
            if not (isinstance(payload, dict) and payload.get("_drop_reply")):
                try:
                    conn.send(reply)
                except (BrokenPipeError, OSError):
                    _child_cleanup(worker, unlink=True)
                    return
            if ok and op == "halo":
                # Overlap: pre-gather the owned-row planes while the
                # parent is still collecting the peers' halo metadata.
                worker.transition_stage.prestage(tick)
    finally:
        halo_reader.close()
        board_reader.close()


class _ProcessShardHandle:
    """Parent-side handle over one shard process: pipe, planes, respawn.

    Tracks the out-of-band facts supervision needs: the current plane
    segment name and capacity (refreshed from every reply header, so a
    respawned child can adopt them), the child's live halo-ring segment
    names (unlinked by the parent after a kill — a killed child never
    cleans up), and the last *canonical* command (resent verbatim on
    retry; chaos decorations are never remembered).
    """

    def __init__(
        self, shard, config, dim, shard_map, positions, ids, trace_enabled
    ) -> None:
        self.shard = int(shard)
        self._config = config
        self._dim = int(dim)
        self._map = shard_map
        self._trace_enabled = bool(trace_enabled)
        self._ctx = multiprocessing.get_context("fork")
        self.plane_name: Optional[str] = None
        self.plane_capacity = 0
        self.n = int(positions.shape[0])
        self.ring_names: Tuple[str, ...] = ()
        self.respawns = 0
        self.last_msg: Optional[tuple] = None
        self.worker: Optional[WorkerHandle] = None
        self._spawn(
            (
                "fresh",
                np.ascontiguousarray(positions, dtype=np.float64),
                np.ascontiguousarray(ids, dtype=np.int64),
            )
        )

    def _spawn(self, init) -> None:
        parent_conn, child_conn = self._ctx.Pipe()
        proc = self._ctx.Process(
            target=_shard_child_main,
            args=(
                child_conn,
                self.shard,
                self._config,
                self._dim,
                self._map,
                init,
                self._trace_enabled,
            ),
            daemon=True,
            name=f"repro-shard-{self.shard}",
        )
        proc.start()
        child_conn.close()
        self.worker = WorkerHandle(process=proc, conn=parent_conn)
        ok, name, capacity, n, payload = self.recv(_READY_DEADLINE)
        if not ok or payload != "ready":
            raise ConfigurationError(
                f"shard {self.shard} worker failed to start: {payload!r}"
            )
        self.plane_name = name
        self.plane_capacity = int(capacity)
        self.n = int(n)

    def send(self, msg, *, canonical: Optional[tuple] = None) -> None:
        """Ship one command; remember its canonical form for retries.

        ``canonical`` strips chaos decorations (drop-reply/hang flags)
        so a supervised retry replays the *intended* command.  Send
        failures are swallowed — a dead child surfaces at :meth:`recv`,
        where the respawn logic lives.
        """
        self.last_msg = canonical if canonical is not None else msg
        try:
            self.worker.conn.send(msg)
        except (BrokenPipeError, OSError):
            pass

    def resend_last(self) -> None:
        try:
            self.worker.conn.send(self.last_msg)
        except (BrokenPipeError, OSError):
            pass

    def recv(self, deadline: Optional[float]):
        conn = self.worker.conn
        try:
            if deadline is not None and not conn.poll(deadline):
                raise ShardTimeoutError(
                    f"shard {self.shard} worker missed its "
                    f"{deadline}s dispatch deadline"
                )
            return conn.recv()
        except (EOFError, OSError) as exc:
            raise ShardDeadError(
                f"shard {self.shard} worker died mid-roundtrip"
            ) from exc

    def terminate_child(self) -> None:
        proc = self.worker.process
        if proc.is_alive():
            proc.terminate()

    def kill(self) -> Tuple[str, ...]:
        """Terminate and reap; returns the orphaned ring segment names."""
        self.terminate_child()
        reap_worker(self.worker)
        orphans = self.ring_names
        self.ring_names = ()
        return orphans

    def respawn(self) -> Tuple[str, ...]:
        """Kill and relaunch a child that adopts the surviving planes."""
        orphans = self.kill()
        self.respawns += 1
        self._spawn(("adopt", self.plane_name, self.plane_capacity))
        return orphans

    def shutdown(self) -> None:
        """Sentinel → join → close, then unlink any leftover segments."""
        shutdown_worker(self.worker)
        for name in (self.plane_name, *self.ring_names):
            if name:
                unlink_by_name(name)
        self.ring_names = ()


class _InlineShardHandle:
    """Degraded mode: the shard runs serially inside the front door.

    Swapped in when supervision exhausts its retries.  Speaks the same
    send/recv surface as :class:`_ProcessShardHandle` (so the phase
    loops don't branch) but executes :func:`handle_command` directly on
    an in-parent ``_ShardWorker`` at ``recv`` time; peer halo bands are
    still read from shared memory by name.  Chaos kill decorations are
    no-ops here — there is no process left to kill.
    """

    def __init__(self, worker, shard_map) -> None:
        self.shard = worker.shard
        self.inner = worker
        self._map = shard_map
        self._halo_reader = SegmentReader()
        self._board_reader = SegmentReader()
        self._pending: Optional[tuple] = None
        self.last_msg: Optional[tuple] = None
        self.plane_name: Optional[str] = None
        self.plane_capacity = 0
        self.ring_names: Tuple[str, ...] = ()
        self.respawns = 0

    @property
    def n(self) -> int:
        return self.inner.store.n

    def send(self, msg, *, canonical: Optional[tuple] = None) -> None:
        self._pending = canonical if canonical is not None else msg
        self.last_msg = self._pending

    def recv(self, deadline: Optional[float] = None):
        op, tick, payload = self._pending
        self._pending = None
        result = handle_command(
            self.inner,
            op,
            tick,
            payload,
            shard_map=self._map,
            halo_reader=self._halo_reader,
            board_reader=self._board_reader,
            planes_factory=None,
        )
        return (True, None, 0, self.inner.store.n, result)

    def terminate_child(self) -> None:
        pass

    def shutdown(self) -> None:
        self.inner.close()
        self._halo_reader.close()
        self._board_reader.close()


class _FrameBoard:
    """Parent-owned shm board fanning one global frame out to all shards.

    ``feed_snapshot``'s frame is indexed by global device id; instead of
    pickling per-shard slices down every pipe, the parent writes the
    whole ``(n, d)`` frame plus the flag vector into one segment and the
    children gather their residents' rows by id.  The segment is reused
    across ticks and regrown (under a new name) only when the fleet
    outgrows it.
    """

    def __init__(self) -> None:
        self._seg: Optional[shared_memory.SharedMemory] = None
        self._capacity = 0

    def publish(
        self, current: np.ndarray, flags: np.ndarray
    ) -> Tuple[str, int, int]:
        rows, dim = current.shape
        needed = rows * dim * 8 + rows
        if self._seg is None or self._capacity < needed:
            self.close()
            self._seg = shared_memory.SharedMemory(
                create=True, size=max(needed, 2 * self._capacity, 1)
            )
            self._capacity = self._seg.size
        np.copyto(
            np.frombuffer(self._seg.buf, dtype=np.float64, count=rows * dim),
            np.ascontiguousarray(current, dtype=np.float64).ravel(),
        )
        np.copyto(
            np.frombuffer(
                self._seg.buf, dtype=np.bool_, count=rows, offset=rows * dim * 8
            ),
            np.ascontiguousarray(flags, dtype=np.bool_),
        )
        return self._seg.name, rows, dim

    def close(self) -> None:
        if self._seg is not None:
            try:
                self._seg.close()
                self._seg.unlink()
            except (OSError, FileNotFoundError):  # pragma: no cover
                pass
            self._seg = None
            self._capacity = 0
