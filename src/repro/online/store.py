"""Columnar (structure-of-arrays) device state for the online service.

:class:`DeviceStateStore` is the service's system-state mirror: the last
two QoS snapshots (the ``S_{k-1}`` / ``S_k`` pair a
:class:`~repro.core.transition.Transition` needs), the flag bit
``a_k(j)``, the last verdict code, and a spatial shard — for every
device, as *columns*: two ``(capacity, d)`` position planes and a handful
of ``(capacity,)`` vectors.  There is no per-device Python object
anywhere in the store; a device is a row index.

Identifiers map to rows through an id↔row table with a LIFO free-list:
:meth:`join` reuses the most recently vacated row (best cache locality)
and :meth:`leave` scrubs the row before freeing it so reuse can never
resurrect stale positions or flags.  When the population is the initial
``0..n-1`` range (the common service case) ids and rows coincide and the
map costs nothing on the hot path.

The hot path itself is :meth:`apply_rows`: one gather/compare/scatter
over the tick's changed rows, one vectorized cell re-key in the adopted
:class:`~repro.online.grid.MutableGridIndex` (which shares the current
position plane zero-copy), and an :class:`AppliedBatch` of row vectors
for the dirty-region tracker.  The per-device :meth:`apply` survives as
a compatibility shim over a one-row batch.

:meth:`snapshot_arrays` and :meth:`current_positions` return *read-only
views* by default (``copy=True`` opts into a private copy); anything
that must outlive the tick — e.g. a published ``Transition`` — copies
explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.errors import (
    ConfigurationError,
    DimensionMismatchError,
    UnknownDeviceError,
)
from repro.core.geometry import validate_unit_cube
from repro.ipc import ShmPlanes
from repro.online.grid import CellKey, MutableGridIndex

__all__ = [
    "AppliedBatch",
    "AppliedUpdate",
    "DeviceStateStore",
    "SHARD_HASHES",
    "attach_store_planes",
    "shm_planes_factory",
    "stable_cell_hash",
    "store_plane_fields",
]

#: Verdict-code column value meaning "no verdict recorded".
NO_VERDICT = np.int8(-1)

#: Accepted ``DeviceStateStore`` shard-hash modes.  ``"splitmix64"`` is
#: the default: an explicit integer mix over zig-zag-packed cell
#: coordinates, identical across Python versions, processes and
#: checkpoint restores.  ``"legacy"`` keeps the historical
#: ``hash(cell_tuple) % shards`` placement (stable only within one
#: Python version's tuple-hash algorithm) for one release.
SHARD_HASHES = ("splitmix64", "legacy")

_SPLITMIX_GAMMA = np.uint64(0x9E3779B97F4A7C15)
_SPLITMIX_M1 = np.uint64(0xBF58476D1CE4E5B9)
_SPLITMIX_M2 = np.uint64(0x94D049BB133111EB)


def _splitmix64(x: np.ndarray) -> np.ndarray:
    """The splitmix64 finalizer over a uint64 array (vectorized)."""
    x = (x + _SPLITMIX_GAMMA).astype(np.uint64)
    x ^= x >> np.uint64(30)
    x *= _SPLITMIX_M1
    x ^= x >> np.uint64(27)
    x *= _SPLITMIX_M2
    x ^= x >> np.uint64(31)
    return x


def stable_cell_hash(keys: np.ndarray) -> np.ndarray:
    """Stable 64-bit hash of ``(k, d)`` integer cell keys.

    Each signed coordinate is zig-zag packed into uint64 and folded
    through the splitmix64 finalizer, one round per dimension.  The
    result depends only on the key values — never on Python's tuple
    hashing, which changed across interpreter versions and would move
    shard placement under a restored checkpoint.
    """
    arr = np.atleast_2d(np.asarray(keys, dtype=np.int64))
    # Zig-zag: map ..., -2, -1, 0, 1, 2, ... to 3, 1, 0, 2, 4, ...
    packed = ((arr << 1) ^ (arr >> 63)).astype(np.uint64)
    acc = np.full(packed.shape[0], np.uint64(0x8C2F9D3A6B41E875), dtype=np.uint64)
    with np.errstate(over="ignore"):
        for axis in range(packed.shape[1]):
            acc = _splitmix64(acc ^ packed[:, axis])
    return acc


# ----------------------------------------------------------------------
# Shared-memory plane layout.
#
# The process topology keeps each shard's partition in one shm segment
# so the partition outlives the worker process that mutates it: a killed
# worker's successor re-attaches by name and resumes from the exact row
# data its predecessor last scattered.  Header slots: [0] used high-water
# mark, [1] tick serial, [2] capacity, [3] dim — the two mutable scalars
# are written through on every change, the two fixed ones let an
# attacher recompute the layout from the segment alone.
# ----------------------------------------------------------------------
_HDR_USED, _HDR_SERIAL, _HDR_CAPACITY, _HDR_DIM = 0, 1, 2, 3


def store_plane_fields(dim: int):
    """The store's column layout as :class:`~repro.ipc.ShmPlanes` fields."""
    return (
        ("prev", np.float64, (dim,)),
        ("cur", np.float64, (dim,)),
        ("flags", np.bool_, ()),
        ("alive", np.bool_, ()),
        ("verdict", np.int8, ()),
        ("id_of", np.int64, ()),
        ("shard", np.int64, ()),
    )


def shm_planes_factory(*, unregister: bool = False):
    """A ``planes_factory`` allocating store columns in shared memory.

    Fork-context creators leave resource tracking alone (the shared
    tracker pairs create/attach registrations with the eventual unlink);
    ``unregister=True`` exists for spawn-context processes whose private
    tracker would unlink the segment at their exit.
    """

    def factory(capacity: int, dim: int) -> ShmPlanes:
        planes = ShmPlanes.create(
            capacity, store_plane_fields(dim), unregister=unregister
        )
        planes.header[_HDR_CAPACITY] = capacity
        planes.header[_HDR_DIM] = dim
        return planes

    return factory


def attach_store_planes(name: str, capacity: int, dim: int) -> ShmPlanes:
    """Attach an existing store plane segment by name."""
    return ShmPlanes.attach(name, capacity, store_plane_fields(dim))


@dataclass(frozen=True)
class AppliedUpdate:
    """What one :meth:`DeviceStateStore.apply` actually changed.

    The dirty-region tracker consumes exactly these facts: whether the
    device moved (and between which cells) and whether its flag bit
    toggled.
    """

    device: int
    moved: bool
    flag_changed: bool
    flagged: bool
    old_cell: CellKey
    new_cell: CellKey


@dataclass(frozen=True)
class AppliedBatch:
    """Row-vector description of one :meth:`DeviceStateStore.apply_rows`.

    All arrays are aligned: entry ``i`` describes ``rows[i]`` (device id
    ``ids[i]``).  ``old_keys`` / ``new_keys`` are ``(k, d)`` integer cell
    keys; the tracker only materializes tuples for the relevant subset.
    """

    rows: np.ndarray
    ids: np.ndarray
    moved: np.ndarray
    flag_changed: np.ndarray
    flagged: np.ndarray
    was_flagged: np.ndarray
    cell_changed: np.ndarray
    old_keys: np.ndarray
    new_keys: np.ndarray

    def __len__(self) -> int:
        return int(self.rows.shape[0])


class DeviceStateStore:
    """Last two snapshots + flag state for ``n`` devices, grid-sharded.

    Parameters
    ----------
    initial_positions:
        ``(n, d)`` QoS state at service start; both snapshots begin equal
        (every trajectory starts stationary).  Devices get ids (= rows)
        ``0..n-1``.
    cell:
        Grid-cell side for the spatial index and shard assignment
        (``max(2r, 1e-6)`` to match the transition indexes).
    shards:
        Number of shards; a device's shard is a stable hash of its
        current grid cell, so spatial neighbours co-locate.
    shard_hash:
        ``"splitmix64"`` (default) hashes cells with
        :func:`stable_cell_hash`, identical across Python versions and
        checkpoint restores; ``"legacy"`` keeps the historical
        ``hash(cell) % shards`` placement for one release.
    ids:
        Optional explicit device ids for the initial rows (defaults to
        ``0..n-1``).  A sharded topology builds each partition store
        with the global ids of its residents, so verdicts and
        checkpoints stay in one id space.
    """

    def __init__(
        self,
        initial_positions: np.ndarray,
        *,
        cell: float,
        shards: int = 8,
        shard_hash: str = "splitmix64",
        ids: Optional[np.ndarray] = None,
        planes_factory=None,
    ) -> None:
        pts = validate_unit_cube(np.asarray(initial_positions, dtype=float))
        if pts.ndim != 2 or pts.shape[0] < 1:
            raise DimensionMismatchError(
                "initial_positions must be a non-empty (n, d) array"
            )
        if shards < 1:
            raise ConfigurationError(
                f"store shards must be >= 1, got {shards!r}"
            )
        if shard_hash not in SHARD_HASHES:
            raise ConfigurationError(
                f"shard_hash must be one of {SHARD_HASHES}, got {shard_hash!r}"
            )
        n = pts.shape[0]
        self._cell = float(cell)
        self._shard_hash = shard_hash
        self._planes_factory = planes_factory
        self._planes: Optional[ShmPlanes] = None
        self.retired_planes: List[ShmPlanes] = []
        self._materialize(n, pts.shape[1])
        self._prev[:] = pts
        self._cur[:] = pts
        self._alive[:] = True
        # The index adopts the current-position plane zero-copy: the
        # store writes positions, the index keeps cell membership.
        self._index = MutableGridIndex.from_array(self._cur, cell)
        self._used = n  # high-water mark of ever-allocated rows
        self._free: List[int] = []  # LIFO row free-list
        if ids is None:
            self._id_of[:] = np.arange(n, dtype=np.int64)  # row -> id (-1 free)
            self._row_of: Dict[int, int] = {j: j for j in range(n)}
        else:
            id_arr = np.asarray(ids, dtype=np.int64)
            if id_arr.shape != (n,):
                raise DimensionMismatchError(
                    f"ids shape {id_arr.shape} incompatible with {n} rows"
                )
            if id_arr.min(initial=0) < 0:
                raise ConfigurationError("device ids must be >= 0")
            self._id_of[:] = id_arr
            self._row_of = {
                int(device): row for row, device in enumerate(id_arr.tolist())
            }
            if len(self._row_of) != n:
                raise ConfigurationError("device ids must be unique")
        self._tick_serial = 0
        self._n_shards = int(shards)
        self._shard_members: List[set] = [set() for _ in range(self._n_shards)]
        # One hash per *occupied cell*, not per device — cells are the
        # sharding unit, and there are far fewer of them.
        shard_of_key: Dict[CellKey, int] = {}
        keys = np.floor(pts / self._cell).astype(np.int64)
        for device, key in enumerate(map(tuple, keys.tolist())):
            shard = shard_of_key.get(key)
            if shard is None:
                shard = shard_of_key[key] = self._shard_for(key)
            self._shard[device] = shard
            self._shard_members[shard].add(device)
        self._sync_header()

    def _materialize(self, capacity: int, dim: int) -> None:
        """Point the columns at fresh zeroed backing of ``capacity`` rows.

        Heap arrays by default.  With a ``planes_factory`` installed the
        columns become views into one shared-memory segment (the process
        topology's crash-survivable partition); a previous segment, if
        any, is parked on ``retired_planes`` — its creator must keep it
        alive until the supervisor has learned the new segment's name,
        because a crash in between is recovered by re-attaching the
        *old* name.
        """
        if self._planes_factory is None:
            self._prev = np.zeros((capacity, dim), dtype=np.float64)
            self._cur = np.zeros((capacity, dim), dtype=np.float64)
            self._flags = np.zeros(capacity, dtype=bool)
            self._alive = np.zeros(capacity, dtype=bool)
            self._verdict = np.full(capacity, NO_VERDICT, dtype=np.int8)
            self._id_of = np.full(capacity, -1, dtype=np.int64)
            self._shard = np.zeros(capacity, dtype=np.int64)
            return
        planes = self._planes_factory(capacity, dim)
        if self._planes is not None:
            self.retired_planes.append(self._planes)
        self._planes = planes
        self._bind_planes(planes)
        self._verdict[:] = NO_VERDICT
        self._id_of[:] = -1

    def _bind_planes(self, planes: ShmPlanes) -> None:
        arrs = planes.arrays
        self._prev = arrs["prev"]
        self._cur = arrs["cur"]
        self._flags = arrs["flags"]
        self._alive = arrs["alive"]
        self._verdict = arrs["verdict"]
        self._id_of = arrs["id_of"]
        self._shard = arrs["shard"]

    def _sync_header(self) -> None:
        """Write-through the mutable scalars into the shm plane header."""
        if self._planes is not None:
            self._planes.header[_HDR_USED] = self._used
            self._planes.header[_HDR_SERIAL] = self._tick_serial

    @property
    def planes(self) -> Optional[ShmPlanes]:
        """The shm plane set backing the columns (``None`` on the heap)."""
        return self._planes

    def drop_retired_planes(self) -> None:
        """Unlink plane segments retired by growth (creator-side)."""
        for planes in self.retired_planes:
            planes.unlink()
        self.retired_planes = []

    def release_planes(self, *, unlink: bool) -> None:
        """Drop every shm view and close (optionally unlink) the planes.

        The worker-exit path: numpy views pin the mapping, so the
        columns and the adopted grid index must be dropped *before* the
        segment closes.  The store is unusable afterwards.
        """
        if self._planes is None:
            return
        planes, self._planes = self._planes, None
        self._prev = self._cur = None
        self._flags = self._alive = self._verdict = None
        self._id_of = self._shard = None
        self._index = None
        self._row_of = {}
        self.drop_retired_planes()
        if unlink:
            planes.unlink()
        else:
            planes.close()

    def _shard_for(self, key: CellKey) -> int:
        if self._shard_hash == "legacy":
            # Tuples of ints hash deterministically across processes of
            # one Python version, but the tuple-hash algorithm itself
            # has changed between versions — kept under the compat flag
            # only.
            return hash(key) % self._n_shards
        return int(
            stable_cell_hash(np.asarray(key, dtype=np.int64))[0]
            % np.uint64(self._n_shards)
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of live devices."""
        return len(self._row_of)

    @property
    def dim(self) -> int:
        """Number of services per device."""
        return self._cur.shape[1]

    @property
    def n_shards(self) -> int:
        """Number of shards."""
        return self._n_shards

    @property
    def shard_hash(self) -> str:
        """The cell→shard hash mode (``"splitmix64"`` or ``"legacy"``)."""
        return self._shard_hash

    @property
    def index(self) -> MutableGridIndex:
        """The incrementally maintained index over *current* positions."""
        return self._index

    @property
    def tick_serial(self) -> int:
        """Monotone counter bumped by each :meth:`advance_tick`.

        Consumers that chain ``prev = last tick's cur`` (the service's
        zero-extra-copy transition build) use this to detect a missed or
        doubled roll and fall back to a fresh copy.
        """
        return self._tick_serial

    @property
    def nbytes(self) -> int:
        """Total bytes held in the store's columns (capacity, not n)."""
        return int(
            self._prev.nbytes
            + self._cur.nbytes
            + self._flags.nbytes
            + self._alive.nbytes
            + self._verdict.nbytes
            + self._id_of.nbytes
            + self._shard.nbytes
        )

    @property
    def bytes_per_device(self) -> float:
        """Columnar bytes per live device."""
        return self.nbytes / max(1, self.n)

    def row_of(self, device: int) -> int:
        """The row currently backing ``device``."""
        row = self._row_of.get(device)
        if row is None:
            raise UnknownDeviceError(f"device {device} is not in the store")
        return row

    def row_if_present(self, device: int) -> Optional[int]:
        """The row backing ``device``, or ``None`` when unknown."""
        return self._row_of.get(device)

    def id_of(self, row: int) -> int:
        """The device id stored in ``row``."""
        if not 0 <= row < self._used or self._id_of[row] < 0:
            raise UnknownDeviceError(f"row {row} is not occupied")
        return int(self._id_of[row])

    def shard_of(self, device: int) -> int:
        """The shard currently holding ``device``."""
        return int(self._shard[self.row_of(device)])

    def shard_members(self, shard: int) -> Tuple[int, ...]:
        """Devices of one shard, sorted."""
        if not 0 <= shard < self._n_shards:
            raise ConfigurationError(
                f"shard {shard} not in [0, {self._n_shards})"
            )
        return tuple(
            sorted(int(self._id_of[row]) for row in self._shard_members[shard])
        )

    def shard_sizes(self) -> Tuple[int, ...]:
        """Device count per shard."""
        return tuple(len(members) for members in self._shard_members)

    def is_flagged(self, device: int) -> bool:
        """Current flag bit ``a_k(j)``."""
        return bool(self._flags[self.row_of(device)])

    def flagged_devices(self) -> Tuple[int, ...]:
        """All currently flagged devices, sorted by id."""
        rows = np.nonzero(self._flags[: self._used])[0]
        return tuple(sorted(int(self._id_of[row]) for row in rows))

    def flagged_rows(self) -> np.ndarray:
        """Rows of all currently flagged devices (ascending row order)."""
        return np.nonzero(self._flags[: self._used])[0]

    def flag_vector(self) -> np.ndarray:
        """Read-only view of the flag column over allocated rows."""
        view = self._flags[: self._used]
        view.flags.writeable = False
        return view

    def row_ids(self) -> np.ndarray:
        """Read-only view of the row→id column (−1 marks a free row).

        The sharded topology's partition view: a shard store built with
        explicit global ``ids`` exposes, per row, which global device it
        backs — the id map every local transition and checkpoint is
        keyed through.
        """
        view = self._id_of[: self._used]
        view.flags.writeable = False
        return view

    def row_state(
        self, row: int
    ) -> Tuple[int, np.ndarray, np.ndarray, bool, int]:
        """One row's full migratable state.

        ``(device, prev, cur, flagged, verdict_code)`` — exactly what
        :meth:`admit` on another store needs to take the device over
        without restarting its trajectory.  Positions are copies.
        """
        device = self.id_of(row)
        return (
            device,
            self._prev[row].copy(),
            self._cur[row].copy(),
            bool(self._flags[row]),
            int(self._verdict[row]),
        )

    def verdict_codes(self) -> np.ndarray:
        """Read-only view of the verdict-code column (−1 = none)."""
        view = self._verdict[: self._used]
        view.flags.writeable = False
        return view

    def set_verdict_codes(self, rows: np.ndarray, codes: np.ndarray) -> None:
        """Record verdict codes for ``rows`` (int8; −1 clears)."""
        self._verdict[np.asarray(rows, dtype=np.int64)] = np.asarray(
            codes, dtype=np.int8
        )

    def snapshot_arrays(
        self, *, copy: bool = False
    ) -> Tuple[np.ndarray, np.ndarray]:
        """``(S_{k-1}, S_k)`` over allocated rows.

        Read-only views by default — zero-copy, valid until the next
        mutation.  Pass ``copy=True`` for private copies safe to freeze
        into a long-lived :class:`~repro.core.transition.Transition`.
        """
        if copy:
            return self._prev[: self._used].copy(), self._cur[: self._used].copy()
        prev = self._prev[: self._used]
        cur = self._cur[: self._used]
        prev.flags.writeable = False
        cur.flags.writeable = False
        return prev, cur

    def current_positions(self, *, copy: bool = False) -> np.ndarray:
        """Current ``(n, d)`` positions over allocated rows.

        The service diffs incoming snapshots against this instead of the
        caller's remembered ``previous`` array, so mid-tick ingests can
        never desynchronize the store from the fed stream.  A read-only
        view by default (the diff runs every tick); ``copy=True`` opts
        into a private copy.
        """
        if copy:
            return self._cur[: self._used].copy()
        view = self._cur[: self._used]
        view.flags.writeable = False
        return view

    def position(self, device: int) -> np.ndarray:
        """Current position of ``device`` (a copy)."""
        return self._cur[self.row_of(device)].copy()

    # ------------------------------------------------------------------
    # Membership (join / leave with row reuse)
    # ------------------------------------------------------------------
    def join(
        self, device: int, position: Sequence[float], flagged: bool = False
    ) -> int:
        """Admit a device, reusing a freed row if one exists.

        Both snapshots start at ``position`` (a new trajectory is
        stationary).  Returns the backing row.
        """
        if device in self._row_of:
            raise ConfigurationError(f"device {device} is already stored")
        if device < 0:
            raise ConfigurationError(f"device id must be >= 0, got {device!r}")
        pos = validate_unit_cube(np.asarray(position, dtype=float))
        if pos.shape != (self.dim,):
            raise DimensionMismatchError(
                f"position shape {pos.shape} incompatible with dim {self.dim}"
            )
        if self._free:
            row = self._free.pop()
        else:
            if self._used == self._cur.shape[0]:
                self._grow(max(4, 2 * self._cur.shape[0]))
            row = self._used
            self._used += 1
        self._prev[row] = pos
        self._cur[row] = pos
        self._flags[row] = bool(flagged)
        self._verdict[row] = NO_VERDICT
        self._alive[row] = True
        self._id_of[row] = device
        self._row_of[device] = row
        key = self._index.insert(row, pos)
        shard = self._shard_for(key)
        self._shard[row] = shard
        self._shard_members[shard].add(row)
        self._sync_header()
        return row

    def admit(
        self,
        device: int,
        prev: Sequence[float],
        cur: Sequence[float],
        flagged: bool = False,
        verdict_code: int = int(NO_VERDICT),
    ) -> int:
        """Admit a device mid-trajectory, with distinct snapshot endpoints.

        The migration path of a sharded topology: a device crossing a
        shard boundary must arrive with its *previous* position intact —
        :meth:`join` would restart its trajectory as stationary
        (``prev = cur``), silently erasing the very move that made it
        cross.  Returns the backing row.
        """
        row = self.join(device, cur, flagged)
        prev_pos = validate_unit_cube(np.asarray(prev, dtype=float))
        if prev_pos.shape != (self.dim,):
            raise DimensionMismatchError(
                f"prev shape {prev_pos.shape} incompatible with dim {self.dim}"
            )
        self._prev[row] = prev_pos
        self._verdict[row] = np.int8(verdict_code)
        return row

    def leave(self, device: int) -> int:
        """Evict a device, scrubbing and freeing its row.

        The row is zeroed (positions, flag, verdict) *before* it enters
        the free-list, so a later :meth:`join` can never observe the
        departed device's state.  Returns the freed row.
        """
        row = self.row_of(device)
        self._index.remove(row)
        self._shard_members[int(self._shard[row])].discard(row)
        self._prev[row] = 0.0
        self._cur[row] = 0.0
        self._flags[row] = False
        self._verdict[row] = NO_VERDICT
        self._alive[row] = False
        self._id_of[row] = -1
        del self._row_of[device]
        self._free.append(row)
        return row

    def _grow(self, capacity: int) -> None:
        """Reallocate all columns to ``capacity`` rows and rebind the index."""
        old = self._cur.shape[0]
        d = self.dim
        olds = (
            self._prev,
            self._cur,
            self._flags,
            self._alive,
            self._verdict,
            self._id_of,
            self._shard,
        )
        self._materialize(capacity, d)
        news = (
            self._prev,
            self._cur,
            self._flags,
            self._alive,
            self._verdict,
            self._id_of,
            self._shard,
        )
        for new, prev in zip(news, olds):
            new[:old] = prev
        self._index.rebind(self._cur)
        self._sync_header()

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def apply_rows(
        self, rows: np.ndarray, positions: np.ndarray, flags: np.ndarray
    ) -> AppliedBatch:
        """Apply one tick's reports for ``rows`` in a single vectorized pass.

        ``rows`` must be unique, occupied row indices; ``positions`` is
        the matching ``(k, d)`` new state and ``flags`` the matching flag
        bits.  Gathers old state, scatters new state, re-keys movers in
        the index, and reassigns shards only for the (few) devices that
        crossed a cell boundary.  No per-device Python objects are
        created on this path.
        """
        rows = np.asarray(rows, dtype=np.int64)
        k = rows.shape[0]
        positions = np.asarray(positions, dtype=float)
        flags = np.asarray(flags, dtype=bool)
        if positions.shape != (k, self.dim) or flags.shape != (k,):
            raise DimensionMismatchError(
                f"batch shapes {positions.shape}/{flags.shape} incompatible "
                f"with {k} rows of dim {self.dim}"
            )
        if k and (
            rows.min() < 0
            or rows.max() >= self._used
            or not self._alive[rows].all()
        ):
            bad = rows[(rows < 0) | (rows >= self._used)]
            if bad.size == 0:
                bad = rows[~self._alive[rows]]
            raise UnknownDeviceError(f"row {int(bad[0])} is not occupied")
        validate_unit_cube(positions)

        moved = np.any(positions != self._cur[rows], axis=1)
        was_flagged = self._flags[rows].copy()
        flag_changed = flags != was_flagged
        old_keys = self._index.keys_of_rows(rows)
        new_keys = old_keys
        cell_changed = np.zeros(k, dtype=bool)
        if moved.any():
            moved_rows = rows[moved]
            self._cur[moved_rows] = positions[moved]
            _, moved_new, moved_changed = self._index.move_rows(moved_rows)
            new_keys = old_keys.copy()
            new_keys[moved] = moved_new
            cell_changed[moved] = moved_changed
            if moved_changed.any():
                self._reshard(moved_rows[moved_changed], moved_new[moved_changed])
        self._flags[rows] = flags
        return AppliedBatch(
            rows=rows,
            ids=self._id_of[rows],
            moved=moved,
            flag_changed=flag_changed,
            flagged=flags,
            was_flagged=was_flagged,
            cell_changed=cell_changed,
            old_keys=old_keys,
            new_keys=new_keys,
        )

    def _reshard(self, rows: np.ndarray, keys: np.ndarray) -> None:
        """Re-bucket the rows whose grid cell changed this batch.

        A small Python loop on purpose: sharding is one stable cell hash
        (splitmix64 by default, asserted stable by the tests) and only
        the handful of cell-crossing movers per tick pay it.
        """
        for row, key in zip(rows.tolist(), map(tuple, keys.tolist())):
            new_shard = self._shard_for(key)
            old_shard = int(self._shard[row])
            if new_shard != old_shard:
                self._shard_members[old_shard].discard(row)
                self._shard_members[new_shard].add(row)
                self._shard[row] = new_shard

    def apply(
        self, device: int, position: Sequence[float], flagged: bool
    ) -> AppliedUpdate:
        """Apply one QoS report and describe what changed.

        Compatibility shim over a one-row :meth:`apply_rows` batch.
        """
        row = self.row_of(device)
        pos = validate_unit_cube(np.asarray(position, dtype=float))
        if pos.shape != (self.dim,):
            raise DimensionMismatchError(
                f"position shape {pos.shape} incompatible with dim {self.dim}"
            )
        batch = self.apply_rows(
            np.array([row], dtype=np.int64),
            pos.reshape(1, -1),
            np.array([bool(flagged)]),
        )
        return AppliedUpdate(
            device=device,
            moved=bool(batch.moved[0]),
            flag_changed=bool(batch.flag_changed[0]),
            flagged=bool(flagged),
            old_cell=tuple(batch.old_keys[0].tolist()),
            new_cell=tuple(batch.new_keys[0].tolist()),
        )

    def advance_tick(self) -> None:
        """Roll ``S_k`` into ``S_{k-1}`` (one vectorized copy)."""
        np.copyto(self._prev[: self._used], self._cur[: self._used])
        self._tick_serial += 1
        self._sync_header()

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def state(self) -> Dict[str, np.ndarray]:
        """The store's full state as plain arrays (trimmed to used rows).

        Everything derived — the grid index, the shard assignment, the
        id→row map — is rebuilt by :meth:`from_state`, so only the
        columns, the free-list and the scalars travel.
        """
        return {
            "prev": self._prev[: self._used].copy(),
            "cur": self._cur[: self._used].copy(),
            "flags": self._flags[: self._used].copy(),
            "alive": self._alive[: self._used].copy(),
            "verdict": self._verdict[: self._used].copy(),
            "id_of": self._id_of[: self._used].copy(),
            "free": np.asarray(self._free, dtype=np.int64),
            "cell": np.float64(self._cell),
            "n_shards": np.int64(self._n_shards),
            "shard_hash": np.str_(self._shard_hash),
            "tick_serial": np.int64(self._tick_serial),
        }

    @classmethod
    def from_state(
        cls, state: Dict[str, np.ndarray], *, planes_factory=None
    ) -> "DeviceStateStore":
        """Rebuild a store from :meth:`state` output, bit-identically.

        ``planes_factory`` restores the columns into shared memory (the
        process topology's restore path) instead of heap arrays.
        """
        store = cls.__new__(cls)
        store._cell = float(state["cell"])
        # Checkpoints written before the stable-hash migration carry no
        # mode marker; they were placed with the legacy tuple hash.
        store._shard_hash = (
            str(state["shard_hash"]) if "shard_hash" in state else "legacy"
        )
        store._planes_factory = planes_factory
        store._planes = None
        store.retired_planes = []
        cur = np.asarray(state["cur"], dtype=float)
        store._materialize(cur.shape[0], cur.shape[1])
        store._prev[:] = np.asarray(state["prev"], dtype=float)
        store._cur[:] = cur
        store._flags[:] = np.asarray(state["flags"], dtype=bool)
        store._alive[:] = np.asarray(state["alive"], dtype=bool)
        store._verdict[:] = np.asarray(state["verdict"], dtype=np.int8)
        store._id_of[:] = np.asarray(state["id_of"], dtype=np.int64)
        store._free = [int(r) for r in np.asarray(state["free"]).tolist()]
        store._used = store._cur.shape[0]
        store._tick_serial = int(state["tick_serial"])
        store._sync_header()
        store._row_of = {
            int(device): row
            for row, device in enumerate(store._id_of.tolist())
            if device >= 0
        }
        # The index adopts every row 0..used-1; scrubbed free rows must
        # not haunt cell (0, ..., 0), so they are removed explicitly.
        store._index = MutableGridIndex.from_array(store._cur, store._cell)
        for row in store._free:
            store._index.remove(row)
        store._n_shards = int(state["n_shards"])
        store._shard_members = [set() for _ in range(store._n_shards)]
        store._shard = np.zeros(store._used, dtype=np.int64)
        alive_rows = np.nonzero(store._alive)[0]
        keys = np.floor(store._cur[alive_rows] / store._cell).astype(np.int64)
        shard_of_key: Dict[CellKey, int] = {}
        for row, key in zip(alive_rows.tolist(), map(tuple, keys.tolist())):
            shard = shard_of_key.get(key)
            if shard is None:
                shard = shard_of_key[key] = store._shard_for(key)
            store._shard[row] = shard
            store._shard_members[shard].add(row)
        return store

    @classmethod
    def adopt_planes(
        cls,
        planes: ShmPlanes,
        *,
        cell: float,
        shards: int = 8,
        shard_hash: str = "splitmix64",
        planes_factory=None,
    ) -> "DeviceStateStore":
        """Rebind a store onto existing shm planes without copying rows.

        The respawn path of the process topology: a freshly forked shard
        worker adopts the partition its killed predecessor left in
        shared memory.  Row data, the used high-water mark, and the tick
        serial come straight from the segment; everything derived — the
        id→row map, the free-list, the grid index, the shard buckets —
        is rebuilt.  The free-list's LIFO *order* does not survive (only
        its membership); the sharded topology never observes it because
        participants rank by global id, and callers that do need the
        exact recycling order restore from a checkpoint instead.
        """
        store = cls.__new__(cls)
        store._cell = float(cell)
        store._shard_hash = shard_hash
        store._planes_factory = planes_factory
        store._planes = planes
        store.retired_planes = []
        store._bind_planes(planes)
        store._used = int(planes.header[_HDR_USED])
        store._tick_serial = int(planes.header[_HDR_SERIAL])
        id_list = store._id_of[: store._used].tolist()
        store._row_of = {
            int(device): row for row, device in enumerate(id_list) if device >= 0
        }
        store._free = [row for row, device in enumerate(id_list) if device < 0]
        # The index adopts the *full-capacity* plane — not just the
        # used-rows view — because a later ``join`` may claim row
        # ``_used`` without triggering a plane grow (capacity > used),
        # and an external index refuses inserts beyond its bound extent.
        # Rows that never held a device are de-indexed exactly like
        # freed rows; a genuine grow rebinds as usual.
        store._index = MutableGridIndex.from_array(store._cur, store._cell)
        for row in store._free:
            store._index.remove(row)
        for row in range(store._used, store._cur.shape[0]):
            store._index.remove(row)
        store._n_shards = int(shards)
        store._shard_members = [set() for _ in range(store._n_shards)]
        alive_rows = np.nonzero(store._alive[: store._used])[0]
        keys = np.floor(store._cur[alive_rows] / store._cell).astype(np.int64)
        shard_of_key: Dict[CellKey, int] = {}
        for row, key in zip(alive_rows.tolist(), map(tuple, keys.tolist())):
            shard = shard_of_key.get(key)
            if shard is None:
                shard = shard_of_key[key] = store._shard_for(key)
            store._shard[row] = shard
            store._shard_members[shard].add(row)
        return store

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DeviceStateStore(n={self.n}, d={self.dim}, "
            f"shards={self._n_shards}, "
            f"flagged={int(self._flags[: self._used].sum())})"
        )
