"""Sharded per-device state for the online characterization service.

:class:`DeviceStateStore` is the service's system-state mirror: for every
device it holds the last two QoS snapshots (the ``S_{k-1}`` / ``S_k``
pair a :class:`~repro.core.transition.Transition` needs), the current
flag bit ``a_k(j)``, and a spatial home — devices are *sharded by grid
cell*, so devices that are close in the QoS space land in the same shard
and a tick's updates can be applied shard by shard with good locality.

The store is deliberately dumb about time: callers apply updates one at
a time (:meth:`apply`), then :meth:`advance_tick` rolls the current
snapshot into the previous one.  Devices that did not report keep their
position — a silent gateway has, as far as anyone can tell, a stationary
trajectory.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.core.errors import (
    ConfigurationError,
    DimensionMismatchError,
    UnknownDeviceError,
)
from repro.core.geometry import validate_unit_cube
from repro.online.grid import CellKey, MutableGridIndex

__all__ = ["AppliedUpdate", "DeviceStateStore"]


@dataclass(frozen=True)
class AppliedUpdate:
    """What one :meth:`DeviceStateStore.apply` actually changed.

    The dirty-region tracker consumes exactly these facts: whether the
    device moved (and between which cells) and whether its flag bit
    toggled.
    """

    device: int
    moved: bool
    flag_changed: bool
    flagged: bool
    old_cell: CellKey
    new_cell: CellKey


class DeviceStateStore:
    """Last two snapshots + flag state for ``n`` devices, grid-sharded.

    Parameters
    ----------
    initial_positions:
        ``(n, d)`` QoS state at service start; both snapshots begin equal
        (every trajectory starts stationary).
    cell:
        Grid-cell side for the spatial index and shard assignment
        (``max(2r, 1e-6)`` to match the transition indexes).
    shards:
        Number of shards; a device's shard is a stable hash of its
        current grid cell, so spatial neighbours co-locate.
    """

    def __init__(
        self, initial_positions: np.ndarray, *, cell: float, shards: int = 8
    ) -> None:
        pts = validate_unit_cube(np.asarray(initial_positions, dtype=float))
        if pts.ndim != 2 or pts.shape[0] < 1:
            raise DimensionMismatchError(
                "initial_positions must be a non-empty (n, d) array"
            )
        if shards < 1:
            raise ConfigurationError(f"shards must be >= 1, got {shards!r}")
        self._prev = pts.copy()
        self._cur = pts.copy()
        self._flags = np.zeros(pts.shape[0], dtype=bool)
        self._index = MutableGridIndex.from_points(pts, cell)
        self._n_shards = int(shards)
        self._shard_members: List[set] = [set() for _ in range(self._n_shards)]
        self._shard_of = np.empty(pts.shape[0], dtype=np.int64)
        # One hash per *occupied cell*, not per device — cells are the
        # sharding unit, and there are far fewer of them.
        shard_of_key = {}
        for device in range(pts.shape[0]):
            key = self._index.key_of(device)
            shard = shard_of_key.get(key)
            if shard is None:
                shard = shard_of_key[key] = self._shard_for(key)
            self._shard_of[device] = shard
            self._shard_members[shard].add(device)

    def _shard_for(self, key: CellKey) -> int:
        # Tuples of ints hash deterministically across processes, so
        # shard placement is stable run to run.
        return hash(key) % self._n_shards

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of devices."""
        return self._cur.shape[0]

    @property
    def dim(self) -> int:
        """Number of services per device."""
        return self._cur.shape[1]

    @property
    def n_shards(self) -> int:
        """Number of shards."""
        return self._n_shards

    @property
    def index(self) -> MutableGridIndex:
        """The incrementally maintained index over *current* positions."""
        return self._index

    def shard_of(self, device: int) -> int:
        """The shard currently holding ``device``."""
        self._check_device(device)
        return int(self._shard_of[device])

    def shard_members(self, shard: int) -> Tuple[int, ...]:
        """Devices of one shard, sorted."""
        if not 0 <= shard < self._n_shards:
            raise ConfigurationError(
                f"shard {shard} not in [0, {self._n_shards})"
            )
        return tuple(sorted(self._shard_members[shard]))

    def shard_sizes(self) -> Tuple[int, ...]:
        """Device count per shard."""
        return tuple(len(members) for members in self._shard_members)

    def is_flagged(self, device: int) -> bool:
        """Current flag bit ``a_k(j)``."""
        self._check_device(device)
        return bool(self._flags[device])

    def flagged_devices(self) -> Tuple[int, ...]:
        """All currently flagged devices, sorted."""
        return tuple(int(j) for j in np.nonzero(self._flags)[0])

    def snapshot_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """Copies of ``(S_{k-1}, S_k)`` safe to freeze into a Transition."""
        return self._prev.copy(), self._cur.copy()

    def current_positions(self) -> np.ndarray:
        """Read-only view of the current ``(n, d)`` positions.

        The service diffs incoming snapshots against this instead of the
        caller's remembered ``previous`` array, so mid-tick ingests can
        never desynchronize the store from the fed stream.  A view (not
        a copy) because the diff is read-only and runs every tick.
        """
        view = self._cur.view()
        view.flags.writeable = False
        return view

    def position(self, device: int) -> np.ndarray:
        """Current position of ``device`` (a copy)."""
        self._check_device(device)
        return self._cur[device].copy()

    def _check_device(self, device: int) -> None:
        if not 0 <= device < self.n:
            raise UnknownDeviceError(f"device {device} not in [0, {self.n})")

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def apply(
        self, device: int, position: Sequence[float], flagged: bool
    ) -> AppliedUpdate:
        """Apply one QoS report and describe what changed."""
        self._check_device(device)
        pos = validate_unit_cube(np.asarray(position, dtype=float))
        if pos.shape != (self.dim,):
            raise DimensionMismatchError(
                f"position shape {pos.shape} incompatible with dim {self.dim}"
            )
        moved = not np.array_equal(pos, self._cur[device])
        old_cell = self._index.key_of(device)
        new_cell = old_cell
        if moved:
            self._cur[device] = pos
            old_cell, new_cell = self._index.move(device, pos)
            if new_cell != old_cell:
                new_shard = self._shard_for(new_cell)
                old_shard = int(self._shard_of[device])
                if new_shard != old_shard:
                    self._shard_members[old_shard].discard(device)
                    self._shard_members[new_shard].add(device)
                    self._shard_of[device] = new_shard
        flag_changed = bool(flagged) != bool(self._flags[device])
        self._flags[device] = bool(flagged)
        return AppliedUpdate(
            device=device,
            moved=moved,
            flag_changed=flag_changed,
            flagged=bool(flagged),
            old_cell=old_cell,
            new_cell=new_cell,
        )

    def advance_tick(self) -> None:
        """Roll ``S_k`` into ``S_{k-1}`` (one vectorized copy)."""
        np.copyto(self._prev, self._cur)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DeviceStateStore(n={self.n}, d={self.dim}, "
            f"shards={self._n_shards}, flagged={int(self._flags.sum())})"
        )
