"""The online characterization service: events in, fresh verdicts out.

Where the batch drivers rebuild the world every interval, the service
keeps it warm:

* per-device QoS reports arrive as :class:`QosUpdate` events through a
  *bounded* ingest queue (``queue_capacity``) with a configurable
  backpressure policy — ``"block"`` applies queued work inline to make
  room (the single-process analogue of blocking the producer),
  ``"drop-oldest"`` sheds load, ``"error"`` raises
  :class:`~repro.core.errors.QueueFullError`;
* :meth:`OnlineCharacterizationService.end_tick` drains the queue in
  batches of ``max_batch``, applies them to the columnar
  :class:`~repro.online.store.DeviceStateStore` as vectorized row
  batches (order-preserving segments, so a device reporting twice keeps
  last-write-wins semantics), and lets the
  :class:`~repro.online.dirty.DirtyRegionTracker` accumulate the touched
  grid cells;
* only the *affected* flagged devices — those within the dirty cells'
  ``4r`` influence band, plus any flagged device without a cached
  verdict — are recomputed through the shared
  :class:`~repro.engine.CharacterizationEngine`; everyone else's verdict
  is served from cache, which the locality argument guarantees is still
  exact;
* when the flagged set is unchanged from the previous tick, the previous
  transition's current-side grid index is adopted as the new
  transition's ``prev`` index (the :class:`Transition` reuse path), so
  quiet ticks skip half the index work too;
* finished ticks are pushed to pluggable *sinks* (reports, metrics —
  any callable).

Verdict identity with batch recharacterization is the contract: on any
update stream, the verdict map after ``end_tick`` equals what a fresh
engine pass over all flagged devices of the same transition would
produce (type, rule and witness; cost counters are artifacts of *when* a
verdict was computed).  ``tests/online`` enforces this on seeded and
randomized runs.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.core.errors import (
    ConfigurationError,
    DimensionMismatchError,
    QueueFullError,
)
from repro.core.neighborhood import MotionCache
from repro.core.transition import Transition
from repro.core.types import AnomalyType, Characterization
from repro.detection.banks import BankDetection, DetectorBank, DetectorLike, as_bank
from repro.engine import CharacterizationEngine, EngineConfig
from repro.engine.config import BACKENDS
from repro.obs.metrics import Registry, get_registry
from repro.obs.trace import Tracer
from repro.online.dirty import DirtyRegionTracker
from repro.online.stages import (
    DetectStage,
    DirtyRegionStage,
    IndexUpdateStage,
    IngestDrainStage,
    SinkStage,
    TickContext,
    TickPipeline,
    TransitionBuildStage,
    VerdictStage,
)
from repro.online.store import DeviceStateStore
from repro.robust.chaos import get_injector

__all__ = [
    "BACKPRESSURE_POLICIES",
    "VALIDATION_MODES",
    "MetricsSink",
    "OnlineCharacterizationService",
    "OnlineTick",
    "QosUpdate",
    "ReportSink",
    "ServiceConfig",
    "ServiceStats",
]

#: Accepted ``ServiceConfig.backpressure`` values.
BACKPRESSURE_POLICIES = ("block", "drop-oldest", "error")

#: Accepted ``ServiceConfig.validation`` values.
VALIDATION_MODES = ("strict", "sanitize")

#: Stable int8 encoding of verdict types for the store's verdict column.
_VERDICT_CODE = {kind: np.int8(i) for i, kind in enumerate(AnomalyType)}


@dataclass(frozen=True)
class QosUpdate:
    """One device report: position in the QoS cube plus the flag bit."""

    device: int
    position: Tuple[float, ...]
    flagged: bool = False

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "position", tuple(float(x) for x in self.position)
        )
        object.__setattr__(self, "device", int(self.device))
        object.__setattr__(self, "flagged", bool(self.flagged))


@dataclass(frozen=True)
class ServiceConfig:
    """Knobs of an :class:`OnlineCharacterizationService`.

    Attributes
    ----------
    r, tau:
        Characterization parameters of every transition the service
        builds.
    shards:
        *Store* shard count — the hash-shard fan-out inside each
        :class:`~repro.online.store.DeviceStateStore`, not the spatial
        topology (that is ``ShardedService``'s ``topology_shards``).
    queue_capacity:
        Bound on the ingest queue.
    max_batch:
        Updates applied per drain pass inside :meth:`end_tick` (``None``
        drains everything in one pass); a knob for jitter control when a
        tick carries very large bursts.
    backpressure:
        ``"block"`` (apply queued updates inline to make room),
        ``"drop-oldest"`` (shed the oldest queued event), or ``"error"``
        (raise :class:`QueueFullError`).
    incremental:
        When true (default) only affected verdicts are recomputed each
        tick; when false every flagged device is recomputed — the
        always-correct baseline the benchmarks compare against.
    reuse_indexes:
        Adopt the previous transition's current-side grid index when the
        flagged set is unchanged.
    reuse_motions:
        Carry motion families of devices outside the dirty cell-rings
        from the previous tick's cache into the next tick's
        (:meth:`~repro.core.neighborhood.MotionCache.carry_from`), so
        recomputed verdicts near a dirty region do not re-enumerate the
        families of their unaffected neighbours.  Sound for the same
        reason verdict reuse is: a family depends only on trajectories
        within ``2r`` of its owner, a subset of the ``4r`` influence
        band the tracker invalidates.  Effective in incremental mode
        under the ``serial`` backend (shared-cache carry) and the
        persistent ``process`` pool (workers receive the clean set each
        tick and carry their private caches).  The decision is per
        *run*, not per backend name — any tick that degrades to the
        serial path (fewer devices than ``min_process_devices``) still
        reuses through the shared cache, including under
        ``process-spawn``, whose per-call workers are otherwise
        unreachable by the carry (it is the benchmark baseline for
        exactly that reason).
    backend, workers, max_worker_tasks:
        Engine execution knobs (ignored when a shared engine is passed
        to the service directly); ``max_worker_tasks`` bounds a
        persistent-pool worker's lifetime before it is respawned.
    dispatch_deadline:
        Per-roundtrip deadline (seconds) for pool dispatches; hung
        workers are killed and their task retried.  ``None`` (default)
        waits forever.  Ignored when a shared engine is passed in.
    dispatch_retries:
        How many times a failed shard-process roundtrip (dead or hung
        worker) is retried against a respawned process before the front
        door falls back to running that shard inline.  Only the
        process topology consults it.
    validation:
        How :meth:`feed_measurements` treats malformed frames.
        ``"strict"`` (default) counts the rejection reasons on
        ``repro_service_rejected_total{reason}`` and raises before the
        detector bank consumes anything — the frame is refused
        atomically.  ``"sanitize"`` substitutes each bad *row* (NaN,
        inf, out-of-range) with the device's current stored position —
        the device simply does not report this tick — and proceeds;
        only a frame whose shape does not match the fleet still raises
        (it cannot be partially applied).  Queued :class:`QosUpdate`
        events are always filtered per event, in either mode.
    """

    r: float = 0.03
    tau: int = 3
    shards: int = 8
    queue_capacity: int = 65_536
    max_batch: Optional[int] = None
    backpressure: str = "block"
    incremental: bool = True
    reuse_indexes: bool = True
    reuse_motions: bool = True
    backend: str = "serial"
    workers: Optional[int] = None
    max_worker_tasks: Optional[int] = None
    dispatch_deadline: Optional[float] = None
    dispatch_retries: int = 2
    validation: str = "strict"

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ConfigurationError(
                f"store shards must be >= 1, got {self.shards!r}"
            )
        if self.queue_capacity < 1:
            raise ConfigurationError(
                f"queue_capacity must be >= 1, got {self.queue_capacity!r}"
            )
        if self.max_batch is not None and self.max_batch < 1:
            raise ConfigurationError(
                f"max_batch must be >= 1 when given, got {self.max_batch!r}"
            )
        if self.backpressure not in BACKPRESSURE_POLICIES:
            raise ConfigurationError(
                f"backpressure must be one of {BACKPRESSURE_POLICIES}, "
                f"got {self.backpressure!r}"
            )
        if self.backend not in BACKENDS:
            raise ConfigurationError(
                f"backend must be one of {BACKENDS}, got {self.backend!r}"
            )
        if self.validation not in VALIDATION_MODES:
            raise ConfigurationError(
                f"validation must be one of {VALIDATION_MODES}, "
                f"got {self.validation!r}"
            )
        if self.dispatch_deadline is not None and self.dispatch_deadline <= 0:
            raise ConfigurationError(
                "dispatch_deadline must be > 0 when given, got "
                f"{self.dispatch_deadline!r}"
            )
        if self.dispatch_retries < 0:
            raise ConfigurationError(
                f"dispatch_retries must be >= 0, got {self.dispatch_retries!r}"
            )

    @property
    def cell(self) -> float:
        """Grid-cell side shared by store, tracker and transitions."""
        return max(2.0 * self.r, 1e-6)


#: ServiceStats field -> registry counter help string.
_SERVICE_STAT_HELP = {
    "ticks": "Service ticks completed",
    "updates_applied": "QoS updates applied to the device store",
    "updates_dropped": "Updates shed by drop-oldest backpressure",
    "inline_drains": "Inline drains forced by block backpressure",
    "verdicts_recomputed": "Verdicts recomputed through the engine",
    "verdicts_reused": "Verdicts served from the per-device cache",
    "index_reuses": "Grid indexes adopted from the previous transition",
    "families_recomputed": "Motion families recomputed",
    "families_reused": "Motion families carried across ticks",
}


class ServiceStats:
    """Run-level counters of one service instance.

    API-compatible with its former dataclass shape — readable/writable
    int attributes plus :meth:`as_dict` — but the counters now *live* on
    the metric registry: every positive increment is mirrored onto a
    ``repro_service_<field>_total`` counter, so the export plane sees
    one aggregate series per field across every service in the process
    while each instance keeps its own exact values here.  (Registry
    counters are monotone; a stat rewound by hand — never done by the
    service — adjusts only the local view.)
    """

    _FIELDS = tuple(_SERVICE_STAT_HELP)

    def __init__(self, registry: Optional[Registry] = None) -> None:
        reg = registry or get_registry()
        self.__dict__["_values"] = dict.fromkeys(self._FIELDS, 0)
        self.__dict__["_counters"] = {
            name: reg.counter(f"repro_service_{name}_total", help_text)
            for name, help_text in _SERVICE_STAT_HELP.items()
        }

    def __getattr__(self, name: str) -> int:
        values = self.__dict__.get("_values")
        if values is not None and name in values:
            return values[name]
        raise AttributeError(
            f"{type(self).__name__!r} object has no attribute {name!r}"
        )

    def __setattr__(self, name: str, value: int) -> None:
        values = self.__dict__["_values"]
        if name not in values:
            raise AttributeError(f"unknown service stat {name!r}")
        delta = value - values[name]
        values[name] = value
        if delta > 0:
            self.__dict__["_counters"][name].inc(delta)

    def as_dict(self) -> Dict[str, int]:
        """Plain-dict view for logging and result serialization."""
        return dict(self.__dict__["_values"])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        body = ", ".join(
            f"{name}={value}"
            for name, value in self.__dict__["_values"].items()
        )
        return f"ServiceStats({body})"


@dataclass
class OnlineTick:
    """Everything observable about one service tick.

    ``stage_seconds`` is the tick's wall-clock breakdown by pipeline
    stage (``ingest-drain``, ``detect``, ``index-update``,
    ``dirty-region``, ``transition-build``, ``verdict``, ``sinks``) as
    drained from the service's :class:`~repro.obs.trace.Tracer`; empty
    when the tracer is disabled.

    ``halo_bytes`` is the total payload shipped through halo rings this
    tick (sharded topologies only; always 0 on the single service).
    """

    tick: int
    applied: int
    flagged: Tuple[int, ...]
    recomputed: Tuple[int, ...]
    reused: Tuple[int, ...]
    dirty_cells: int
    verdicts: Dict[int, Characterization] = field(default_factory=dict)
    transition: Optional[Transition] = None
    families_recomputed: int = 0
    families_reused: int = 0
    stage_seconds: Dict[str, float] = field(default_factory=dict)
    halo_bytes: int = 0


class MetricsSink:
    """Aggregating sink: counts ticks, verdict types and recompute load.

    ``verdict_counts`` counts verdict *transitions*: a device is counted
    when it first appears with a verdict type, or when its type changes
    (including re-flagging after a quiet spell).  A device that stays
    flagged massive for 100 quiet ticks is one massive event, not 100 —
    ``tick.verdicts`` holds every flagged device each tick, cached ones
    included, so naive per-tick counting inflates by verdict lifetime.
    The per-tick view is still available as ``verdict_tick_counts``
    (device-ticks spent in each verdict type).

    Like :class:`ServiceStats`, every increment is mirrored onto the
    metric registry — ``repro_verdict_transitions_total{kind=...}`` and
    ``repro_verdict_device_ticks_total{kind=...}`` — so verdict rates
    by type are scrapeable without touching the sink object.
    """

    def __init__(self, registry: Optional[Registry] = None) -> None:
        reg = registry or get_registry()
        self.ticks = 0
        self.applied = 0
        self.recomputed = 0
        self.reused = 0
        self.families_recomputed = 0
        self.families_reused = 0
        self.verdict_counts: Dict[str, int] = {
            kind.value: 0 for kind in AnomalyType
        }
        self.verdict_tick_counts: Dict[str, int] = {
            kind.value: 0 for kind in AnomalyType
        }
        self._current_kinds: Dict[int, str] = {}
        self._transitions_counter = reg.counter(
            "repro_verdict_transitions_total",
            "Verdict events: a device entering a verdict type",
            labelnames=("kind",),
        )
        self._device_ticks_counter = reg.counter(
            "repro_verdict_device_ticks_total",
            "Device-ticks spent in each verdict type",
            labelnames=("kind",),
        )

    def __call__(self, tick: OnlineTick) -> None:
        self.ticks += 1
        self.applied += tick.applied
        self.recomputed += len(tick.recomputed)
        self.reused += len(tick.reused)
        self.families_recomputed += tick.families_recomputed
        self.families_reused += tick.families_reused
        kinds = {
            device: verdict.anomaly_type.value
            for device, verdict in tick.verdicts.items()
        }
        for device, kind in kinds.items():
            self.verdict_tick_counts[kind] += 1
            self._device_ticks_counter.labels(kind=kind).inc()
            if self._current_kinds.get(device) != kind:
                self.verdict_counts[kind] += 1
                self._transitions_counter.labels(kind=kind).inc()
        # Devices absent from this tick's verdicts are no longer flagged;
        # forgetting them means a later re-flag counts as a new event.
        self._current_kinds = kinds

    def as_dict(self) -> Dict[str, object]:
        """Plain-dict view for logging and result serialization."""
        return {
            "ticks": self.ticks,
            "applied": self.applied,
            "recomputed": self.recomputed,
            "reused": self.reused,
            "families_recomputed": self.families_recomputed,
            "families_reused": self.families_reused,
            "verdict_counts": dict(self.verdict_counts),
            "verdict_tick_counts": dict(self.verdict_tick_counts),
        }


class ReportSink:
    """Sink collecting ``(tick, device, anomaly_type)`` report rows.

    ``kinds`` filters which verdict types are worth a report — the ISP /
    OTT policies of :mod:`repro.network.monitor` expressed as a sink.

    ``rows`` is *bounded*: an always-on service emits reports forever,
    so the sink keeps at most ``max_rows`` of them, dropping the oldest
    first (``None`` opts back into unbounded growth for short offline
    replays).  Evictions are counted in :attr:`dropped` and mirrored to
    the registry counter ``repro_report_rows_dropped_total``.
    """

    def __init__(
        self,
        kinds: Iterable[AnomalyType] = tuple(AnomalyType),
        *,
        max_rows: Optional[int] = 100_000,
        registry: Optional[Registry] = None,
    ) -> None:
        if max_rows is not None and max_rows < 1:
            raise ConfigurationError(
                f"max_rows must be >= 1 when given, got {max_rows!r}"
            )
        self._kinds = frozenset(kinds)
        self.max_rows = max_rows
        self.rows: Deque[Tuple[int, int, AnomalyType]] = deque(maxlen=max_rows)
        self.dropped = 0
        self._dropped_counter = (registry or get_registry()).counter(
            "repro_report_rows_dropped_total",
            "Report rows evicted from bounded ReportSinks (drop-oldest)",
        )

    def __call__(self, tick: OnlineTick) -> None:
        rows = self.rows
        full_at = rows.maxlen
        for device in sorted(tick.verdicts):
            verdict = tick.verdicts[device]
            if verdict.anomaly_type in self._kinds:
                if full_at is not None and len(rows) == full_at:
                    # deque(maxlen=...) evicts the oldest row itself;
                    # this only accounts for the loss.
                    self.dropped += 1
                    self._dropped_counter.inc()
                rows.append((tick.tick, device, verdict.anomaly_type))


class OnlineCharacterizationService:
    """Event-driven characterization with incremental verdict refresh.

    Parameters
    ----------
    initial_positions:
        ``(n, d)`` QoS state at service start.
    config:
        Service knobs; defaults to :class:`ServiceConfig` defaults.
    engine:
        Optional shared :class:`CharacterizationEngine` (e.g. the one a
        :class:`~repro.network.monitor.NetworkMonitor` already owns);
        defaults to one built from the config's backend knobs.
    sinks:
        Initial sink callables; more can be added with :meth:`add_sink`.
    detector:
        Optional in-service detection: a
        :class:`~repro.detection.banks.DetectorSpec` (or prebuilt
        :class:`~repro.detection.banks.DetectorBank`) enabling
        :meth:`feed_measurements` — callers ship raw ``(n, d)`` QoS
        snapshots and the service runs the bank itself, its flag diffs
        feeding the same dirty-region invalidation path as precomputed
        flags.  The bank consumes the initial snapshot at construction
        (warm-up step 0), mirroring the trace replayers.
    detection:
        Plane the bank is built on when ``detector`` is a spec
        (``"bank"`` — vectorized, default — or ``"scalar"``).
    tracer:
        Stage-span :class:`~repro.obs.trace.Tracer` timing the tick
        pipeline; defaults to an enabled tracer on the process-global
        registry.  Pass ``Tracer(enabled=False)`` for the zero-overhead
        null path (every tick's ``stage_seconds`` is then empty).
    """

    def __init__(
        self,
        initial_positions: np.ndarray,
        config: Optional[ServiceConfig] = None,
        *,
        engine: Optional[CharacterizationEngine] = None,
        sinks: Iterable[Callable[[OnlineTick], None]] = (),
        detector: Optional[DetectorLike] = None,
        detection: Optional[str] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self._config = config or ServiceConfig()
        self._tracer = tracer if tracer is not None else Tracer()
        registry = self._tracer.registry
        self._gauge_queue_depth = registry.gauge(
            "repro_service_queue_depth",
            "Ingest-queue backlog observed at each tick close",
        )
        self._gauge_devices = registry.gauge(
            "repro_service_devices", "Devices tracked by the store"
        )
        self._gauge_flagged = registry.gauge(
            "repro_service_flagged_devices",
            "Devices flagged at the latest tick",
        )
        cfg = self._config
        self._store = DeviceStateStore(
            initial_positions, cell=cfg.cell, shards=cfg.shards
        )
        self._tracker = DirtyRegionTracker(
            cell=cfg.cell,
            influence_radius=4.0 * cfg.r,
            family_radius=2.0 * cfg.r,
        )
        self._owns_engine = engine is None
        self._engine = engine or CharacterizationEngine(
            EngineConfig(
                backend=cfg.backend,
                workers=cfg.workers,
                max_worker_tasks=cfg.max_worker_tasks,
                dispatch_deadline=cfg.dispatch_deadline,
            )
        )
        self._bank: Optional[DetectorBank] = None
        self._last_detection: Optional[BankDetection] = None
        if detector is not None:
            self._bank = as_bank(
                detector, self._store.n, self._store.dim, plane=detection
            )
            # Warm-up step 0: the initial snapshot is the bank's first
            # observation, exactly like the trace replayers' step 0.
            self._last_detection = self._bank.observe_batch(
                np.asarray(initial_positions, dtype=float)
            )
        elif detection is not None:
            raise ConfigurationError(
                "detection plane given without a detector spec or bank"
            )
        self._queue: Deque[QosUpdate] = deque()
        # Updates applied since the last end_tick — includes inline
        # drains forced by "block" backpressure, so per-tick accounting
        # never undercounts.
        self._applied_since_tick = 0
        # Rows whose verdict-code column entries are currently set.
        self._verdict_rows: Optional[np.ndarray] = None
        self._sinks: List[Callable[[OnlineTick], None]] = list(sinks)
        # The tick pipeline: every span name the tracer emits is a real
        # stage object (see repro.online.stages).  The stages own the
        # cross-tick state the inline code used to keep on the service —
        # the transition chain lives on the transition-build stage, the
        # verdict cache and motion-cache carry on the verdict stage —
        # and read the store/tracker/engine through the service, so a
        # checkpoint restore that swaps the store is seen everywhere.
        self._ingest_stage = IngestDrainStage(
            lambda: self._apply_batch(
                self._config.max_batch or len(self._queue)
            ),
            lambda: len(self._queue),
        )
        self._detect_stage = DetectStage(lambda: self._bank)
        self._index_stage = IndexUpdateStage(self)
        self._dirty_stage = DirtyRegionStage(self)
        self._transition_stage = TransitionBuildStage(
            self, cfg.r, cfg.tau, reuse_indexes=cfg.reuse_indexes
        )
        self._verdict_stage = VerdictStage(
            self,
            incremental=cfg.incremental,
            reuse_motions=cfg.reuse_motions,
            transition_source=self._transition_stage,
        )
        self._sink_stage = SinkStage(self._sinks)
        self._pipeline = TickPipeline(
            [self._dirty_stage, self._transition_stage, self._verdict_stage]
        )
        self._tick = 0
        self._closed = False
        self.stats = ServiceStats()
        #: Rejected-input tally by reason (mirrored to the registry
        #: counter ``repro_service_rejected_total{reason}``).
        self.rejected: Dict[str, int] = {}
        self._rejected_counter = registry.counter(
            "repro_service_rejected_total",
            "Malformed inputs rejected by the service, by reason",
            labelnames=("reason",),
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def config(self) -> ServiceConfig:
        """The service configuration."""
        return self._config

    @property
    def store(self) -> DeviceStateStore:
        """The sharded device-state store."""
        return self._store

    @property
    def n(self) -> int:
        """Number of live devices (drivers use this instead of ``store.n``
        so the sharded front door can satisfy the same contract)."""
        return self._store.n

    @property
    def dim(self) -> int:
        """Number of services per device."""
        return self._store.dim

    @property
    def tracker(self) -> DirtyRegionTracker:
        """The dirty-region tracker accumulating this tick's cells."""
        return self._tracker

    @property
    def engine(self) -> CharacterizationEngine:
        """The characterization engine recomputations route through."""
        return self._engine

    @property
    def pipeline(self) -> TickPipeline:
        """The ordered core stages one ``end_tick`` runs."""
        return self._pipeline

    # ------------------------------------------------------------------
    # Cross-tick stage state, re-exposed under the historical attribute
    # names (recovery and the perf tests reach for these).
    # ------------------------------------------------------------------
    @property
    def _verdicts(self) -> Dict[int, Characterization]:
        return self._verdict_stage.cache

    @_verdicts.setter
    def _verdicts(self, value: Dict[int, Characterization]) -> None:
        self._verdict_stage.cache = value

    @property
    def _last_cache(self) -> Optional[MotionCache]:
        return self._verdict_stage.last_cache

    @_last_cache.setter
    def _last_cache(self, value: Optional[MotionCache]) -> None:
        self._verdict_stage.last_cache = value

    @property
    def _last_transition(self) -> Optional[Transition]:
        return self._transition_stage.last_transition

    @_last_transition.setter
    def _last_transition(self, value: Optional[Transition]) -> None:
        self._transition_stage.last_transition = value

    @property
    def _last_flagged(self) -> Optional[Tuple[int, ...]]:
        return self._transition_stage.last_flagged

    @_last_flagged.setter
    def _last_flagged(self, value: Optional[Tuple[int, ...]]) -> None:
        self._transition_stage.last_flagged = value

    @property
    def _chain_cur(self) -> Optional[np.ndarray]:
        return self._transition_stage.chain_cur

    @_chain_cur.setter
    def _chain_cur(self, value: Optional[np.ndarray]) -> None:
        self._transition_stage.chain_cur = value

    @property
    def _chain_serial(self) -> int:
        return self._transition_stage.chain_serial

    @_chain_serial.setter
    def _chain_serial(self, value: int) -> None:
        self._transition_stage.chain_serial = value

    @property
    def current_tick(self) -> int:
        """Number of completed ticks."""
        return self._tick

    @property
    def bank(self) -> Optional[DetectorBank]:
        """The in-service detector bank (None without a ``detector``)."""
        return self._bank

    @property
    def last_detection(self) -> Optional[BankDetection]:
        """The bank's most recent batch detection, if any."""
        return self._last_detection

    @property
    def queued(self) -> int:
        """Events currently waiting in the ingest queue."""
        return len(self._queue)

    @property
    def tracer(self) -> Tracer:
        """The stage-span tracer timing this service's tick pipeline."""
        return self._tracer

    @property
    def verdicts(self) -> Dict[int, Characterization]:
        """The current verdict map (flagged devices only; a copy)."""
        return dict(self._verdicts)

    def flagged_devices(self) -> Tuple[int, ...]:
        """Currently flagged devices, sorted."""
        return self._store.flagged_devices()

    def add_sink(self, sink: Callable[[OnlineTick], None]) -> None:
        """Attach a sink called with every finished :class:`OnlineTick`."""
        self._sinks.append(sink)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release the engine's worker pool, if the service owns it.

        A shared engine (passed at construction) belongs to its owner —
        e.g. a :class:`~repro.network.monitor.NetworkMonitor` — which is
        responsible for closing it.  Idempotent: a double close (or a
        close racing the pool's atexit sweep) is a clean no-op.
        """
        if self._closed:
            return
        self._closed = True
        if self._owns_engine:
            self._engine.close()

    def __enter__(self) -> "OnlineCharacterizationService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def checkpoint(self, path, *, extra: Optional[Dict[str, object]] = None):
        """Write an atomic checkpoint of this service to ``path``.

        See :mod:`repro.online.recovery` for the format; returns the
        published path.
        """
        from repro.online.recovery import save_checkpoint

        return save_checkpoint(self, path, extra=extra)

    @classmethod
    def restore(
        cls,
        source,
        *,
        config=None,
        engine: Optional[CharacterizationEngine] = None,
        sinks: Iterable[Callable[["OnlineTick"], None]] = (),
        tracer: Optional[Tracer] = None,
    ) -> "OnlineCharacterizationService":
        """Rebuild a service from a checkpoint path (or loaded object).

        The restored service continues the stream verdict-identically;
        see :func:`repro.online.recovery.restore_service`.
        """
        from repro.online.recovery import restore_service

        return restore_service(
            source, config=config, engine=engine, sinks=sinks, tracer=tracer
        )

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------
    def ingest(self, update: QosUpdate) -> bool:
        """Enqueue one event; returns False iff it displaced older work.

        At capacity, the configured backpressure policy decides: apply
        queued updates inline (``block``), drop the oldest queued event
        (``drop-oldest``), or refuse (``error``).
        """
        cfg = self._config
        accepted = True
        if len(self._queue) >= cfg.queue_capacity:
            if cfg.backpressure == "error":
                raise QueueFullError(
                    f"ingest queue is at capacity ({cfg.queue_capacity})"
                )
            if cfg.backpressure == "drop-oldest":
                self._queue.popleft()
                self.stats.updates_dropped += 1
                accepted = False
            else:  # block: make room by doing the consumer's work now
                with self._tracer.span("ingest-drain"):
                    self._apply_batch(cfg.max_batch or len(self._queue))
                self.stats.inline_drains += 1
        self._queue.append(update)
        return accepted

    def ingest_many(self, updates: Iterable[QosUpdate]) -> int:
        """Enqueue a batch; returns how many were accepted cleanly."""
        return sum(1 for update in updates if self.ingest(update))

    def _apply_batch(self, limit: int) -> int:
        """Pop up to ``limit`` events, apply them as vectorized row batches.

        :meth:`DeviceStateStore.apply_rows` needs unique rows, so the
        batch is split into order-preserving segments at each repeated
        device: within and across segments arrival order is preserved,
        so last-write-wins semantics hold and every intermediate state
        still marks the dirty tracker (a device hopping A→B→C dirties
        all three cells, exactly as the per-update path did).
        """
        batch: List[QosUpdate] = []
        while self._queue and len(batch) < limit:
            batch.append(self._queue.popleft())
        if not batch:
            return 0
        start = 0
        seen = set()
        applied = 0
        for i, update in enumerate(batch):
            if update.device in seen:
                applied += self._apply_segment(batch[start:i])
                start = i
                seen = set()
            seen.add(update.device)
        applied += self._apply_segment(batch[start:])
        # Rejected events are tallied separately — only events that
        # actually landed in the store count as applied.
        self.stats.updates_applied += applied
        self._applied_since_tick += applied
        return len(batch)

    def _reject(self, reason: str, count: int = 1) -> None:
        """Count ``count`` rejected inputs under ``reason``."""
        if count <= 0:
            return
        self.rejected[reason] = self.rejected.get(reason, 0) + count
        self._rejected_counter.labels(reason=reason).inc(count)

    def _apply_segment(self, segment: List[QosUpdate]) -> int:
        """Apply one duplicate-free event run as a single row batch.

        Malformed events are dropped *per event*, counted on
        ``repro_service_rejected_total{reason}``: an unknown device id,
        a position of the wrong dimension, a non-finite coordinate or
        one outside the unit cube must not crash the tick (or desync
        the store) for every well-formed report in the same batch.
        Returns how many events actually landed in the store.
        """
        store = self._store
        dim = store.dim
        rows: List[int] = []
        kept: List[QosUpdate] = []
        for update in segment:
            row = store.row_if_present(update.device)
            if row is None:
                self._reject("unknown-device")
                continue
            if len(update.position) != dim:
                self._reject("dimension-mismatch")
                continue
            rows.append(row)
            kept.append(update)
        if not kept:
            return 0
        positions = np.array([update.position for update in kept], dtype=float)
        nan_bad = np.isnan(positions).any(axis=1)
        inf_bad = np.isinf(positions).any(axis=1)
        finite = ~(nan_bad | inf_bad)
        range_bad = finite & (
            (positions < 0.0).any(axis=1) | (positions > 1.0).any(axis=1)
        )
        self._reject("nan", int(nan_bad.sum()))
        self._reject("inf", int(inf_bad.sum()))
        self._reject("out-of-range", int(range_bad.sum()))
        good = finite & ~range_bad
        if not good.all():
            idx = np.nonzero(good)[0]
            if idx.size == 0:
                return 0
            positions = positions[idx]
            rows = [rows[i] for i in idx.tolist()]
            kept = [kept[i] for i in idx.tolist()]
        count = len(kept)
        rows_arr = np.asarray(rows, dtype=np.int64)
        flags = np.fromiter(
            (update.flagged for update in kept), dtype=bool, count=count
        )
        applied = store.apply_rows(rows_arr, positions, flags)
        self._tracker.mark_batch(applied, was_relevant=applied.was_flagged)
        return count

    def feed_snapshot(
        self, current: np.ndarray, flags: Iterable[bool]
    ) -> OnlineTick:
        """Adapt one snapshot + flag vector into events and a tick.

        The bridge the snapshot-shaped drivers (network monitor, sampled
        stream, trace replay) share: devices whose position or flag bit
        differs from the service's *own* current state emit a
        :class:`QosUpdate`, then the tick is closed.  The diff runs
        against the store — not a caller-remembered previous snapshot,
        which can disagree after mid-tick ingests — so the service
        always converges to ``current``.  ``flags`` is the full current
        flag vector (index = device id).

        The self-produced diff batch is applied *directly* as one
        vectorized row batch, not routed through the bounded ingest
        queue: the snapshot is already materialized, and an "error"
        backpressure policy firing mid-batch would leave the tick
        half-applied — and a detector bank one observation ahead of the
        store (:meth:`feed_measurements` relies on this atomicity).
        This is the columnar hot path: the diff runs against the
        store's read-only views, the changed rows go straight to
        :meth:`DeviceStateStore.apply_rows`, and no per-device Python
        objects are created at any point (the steady-state allocation
        test pins this down).
        """
        # Apply any events queued mid-tick first, so the diff below sees
        # the true store state (and emits corrections back to `current`
        # where a mid-tick ingest diverged from the fed snapshot).
        self._ingest_stage.run(self._tracer)
        applied_rows = self._index_stage.apply_diff(
            current, flags, self._tracer
        )
        if applied_rows:
            self.stats.updates_applied += applied_rows
            self._applied_since_tick += applied_rows
        return self.end_tick()

    def feed_measurements(self, values: np.ndarray) -> OnlineTick:
        """One tick from raw QoS vectors: the service detects, then flags.

        Requires a ``detector`` at construction.  The bank observes the
        ``(n, d)`` snapshot (one vectorized update for the whole fleet),
        its flag vector joins the positions in :meth:`feed_snapshot`,
        and the resulting flag *diffs* drive the usual dirty-region
        invalidation — callers ship measurements, not verdicts.
        """
        self._detect_stage.require_bank()
        arr = np.asarray(values, dtype=float)
        injector = get_injector()
        if injector.active:
            arr = injector.corrupt_frame(self._tick + 1, arr)
        arr = self._validate_frame(arr)
        detection = self._detect_stage.observe(arr, self._tracer)
        self._last_detection = detection
        return self.feed_snapshot(arr, detection.flags)

    def _validate_frame(self, arr: np.ndarray) -> np.ndarray:
        """Apply the configured validation mode to one raw QoS frame.

        Runs *before* the detector bank observes anything, so a
        rejected frame can never leave the bank one observation ahead
        of the store.  ``"strict"`` counts every bad row's reason and
        raises; ``"sanitize"`` substitutes each bad row with the
        device's current stored position — that device simply does not
        report this tick — and returns the repaired frame.  A frame
        whose shape does not match the fleet always raises: it cannot
        be partially applied.
        """
        n, dim = self._store.n, self._store.dim
        if arr.ndim != 2 or arr.shape != (n, dim):
            self._reject("dimension-mismatch")
            raise DimensionMismatchError(
                f"measurement frame shape {arr.shape} incompatible with "
                f"({n}, {dim})"
            )
        nan_bad = np.isnan(arr).any(axis=1)
        inf_bad = np.isinf(arr).any(axis=1)
        finite = ~(nan_bad | inf_bad)
        range_bad = finite & ((arr < 0.0).any(axis=1) | (arr > 1.0).any(axis=1))
        bad = ~finite | range_bad
        if not bad.any():
            return arr
        self._reject("nan", int(nan_bad.sum()))
        self._reject("inf", int(inf_bad.sum()))
        self._reject("out-of-range", int(range_bad.sum()))
        if self._config.validation == "strict":
            raise ConfigurationError(
                f"measurement frame has {int(bad.sum())} malformed rows "
                "(NaN/inf/out-of-range) and validation is strict"
            )
        repaired = arr.copy()
        repaired[bad] = self._store.current_positions()[bad]
        return repaired

    # ------------------------------------------------------------------
    # Tick processing
    # ------------------------------------------------------------------
    def end_tick(self) -> OnlineTick:
        """Close the current interval: drain, invalidate, recharacterize.

        Returns the finished :class:`OnlineTick` after pushing it to
        every sink.  The verdict map covers exactly the flagged devices
        and is equal (type / rule / witness) to a full batch pass over
        the same transition.
        """
        tracer = self._tracer
        self._gauge_queue_depth.set(len(self._queue))
        self._ingest_stage.run(tracer)
        applied = self._applied_since_tick
        self._applied_since_tick = 0
        self._tick += 1
        ctx = TickContext(tick=self._tick, applied=applied)
        self._pipeline.run(ctx, tracer)
        if ctx.index_reused:
            self.stats.index_reuses += 1
        self._record_verdict_codes(ctx.flagged, ctx.verdicts)
        self._transition_stage.advance(ctx)
        self.stats.ticks += 1
        self.stats.verdicts_recomputed += len(ctx.recompute)
        self.stats.verdicts_reused += len(ctx.reused)
        self.stats.families_recomputed += ctx.families_recomputed
        self.stats.families_reused += ctx.families_reused
        self._gauge_devices.set(self._store.n)
        self._gauge_flagged.set(len(ctx.flagged))
        result = OnlineTick(
            tick=self._tick,
            applied=applied,
            flagged=ctx.flagged,
            recomputed=tuple(ctx.recompute),
            reused=tuple(ctx.reused),
            dirty_cells=len(ctx.dirty_cells),
            verdicts=ctx.verdicts,
            transition=ctx.transition,
            families_recomputed=ctx.families_recomputed,
            families_reused=ctx.families_reused,
            stage_seconds=tracer.drain_stages(),
        )
        self._sink_stage.run(result, tracer)
        # The sinks span closed after the drain above; fold it (and any
        # spans a sink itself opened) into this tick's breakdown so the
        # next tick starts from a clean accumulator.
        for stage, seconds in tracer.drain_stages().items():
            result.stage_seconds[stage] = (
                result.stage_seconds.get(stage, 0.0) + seconds
            )
        return result

    def _record_verdict_codes(
        self,
        flagged: Tuple[int, ...],
        verdicts: Dict[int, Characterization],
    ) -> None:
        """Mirror this tick's verdicts into the store's int8 code column."""
        store = self._store
        if self._verdict_rows is not None and self._verdict_rows.size:
            store.set_verdict_codes(
                self._verdict_rows,
                np.full(self._verdict_rows.shape[0], -1, dtype=np.int8),
            )
        if flagged:
            rows = np.fromiter(
                (store.row_of(j) for j in flagged),
                dtype=np.int64,
                count=len(flagged),
            )
            codes = np.fromiter(
                (_VERDICT_CODE[verdicts[j].anomaly_type] for j in flagged),
                dtype=np.int8,
                count=len(flagged),
            )
            store.set_verdict_codes(rows, codes)
            self._verdict_rows = rows
        else:
            self._verdict_rows = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"OnlineCharacterizationService(n={self._store.n}, "
            f"ticks={self._tick}, queued={len(self._queue)}, "
            f"flagged={len(self._verdicts)})"
        )
