"""Sharded multi-service topology: spatial shards with halo exchange.

One :class:`~repro.online.service.OnlineCharacterizationService` holds
the whole fleet in one store and one verdict pipeline.  That is the
right shape up to a few hundred thousand devices; beyond it, one
process's tick becomes one long critical path.  This module decomposes
the plane instead of the pipeline: the unit QoS cube is tiled into
``topology_shards`` axis-aligned boxes of grid cells, each owned by a
:class:`_ShardWorker` — its own columnar
:class:`~repro.online.store.DeviceStateStore` partition (keyed by
*global* device ids), dirty-region tracker, characterization engine and
tracer — and a :class:`ShardedService` front door that speaks the same
API as the single service.

The paper's locality theorem is what makes the decomposition exact: a
flagged device's verdict depends only on flagged devices within ``4r``
(uniform norm) of it at the interval endpoints.  So a shard can
characterize its residents *locally*, provided it also sees the flagged
devices just across its borders — the **halo**.  Per tick:

1. **route & apply** — ingested events and snapshot diffs are applied on
   each device's owning shard (the front door keeps the device→shard
   map); devices whose new cell falls in another shard's box migrate via
   :meth:`~repro.online.store.DeviceStateStore.admit`, which carries the
   ``prev`` endpoint so the crossing move itself is not erased;
2. **dirty union** — every shard closes its tracker's cell bookkeeping
   (:meth:`~repro.online.dirty.DirtyRegionTracker.finish_cells`) and the
   front door unions the cells: an update near a boundary must
   invalidate verdicts on *both* sides, so each shard derives its
   affected set from the global union against its own index;
3. **halo exchange** — each shard publishes the ``(prev, cur)`` rows of
   its flagged devices within ``halo_rings`` cells of its box boundary
   through a :class:`~repro.engine.backends._SnapshotRing` (the same
   double-buffered shared-memory publication path the worker pool uses);
   consumers take the bands whose cells lie within ``halo_rings``
   *outside* their own box;
4. **local pipelines** — each shard runs a
   :class:`~repro.online.stages.TickPipeline` of a halo-aware
   transition-build stage plus the standard
   :class:`~repro.online.stages.VerdictStage`, optionally across a
   thread pool;
5. **merge** — verdicts (already remapped to global ids), flagged sets,
   stats and stage timings are merged into one ordinary
   :class:`~repro.online.service.OnlineTick` for the sinks.

Why the halo band is sufficient: a local verdict for owned device ``j``
is exact iff the local transition contains every flagged device ``i``
in ``j``'s transition neighbourhood, and that neighbourhood *intersects*
prev-side and cur-side ``4r`` balls — any qualifying ``i`` has its
**current** position within ``4r`` of ``j``'s, which lies in the box, so
``i``'s current cell is within ``rings`` cells of the box and the
``halo_rings = rings + 1`` band (one spare ring absorbing the indexes'
``1e-12`` query tolerance) contains it.  Devices that are prev-near but
cur-far are dropped by the intersection on both sides of the
decomposition, and extra halo members are harmless supersets.  See
DESIGN.md ("Sharded topology") for the full argument.

**Verdict identity** with the single service is exact — type, rule *and*
witness.  Shard-local transitions number devices by the rank of their
global id among the shard's participants (owned ∪ halo, sorted), a
strictly monotone map; every order the characterization pipeline relies
on (canonical motion sort keys, candidate pools, local universes) is
either geometric or lexicographic in device ids, and lexicographic
comparisons are invariant under monotone relabelling.  The randomized
equivalence suite (``tests/online/test_sharded.py``) pins this down,
churn and shard-crossing movers included.
"""

from __future__ import annotations

import math
import time
import warnings
from concurrent.futures import ThreadPoolExecutor
from collections import deque
from multiprocessing import shared_memory
from typing import (
    Any,
    Callable,
    Deque,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

import numpy as np

from repro.core.errors import (
    ConfigurationError,
    DimensionMismatchError,
    QueueFullError,
)
from repro.core.transition import Transition
from repro.core.types import Characterization
from repro.detection.banks import BankDetection, DetectorBank, DetectorLike, as_bank
from repro.engine import CharacterizationEngine, EngineConfig
from repro.ipc import (
    ShardRoundtripError,
    ShmPlanes,
    SnapshotRing,
    StaleHaloError,
    unlink_by_name,
)
from repro.obs.trace import Tracer
from repro.online.dirty import DirtyRegionTracker
from repro.online.grid import CellKey
from repro.online.procshard import (
    _CHILD_ERRORS,
    _FrameBoard,
    _InlineShardHandle,
    _ProcessShardHandle,
    _mark_recovered,
    _serial_config,
    handle_command,
)
from repro.online.service import (
    _VERDICT_CODE,
    OnlineTick,
    QosUpdate,
    ServiceConfig,
    ServiceStats,
)
from repro.online.stages import (
    IndexUpdateStage,
    IngestDrainStage,
    SinkStage,
    TickContext,
    TickPipeline,
    VerdictStage,
)
from repro.online.store import (
    NO_VERDICT,
    DeviceStateStore,
    attach_store_planes,
    store_plane_fields,
)
from repro.robust.chaos import get_injector

__all__ = [
    "HaloTransitionBuildStage",
    "ShardMap",
    "ShardedService",
    "StaleHaloError",
]


def _grid_for(shards: int, dim: int) -> Tuple[int, ...]:
    """Factor ``shards`` into a near-square grid over the first axes.

    Tiling at most two axes keeps halo volume O(boundary) while leaving
    the membership arithmetic trivially vectorizable; one axis in 1-D.
    """
    if dim == 1:
        return (shards,)
    best = 1
    for a in range(1, int(math.isqrt(shards)) + 1):
        if shards % a == 0:
            best = a
    return (shards // best, best)


class ShardMap:
    """Arithmetic cell→shard tiling of the unit cube, with halo masks.

    The cube holds ``K = floor(1/cell) + 1`` grid cells per axis (cell
    keys ``floor(p / cell)`` for ``p`` in ``[0, 1]``).  A tiled axis
    with ``g`` shards maps cell ``c`` to shard coordinate
    ``min(g - 1, c * g // K)`` — a pure integer expression, so placement
    is stable across processes and checkpoint restores and every shard's
    territory is a contiguous cell interval ``[lo, hi]``.  Shard ids are
    row-major over the (at most two-axis) grid.

    ``halo_rings`` is the exchange band width in cells: a cell belongs
    to shard ``s``'s halo iff its Chebyshev cell-distance to ``s``'s box
    is in ``(0, halo_rings]``.
    """

    def __init__(
        self, shards: int, *, cell: float, dim: int, halo_rings: int
    ) -> None:
        if shards < 1:
            raise ConfigurationError(
                f"topology shards must be >= 1, got {shards!r}"
            )
        if dim < 1:
            raise ConfigurationError(f"dim must be >= 1, got {dim!r}")
        if halo_rings < 1:
            raise ConfigurationError(
                f"halo_rings must be >= 1, got {halo_rings!r}"
            )
        self._cell = float(cell)
        self._dim = int(dim)
        self._halo_rings = int(halo_rings)
        self._K = int(math.floor(1.0 / self._cell)) + 1
        self._grid = _grid_for(int(shards), self._dim)
        for g in self._grid:
            if g > self._K:
                raise ConfigurationError(
                    f"grid axis of {g} shards exceeds the {self._K} grid "
                    f"cells per axis at cell={self._cell}; use fewer "
                    "topology shards or a finer cell"
                )
        self._n_shards = int(shards)
        # Per tiled axis: lo/hi cell of each shard coordinate.
        self._lo: List[np.ndarray] = []
        self._hi: List[np.ndarray] = []
        K = self._K
        for g in self._grid:
            coords = np.arange(g, dtype=np.int64)
            lo = (coords * K + g - 1) // g
            hi = np.empty(g, dtype=np.int64)
            hi[:-1] = lo[1:] - 1
            hi[-1] = K - 1
            self._lo.append(lo)
            self._hi.append(hi)

    @property
    def n_shards(self) -> int:
        """Total shard count (product of the grid axes)."""
        return self._n_shards

    @property
    def grid(self) -> Tuple[int, ...]:
        """Shards per tiled axis (row-major id order)."""
        return self._grid

    @property
    def halo_rings(self) -> int:
        """Exchange band width, in grid cells."""
        return self._halo_rings

    @property
    def cells_per_axis(self) -> int:
        """Grid cells per axis in the unit cube."""
        return self._K

    def _coords(self, shard: int) -> Tuple[int, ...]:
        if not 0 <= shard < self._n_shards:
            raise ConfigurationError(
                f"shard {shard} not in [0, {self._n_shards})"
            )
        if len(self._grid) == 1:
            return (shard,)
        return divmod(shard, self._grid[1])

    def box(self, shard: int) -> Tuple[Tuple[int, int], ...]:
        """Per tiled axis, the inclusive ``(lo, hi)`` cell interval."""
        coords = self._coords(shard)
        return tuple(
            (int(self._lo[axis][c]), int(self._hi[axis][c]))
            for axis, c in enumerate(coords)
        )

    def shard_of_keys(self, keys: np.ndarray) -> np.ndarray:
        """Vectorized cell→shard id for ``(m, d)`` integer cell keys."""
        keys = np.atleast_2d(np.asarray(keys, dtype=np.int64))
        K = self._K
        out = np.zeros(keys.shape[0], dtype=np.int64)
        for axis, g in enumerate(self._grid):
            c = np.clip(keys[:, axis], 0, K - 1)
            coord = np.minimum(g - 1, (c * g) // K)
            out = out * g + coord if axis else coord
        return out

    def box_distance(self, keys: np.ndarray, shard: int) -> np.ndarray:
        """Chebyshev cell-distance of each key to ``shard``'s box.

        Zero inside the box; untiled axes never contribute.  A key is in
        ``shard``'s halo iff ``0 < distance <= halo_rings``.
        """
        keys = np.atleast_2d(np.asarray(keys, dtype=np.int64))
        coords = self._coords(shard)
        dist = np.zeros(keys.shape[0], dtype=np.int64)
        for axis, c in enumerate(coords):
            lo = int(self._lo[axis][c])
            hi = int(self._hi[axis][c])
            col = keys[:, axis]
            axis_dist = np.maximum(np.maximum(lo - col, col - hi), 0)
            np.maximum(dist, axis_dist, out=dist)
        return dist

    def boundary_mask(self, keys: np.ndarray, shard: int) -> np.ndarray:
        """Which of a shard's own cells another shard could need.

        A cell with interior slack ``m`` (cells to its box's nearest
        face, from inside) is at Chebyshev distance ``>= m + 1`` from
        every cell outside the box, so only ``m < halo_rings`` rows can
        land inside any consumer's halo band — the producer-side filter
        that keeps the exchanged payload O(boundary), not O(area).
        """
        keys = np.atleast_2d(np.asarray(keys, dtype=np.int64))
        coords = self._coords(shard)
        slack = np.full(keys.shape[0], np.iinfo(np.int64).max, dtype=np.int64)
        for axis, c in enumerate(coords):
            lo = int(self._lo[axis][c])
            hi = int(self._hi[axis][c])
            col = keys[:, axis]
            axis_slack = np.minimum(col - lo, hi - col)
            np.minimum(slack, axis_slack, out=slack)
        return slack < self._halo_rings

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ShardMap(grid={self._grid}, cells={self._K}/axis, "
            f"halo_rings={self._halo_rings})"
        )


class _HaloChannel:
    """One shard's halo publication over a snapshot ring, seq-gated.

    The position payload rides the same double-buffered shared-memory
    segments the process pool publishes transitions through
    (:meth:`~repro.ipc.SnapshotRing.publish_pair`); the global ids and
    cell keys of the published rows stay in process memory alongside
    (they are small, and in the process topology they travel up the
    pipe inside :meth:`meta`).  A 16-byte header segment carries
    ``(seq, rows)``; the sequence slot is written strictly *after* the
    payload, so a cross-process consumer that observes the expected
    sequence before copying knows the band is complete, and one that
    re-observes it after copying knows the band was not overwritten
    mid-read.  In-process readers resolve the segment names against the
    ring's own handles — same process, no re-attach — and gate on the
    remembered sequence instead.
    """

    def __init__(self) -> None:
        self._ring = SnapshotRing()
        self._hdr: Optional[shared_memory.SharedMemory] = None
        self._shape: Tuple[int, int] = (0, 0)
        self._names: Optional[Tuple[str, str]] = None
        self._seq = 0
        self.ids: np.ndarray = np.empty(0, dtype=np.int64)
        self.keys: np.ndarray = np.empty((0, 0), dtype=np.int64)

    def _header(self) -> np.ndarray:
        if self._hdr is None:
            self._hdr = shared_memory.SharedMemory(create=True, size=16)
        return np.frombuffer(self._hdr.buf, dtype=np.int64, count=2)

    def publish(
        self,
        ids: np.ndarray,
        keys: np.ndarray,
        prev: np.ndarray,
        cur: np.ndarray,
        *,
        seq: int = 0,
    ) -> None:
        self.ids = ids
        self.keys = keys
        self._shape = (int(prev.shape[0]), int(prev.shape[1]))
        self._seq = int(seq)
        if prev.size == 0:
            self._names = None
        else:
            self._names = self._ring.publish_pair(
                np.ascontiguousarray(prev, dtype=np.float64),
                np.ascontiguousarray(cur, dtype=np.float64),
            )
        # Sequence last: observing it proves the payload above is whole.
        hdr = self._header()
        hdr[1] = self._shape[0]
        hdr[0] = self._seq

    def meta(self, shard: int) -> Dict[str, Any]:
        """Everything a cross-process consumer needs to read this band."""
        names = self._names or (None, None)
        hdr_name = self._hdr.name if self._hdr is not None else None
        live = [
            name
            for name in (*self._ring.segment_names(), hdr_name)
            if name
        ]
        return {
            "shard": int(shard),
            "seq": self._seq,
            "rows": self._shape[0],
            "hdr": hdr_name,
            "prev": names[0],
            "cur": names[1],
            "ids": self.ids,
            "keys": self.keys,
            "live": live,
        }

    def _segment(self, name: str):
        for seg in (*self._ring.slots, self._ring.prev_seg):
            if seg is not None and seg.name == name:
                return seg
        raise ConfigurationError(
            f"halo segment {name!r} is not live on this ring"
        )  # pragma: no cover - protocol violation

    def read(
        self, *, expected_seq: Optional[int] = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """The published ``(prev, cur)`` band, copied out of the ring."""
        if expected_seq is not None and self._seq != int(expected_seq):
            raise StaleHaloError(
                f"halo band holds seq {self._seq}, expected {expected_seq}"
            )
        rows, dim = self._shape
        if self._names is None or rows == 0:
            empty = np.empty((0, dim), dtype=np.float64)
            return empty, empty
        count = rows * dim
        out = []
        for name in self._names:
            seg = self._segment(name)
            out.append(
                np.frombuffer(seg.buf, dtype=np.float64, count=count)
                .reshape(rows, dim)
                .copy()
            )
        return out[0], out[1]

    def close(self) -> None:
        self._ring.drop_segments()
        self._names = None
        if self._hdr is not None:
            try:
                self._hdr.close()
                self._hdr.unlink()
            except (OSError, FileNotFoundError):  # pragma: no cover
                pass
            self._hdr = None


class HaloTransitionBuildStage:
    """``transition-build`` over one shard's residents plus its halo.

    The halo-aware twin of
    :class:`~repro.online.stages.TransitionBuildStage`.  Participants
    are the shard's live devices plus the halo band deposited by the
    front door (:meth:`stage_halo`), numbered by the rank of their
    global id — a strictly monotone local→global map, which is what
    keeps every id-lexicographic tie-break in the characterization
    pipeline (canonical motion order, candidate pools) invariant and the
    shard's verdicts bit-identical to the single service's.

    No cross-tick chain or index adoption: the participant set churns
    with the halo every tick, so ``last_transition`` stays ``None`` and
    the verdict stage's motion carry is gated off via
    ``ctx.allow_carry`` (verdict-level caching, the big win, still
    applies — it is keyed by global id and survives any relabelling).
    """

    name = "transition-build"

    def __init__(self, owner: "_ShardWorker", r: float, tau: int) -> None:
        self._owner = owner
        self._r = float(r)
        self._tau = int(tau)
        #: Carry gate read by :class:`VerdictStage`; intentionally never set.
        self.last_transition: Optional[Transition] = None
        self._halo_ids = np.empty(0, dtype=np.int64)
        self._halo_prev = np.empty((0, 0), dtype=np.float64)
        self._halo_cur = np.empty((0, 0), dtype=np.float64)
        self._prestaged: Optional[
            Tuple[int, np.ndarray, np.ndarray, np.ndarray, np.ndarray]
        ] = None

    def stage_halo(
        self, ids: np.ndarray, prev: np.ndarray, cur: np.ndarray
    ) -> None:
        """Deposit this tick's halo band (global ids + both endpoints)."""
        self._halo_ids = ids
        self._halo_prev = prev
        self._halo_cur = cur

    def prestage(self, tick: int) -> None:
        """Gather the owned-row planes early, overlapping the barrier.

        A process-topology child calls this right after replying to the
        ``halo`` command: no command between ``halo`` and ``verdict``
        mutates the store, so the copies are exactly what :meth:`run`
        would gather — made while the front door is still collecting the
        peers' halo metadata and computing consumer masks.  :meth:`run`
        consumes the cache only when the tick matches, so a respawn or
        retry in between degrades to a fresh gather, never a stale one.
        """
        store = self._owner.store
        ids = np.asarray(store.row_ids())
        alive_rows = np.nonzero(ids >= 0)[0]
        prev_plane, cur_plane = store.snapshot_arrays()
        self._prestaged = (
            int(tick),
            alive_rows,
            ids[alive_rows].copy(),
            prev_plane[alive_rows].copy(),
            cur_plane[alive_rows].copy(),
        )

    def run(self, ctx: TickContext, tracer: Tracer) -> None:
        store = self._owner.store
        ctx.allow_carry = False
        flagged_rows = store.flagged_rows()
        if flagged_rows.size == 0:
            # No verdicts owed by this shard: publish-only tick.
            ctx.flagged = ()
            ctx.verdict_targets = ()
            return
        with tracer.span("dirty-region"):
            affected_rows = (
                store.index.devices_near_cells(
                    ctx.dirty_cells, self._owner.tracker.rings
                )
                if ctx.dirty_cells
                else set()
            )
        with tracer.span(self.name):
            pre = self._prestaged
            self._prestaged = None
            if pre is not None and pre[0] == ctx.tick:
                _, alive_rows, own_ids, own_prev, own_cur = pre
            else:
                ids_arr = np.asarray(store.row_ids())
                alive_rows = np.nonzero(ids_arr >= 0)[0]
                own_ids = ids_arr[alive_rows]
                prev_plane, cur_plane = store.snapshot_arrays()
                own_prev = prev_plane[alive_rows]
                own_cur = cur_plane[alive_rows]
            halo_ids = self._halo_ids
            part_ids = np.concatenate([own_ids, halo_ids])
            n_part = part_ids.shape[0]
            order = np.argsort(part_ids, kind="stable")
            rank = np.empty(n_part, dtype=np.int64)
            rank[order] = np.arange(n_part, dtype=np.int64)
            n_owned = own_ids.shape[0]
            # Store row -> local rank, for targets and affected rows.
            used = np.asarray(store.row_ids()).shape[0]
            rank_by_row = np.full(used, -1, dtype=np.int64)
            rank_by_row[alive_rows] = rank[:n_owned]
            dim = store.dim
            # tau needs at least tau + 1 participants; the pad rows are
            # unflagged zeros — invisible to the flagged-only indexes,
            # so the padded transition is exact, not approximate.
            pad = max(0, self._tau + 1 - n_part)
            prev_arr = np.empty((n_part + pad, dim), dtype=np.float64)
            cur_arr = np.empty((n_part + pad, dim), dtype=np.float64)
            prev_arr[rank[:n_owned]] = own_prev
            cur_arr[rank[:n_owned]] = own_cur
            if halo_ids.size:
                prev_arr[rank[n_owned:]] = self._halo_prev
                cur_arr[rank[n_owned:]] = self._halo_cur
            if pad:
                prev_arr[n_part:] = 0.0
                cur_arr[n_part:] = 0.0
            prev_arr.flags.writeable = False
            cur_arr.flags.writeable = False
            key_of = np.full(n_part + pad, -1, dtype=np.int64)
            key_of[rank] = part_ids
            targets = tuple(
                int(l) for l in np.sort(rank_by_row[flagged_rows])
            )
            flagged_local = sorted(targets)
            if halo_ids.size:
                flagged_local = sorted(
                    [*flagged_local, *rank[n_owned:].tolist()]
                )
            ctx.key_of = key_of
            ctx.verdict_targets = targets
            ctx.flagged = tuple(flagged_local)
            ctx.affected = {
                int(rank_by_row[row])
                for row in affected_rows
                if rank_by_row[row] >= 0
            }
            ctx.transition = Transition.from_views(
                prev_arr, cur_arr, ctx.flagged, self._r, self._tau
            )


class _ShardWorker:
    """One spatial shard: store partition, tracker, engine, pipeline.

    ``planes_factory`` backs the store with shared-memory planes (the
    process topology's kill-survivable partition); ``store`` hands in a
    pre-built store (a respawned child adopting its predecessor's
    planes, or a degraded inline fallback); ``defer_advance`` makes
    :meth:`run_tick` leave the snapshot roll to the *next* tick's first
    mutating command, so a mid-verdict kill always leaves the planes
    holding a consistent ``(S_{k-1}, S_k)`` pair.
    """

    def __init__(
        self,
        shard: int,
        positions: Optional[np.ndarray],
        ids: Optional[np.ndarray],
        dim: int,
        config: ServiceConfig,
        tracer: Tracer,
        *,
        planes_factory=None,
        defer_advance: bool = False,
        store: Optional[DeviceStateStore] = None,
    ) -> None:
        self.shard = int(shard)
        self._defer_advance = bool(defer_advance)
        cfg = config
        if store is not None:
            self.store = store
        elif positions is not None and positions.shape[0]:
            self.store = DeviceStateStore(
                positions,
                cell=cfg.cell,
                shards=cfg.shards,
                ids=ids,
                planes_factory=planes_factory,
            )
        else:
            # The store needs at least one row to exist; seed a
            # placeholder and evict it so the shard starts empty with a
            # reusable free row.
            self.store = DeviceStateStore(
                np.zeros((1, dim)),
                cell=cfg.cell,
                shards=cfg.shards,
                planes_factory=planes_factory,
            )
            self.store.leave(0)
        self.tracker = DirtyRegionTracker(
            cell=cfg.cell,
            influence_radius=4.0 * cfg.r,
            family_radius=2.0 * cfg.r,
        )
        self.engine = CharacterizationEngine(
            EngineConfig(
                backend=cfg.backend,
                workers=cfg.workers,
                max_worker_tasks=cfg.max_worker_tasks,
                dispatch_deadline=cfg.dispatch_deadline,
            )
        )
        self.tracer = tracer
        self.channel = _HaloChannel()
        self.index_stage = IndexUpdateStage(self)
        self.transition_stage = HaloTransitionBuildStage(self, cfg.r, cfg.tau)
        self.verdict_stage = VerdictStage(
            self,
            incremental=cfg.incremental,
            reuse_motions=False,
            transition_source=self.transition_stage,
        )
        self.pipeline = TickPipeline(
            [self.transition_stage, self.verdict_stage]
        )
        self._verdict_rows: Optional[np.ndarray] = None

    def publish_halo(self, boundary: "ShardMap", *, seq: int = 0) -> None:
        """Publish this shard's boundary band of flagged rows.

        ``seq`` (the tick number) gates the consumers' reads; the chaos
        injector can stall the publish here, which must delay only the
        consumers' seq-gated barrier, never hand them a stale band.
        """
        injector = get_injector()
        if injector.active:
            stall = injector.halo_publish(int(seq), self.shard)
            if stall:
                time.sleep(stall)
        store = self.store
        rows = store.flagged_rows()
        if rows.size:
            keys = store.index.keys_of_rows(rows)
            mask = boundary.boundary_mask(keys, self.shard)
            rows = rows[mask]
            keys = keys[mask]
        else:
            keys = np.empty((0, store.dim), dtype=np.int64)
        ids = np.asarray(store.row_ids())[rows]
        prev_plane, cur_plane = store.snapshot_arrays()
        self.channel.publish(
            ids, keys, prev_plane[rows], cur_plane[rows], seq=seq
        )

    def run_tick(self, ctx: TickContext) -> TickContext:
        """Run the local pipeline, record codes, roll the snapshots."""
        self.pipeline.run(ctx, self.tracer)
        self._record_verdict_codes(ctx)
        if not self._defer_advance:
            self.store.advance_tick()
        return ctx

    def _record_verdict_codes(self, ctx: TickContext) -> None:
        store = self.store
        if self._verdict_rows is not None and self._verdict_rows.size:
            store.set_verdict_codes(
                self._verdict_rows,
                np.full(self._verdict_rows.shape[0], -1, dtype=np.int8),
            )
        targets = ctx.verdict_targets or ()
        if targets and ctx.key_of is not None:
            devices = [int(ctx.key_of[l]) for l in targets]
            rows = np.fromiter(
                (store.row_of(j) for j in devices),
                dtype=np.int64,
                count=len(devices),
            )
            codes = np.fromiter(
                (
                    _VERDICT_CODE[ctx.verdicts[j].anomaly_type]
                    for j in devices
                ),
                dtype=np.int8,
                count=len(devices),
            )
            store.set_verdict_codes(rows, codes)
            self._verdict_rows = rows
        else:
            self._verdict_rows = None

    def close(self) -> None:
        self.channel.close()
        self.engine.close()


def _ctx_result(worker: _ShardWorker, ctx: TickContext) -> Dict[str, Any]:
    """One shard's tick outcome as a plain, picklable result dict.

    The single merge currency of both topologies: thread-mode workers
    produce it in the parent, process-mode children produce it in
    :func:`repro.online.procshard.handle_command` and ship it up the
    pipe — so the front door's merge loop cannot diverge between modes.
    Verdict maps are already keyed by global ids; local ranks are
    translated through ``ctx.key_of`` here, before the context dies.
    """
    key_of = ctx.key_of
    targets = ctx.verdict_targets or ()
    if key_of is not None:
        flagged = [int(key_of[l]) for l in targets]
        recomputed = [int(key_of[l]) for l in ctx.recompute]
        reused = [int(key_of[l]) for l in ctx.reused]
    else:
        flagged, recomputed, reused = [], [], []
    return {
        "verdicts": dict(ctx.verdicts),
        "flagged": flagged,
        "recomputed": recomputed,
        "reused": reused,
        "families_recomputed": int(ctx.families_recomputed),
        "families_reused": int(ctx.families_reused),
        "n_targets": len(targets),
        "stage_seconds": worker.tracer.drain_stages(),
        "n": worker.store.n,
    }


class ShardedService:
    """Front door over ``topology_shards`` spatial shard workers.

    Speaks the single service's driver API — :meth:`ingest`,
    :meth:`feed_snapshot`, :meth:`feed_measurements`, :meth:`end_tick`,
    sinks — and produces one merged
    :class:`~repro.online.service.OnlineTick` per tick whose verdict map
    is identical (type, rule, witness) to what one
    :class:`~repro.online.service.OnlineCharacterizationService` over
    the same stream would produce.  ``OnlineTick.transition`` is
    ``None``: there is no global transition object, only per-shard ones.

    Parameters
    ----------
    initial_positions:
        ``(n, d)`` QoS state at service start; devices get global ids
        ``0..n-1`` and are partitioned by the cell→shard map.
    config:
        The standard :class:`~repro.online.service.ServiceConfig`
        (``shards`` remains the *store-internal* shard count, applied
        per partition store; the spatial topology is this class's own
        parameter).
    topology_shards:
        Number of spatial shards tiling the unit cube.
    topology_workers:
        ``"thread"`` (default) runs shard pipelines on an in-process
        thread pool; ``"process"`` hosts each shard in a supervised
        long-lived daemonic process whose store partition lives in
        shared-memory planes — the wall-clock-scaling topology (thread
        shards share the GIL and anti-scale).
    min_shard_devices:
        When positive, collapse the topology so every shard starts with
        at least this many devices (a shard below it pays more in halo
        exchange and fixed per-tick overhead than it wins back); emits a
        :class:`RuntimeWarning` naming the collapsed shard count.
    parallel:
        Run the per-shard pipelines on a thread pool (per-shard engines
        may themselves be process pools for multi-core scaling).
        Ignored under the process topology, which is always parallel.
    """

    def __init__(
        self,
        initial_positions: np.ndarray,
        config: Optional[ServiceConfig] = None,
        *,
        topology_shards: int = 4,
        topology_workers: str = "thread",
        min_shard_devices: int = 0,
        parallel: bool = True,
        sinks: Iterable[Callable[[OnlineTick], None]] = (),
        detector: Optional[DetectorLike] = None,
        detection: Optional[str] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self._config = config or ServiceConfig()
        cfg = self._config
        if topology_workers not in ("thread", "process"):
            raise ConfigurationError(
                f"topology_workers must be 'thread' or 'process', "
                f"got {topology_workers!r}"
            )
        pts = np.asarray(initial_positions, dtype=float)
        if pts.ndim != 2 or pts.shape[0] < 1:
            raise DimensionMismatchError(
                "initial_positions must be a non-empty (n, d) array"
            )
        self._dim = int(pts.shape[1])
        self._process = topology_workers == "process"
        if min_shard_devices and topology_shards > 1:
            cap = max(1, pts.shape[0] // int(min_shard_devices))
            if cap < topology_shards:
                warnings.warn(
                    f"collapsing topology from {topology_shards} to {cap} "
                    f"shard(s): {pts.shape[0]} devices is below "
                    f"min_shard_devices={min_shard_devices} per shard",
                    RuntimeWarning,
                    stacklevel=2,
                )
                topology_shards = cap
        self._tracer = tracer if tracer is not None else Tracer()
        registry = self._tracer.registry
        self._gauge_queue_depth = registry.gauge(
            "repro_service_queue_depth",
            "Ingest-queue backlog observed at each tick close",
        )
        self._gauge_devices = registry.gauge(
            "repro_service_devices", "Devices tracked by the store"
        )
        self._gauge_flagged = registry.gauge(
            "repro_service_flagged_devices",
            "Devices flagged at the latest tick",
        )
        self._gauge_shard_devices = registry.gauge(
            "repro_shard_devices",
            "Devices resident per spatial shard",
            labelnames=("shard",),
        )
        self._gauge_shard_flagged = registry.gauge(
            "repro_shard_flagged_devices",
            "Flagged devices per spatial shard",
            labelnames=("shard",),
        )
        self._hist_shard_stage = registry.histogram(
            "repro_shard_stage_seconds",
            "Per-shard wall-clock seconds by pipeline stage",
            labelnames=("shard", "stage"),
        )
        self._counter_respawns = registry.counter(
            "repro_shard_respawns_total",
            "Shard worker processes killed and respawned by supervision",
            labelnames=("shard",),
        )
        self._gauge_degraded = registry.gauge(
            "repro_topology_degraded_shards",
            "Shards degraded to the in-parent serial fallback",
        )
        self._counter_halo_bytes = registry.counter(
            "repro_halo_bytes_total",
            "Halo band bytes shipped between shards, both endpoints",
        )
        tracker_probe = DirtyRegionTracker(
            cell=cfg.cell, influence_radius=4.0 * cfg.r
        )
        # One spare ring on top of the influence band absorbs the grid
        # indexes' 1e-12 query tolerance at cell-boundary extremes.
        self._map = ShardMap(
            topology_shards,
            cell=cfg.cell,
            dim=self._dim,
            halo_rings=tracker_probe.rings + 1,
        )
        keys = np.floor(pts / cfg.cell).astype(np.int64)
        owners = self._map.shard_of_keys(keys)
        self._workers: List[_ShardWorker] = []
        self._handles: List[Any] = []
        self._board: Optional[_FrameBoard] = None
        self._orphans: List[str] = []
        self._respawned_since_dirty = False
        self._prev_dirty: Tuple[CellKey, ...] = ()
        self._mover_cells: Set[CellKey] = set()
        self._mover_carry: Set[CellKey] = set()
        self._shard_flagged: List[int] = [0] * self._map.n_shards
        if self._process:
            self._board = _FrameBoard()
            for shard in range(self._map.n_shards):
                mask = owners == shard
                ids = np.nonzero(mask)[0].astype(np.int64)
                self._handles.append(
                    _ProcessShardHandle(
                        shard,
                        cfg,
                        self._dim,
                        self._map,
                        pts[mask],
                        ids,
                        self._tracer.enabled,
                    )
                )
        else:
            for shard in range(self._map.n_shards):
                mask = owners == shard
                ids = np.nonzero(mask)[0].astype(np.int64)
                self._workers.append(
                    _ShardWorker(
                        shard,
                        pts[mask],
                        ids,
                        self._dim,
                        cfg,
                        Tracer(registry, enabled=self._tracer.enabled),
                    )
                )
        self._owner: Dict[int, int] = {
            int(device): int(shard)
            for device, shard in enumerate(owners.tolist())
        }
        self._bank: Optional[DetectorBank] = None
        self._last_detection: Optional[BankDetection] = None
        if detector is not None:
            self._bank = as_bank(detector, pts.shape[0], self._dim, plane=detection)
            self._last_detection = self._bank.observe_batch(pts)
        elif detection is not None:
            raise ConfigurationError(
                "detection plane given without a detector spec or bank"
            )
        self._queue: Deque[QosUpdate] = deque()
        self._applied_since_tick = 0
        self._sinks: List[Callable[[OnlineTick], None]] = list(sinks)
        self._ingest_stage = IngestDrainStage(
            lambda: self._apply_batch(
                self._config.max_batch or len(self._queue)
            ),
            lambda: len(self._queue),
        )
        self._sink_stage = SinkStage(self._sinks)
        self._parallel = (
            bool(parallel) and self._map.n_shards > 1 and not self._process
        )
        self._executor: Optional[ThreadPoolExecutor] = (
            ThreadPoolExecutor(
                max_workers=self._map.n_shards,
                thread_name_prefix="repro-shard",
            )
            if self._parallel
            else None
        )
        self._tick = 0
        self._closed = False
        self.stats = ServiceStats()
        self.rejected: Dict[str, int] = {}
        self._rejected_counter = registry.counter(
            "repro_service_rejected_total",
            "Malformed inputs rejected by the service, by reason",
            labelnames=("reason",),
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def config(self) -> ServiceConfig:
        """The (per-shard) service configuration."""
        return self._config

    @property
    def topology(self) -> ShardMap:
        """The cell→shard tiling of the unit cube."""
        return self._map

    @property
    def n_shards(self) -> int:
        """Number of spatial shards."""
        return self._map.n_shards

    @property
    def topology_workers(self) -> str:
        """``"thread"`` or ``"process"`` — where shard pipelines run."""
        return "process" if self._process else "thread"

    @property
    def workers(self) -> Tuple[_ShardWorker, ...]:
        """The per-shard workers (thread topology; empty under process)."""
        return tuple(self._workers)

    @property
    def handles(self) -> Tuple[Any, ...]:
        """The per-shard process handles (process topology; else empty)."""
        return tuple(self._handles)

    @property
    def n(self) -> int:
        """Number of live devices across every shard."""
        if self._process:
            return sum(handle.n for handle in self._handles)
        return sum(worker.store.n for worker in self._workers)

    @property
    def dim(self) -> int:
        """Number of services per device."""
        return self._dim

    @property
    def nbytes(self) -> int:
        """Columnar bytes held across every shard's store.

        Process shards report their shm plane segment size (derived
        from the capacity echoed in every reply header), so no
        roundtrip is needed.
        """
        if self._process:
            fields = store_plane_fields(self._dim)
            total = 0
            for handle in self._handles:
                if isinstance(handle, _InlineShardHandle):
                    total += handle.inner.store.nbytes
                else:
                    total += ShmPlanes.required_bytes(
                        handle.plane_capacity, fields
                    )
            return total
        return sum(worker.store.nbytes for worker in self._workers)

    @property
    def bytes_per_device(self) -> float:
        """Average columnar bytes per live device."""
        return self.nbytes / max(1, self.n)

    @property
    def current_tick(self) -> int:
        """Number of completed ticks."""
        return self._tick

    @property
    def queued(self) -> int:
        """Events currently waiting in the front-door queue."""
        return len(self._queue)

    @property
    def tracer(self) -> Tracer:
        """The front-door tracer (workers own per-shard tracers)."""
        return self._tracer

    @property
    def bank(self) -> Optional[DetectorBank]:
        """The front-door detector bank (None without a ``detector``)."""
        return self._bank

    @property
    def last_detection(self) -> Optional[BankDetection]:
        """The bank's most recent batch detection, if any."""
        return self._last_detection

    @property
    def verdicts(self) -> Dict[int, Characterization]:
        """The merged verdict map across shards (a copy)."""
        merged: Dict[int, Characterization] = {}
        if self._process:
            for cache in self._query("verdicts"):
                merged.update(cache)
            return merged
        for worker in self._workers:
            merged.update(worker.verdict_stage.cache)
        return merged

    def flagged_devices(self) -> Tuple[int, ...]:
        """Currently flagged devices across every shard, sorted."""
        out: List[int] = []
        if self._process:
            for part in self._query("flagged"):
                out.extend(part)
        else:
            for worker in self._workers:
                out.extend(worker.store.flagged_devices())
        return tuple(sorted(out))

    def shard_flagged_counts(self) -> Tuple[int, ...]:
        """Verdict targets per shard at the latest tick (both modes)."""
        return tuple(self._shard_flagged)

    def shard_of(self, device: int) -> int:
        """The spatial shard currently owning ``device``."""
        shard = self._owner.get(int(device))
        if shard is None:
            raise ConfigurationError(f"device {device} is not in the service")
        return shard

    def shard_sizes(self) -> Tuple[int, ...]:
        """Resident device count per spatial shard."""
        if self._process:
            return tuple(handle.n for handle in self._handles)
        return tuple(worker.store.n for worker in self._workers)

    def add_sink(self, sink: Callable[[OnlineTick], None]) -> None:
        """Attach a sink called with every finished :class:`OnlineTick`."""
        self._sinks.append(sink)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release every shard's engine, halo ring and the thread pool."""
        if self._closed:
            return
        self._closed = True
        if self._executor is not None:
            self._executor.shutdown(wait=True)
        for worker in self._workers:
            worker.close()
        for handle in self._handles:
            handle.shutdown()
        if self._board is not None:
            self._board.close()
        self._drain_orphans()

    # ------------------------------------------------------------------
    # Process-topology supervision
    # ------------------------------------------------------------------
    def _phase(
        self, msgs: List[Optional[tuple]], *, chaos: bool = False
    ) -> List[Any]:
        """One scatter/collect roundtrip; ``None`` skips that shard.

        All commands go down every pipe before any reply is awaited —
        the shards run the phase concurrently and the parent blocks on
        the slowest.  A child-side error is re-raised only after *every*
        outstanding reply is drained, so one failing shard never leaves
        another's reply stranded in a pipe to desynchronize the next
        phase.
        """
        for handle, msg in zip(self._handles, msgs):
            if msg is None:
                continue
            if chaos:
                self._send_with_chaos(handle, msg)
            else:
                handle.send(msg)
        results: List[Any] = [None] * len(msgs)
        error: Optional[BaseException] = None
        for shard, msg in enumerate(msgs):
            if msg is None:
                continue
            try:
                results[shard] = self._collect_one(shard)
            except Exception as exc:
                if error is None:
                    error = exc
        if error is not None:
            raise error
        return results

    def _query(self, what: str) -> List[Any]:
        """Read-only fan-out (``frame`` / ``verdicts`` / ``flagged``)."""
        return self._phase(
            [
                ("query", self._tick, {"what": what})
                for _ in range(self._map.n_shards)
            ]
        )

    def _collect_one(self, shard: int) -> Any:
        """Await one shard's reply, supervising the roundtrip.

        A dead or deadline-missing child is respawned against its
        surviving shm planes and the last *canonical* command is resent,
        up to ``dispatch_retries`` times; after that the shard degrades
        to an in-parent serial worker running the same command handler
        (degraded, never divergent).  Error replies from a *healthy*
        child are protocol answers, not faults — they map back to the
        original exception class and are never retried.
        """
        deadline = self._config.dispatch_deadline
        retries = self._config.dispatch_retries
        attempt = 0
        while True:
            handle = self._handles[shard]
            try:
                ok, name, capacity, n, payload = handle.recv(deadline)
            except ShardRoundtripError:
                if attempt < retries:
                    attempt += 1
                    self._note_respawn(shard, handle.respawn())
                    handle.resend_last()
                    continue
                self._fallback_inline(shard)
                continue
            if ok:
                if name is not None:
                    handle.plane_name = name
                    handle.plane_capacity = int(capacity)
                    handle.n = int(n)
                return payload
            exc_name, tb = payload
            exc_cls = _CHILD_ERRORS.get(exc_name, RuntimeError)
            raise exc_cls(f"shard {shard} worker command failed:\n{tb}")

    def _send_with_chaos(self, handle: Any, msg: tuple) -> None:
        """Ship one verdict command through the chaos injector.

        Reuses the pool-dispatch fault vocabulary keyed on (tick,
        shard): ``kill`` strikes before the send (dispatch meets a dead
        worker), ``kill_after`` right after (EOF mid-task); drop/hang
        decorate the payload with flags only the child's *pipe loop*
        honors — the canonical, undecorated command is what supervision
        remembers and resends, so a retry replays the intended work.
        """
        injector = get_injector()
        action = (
            injector.pool_dispatch(int(msg[1]), handle.shard)
            if injector.active
            else None
        )
        if action is None:
            handle.send(msg)
            return
        if action.delay:
            time.sleep(action.delay)
        if action.kill:
            handle.terminate_child()
        decorated = msg
        if action.drop_reply or action.hang:
            op, tick, payload = msg
            payload = dict(payload)
            if action.drop_reply:
                payload["_drop_reply"] = True
            if action.hang:
                payload["_hang"] = action.hang
            decorated = (op, tick, payload)
        handle.send(decorated, canonical=msg)
        if action.kill_after:
            handle.terminate_child()

    def _note_respawn(self, shard: int, orphans: Iterable[str]) -> None:
        self._orphans.extend(orphans)
        self._respawned_since_dirty = True
        self._counter_respawns.labels(shard=str(shard)).inc()

    def _fallback_inline(self, shard: int) -> None:
        """Degrade ``shard`` to an in-parent serial worker.

        The dead child's shm planes are adopted, copied onto the heap
        (releasing the segments), and wrapped in a fresh deferred-advance
        worker with conservatively invalidated caches; the in-flight
        command is re-queued on the inline handle so the caller's
        ``recv`` loop re-executes it locally.
        """
        handle = self._handles[shard]
        msg = handle.last_msg
        self._orphans.extend(handle.kill())
        self._respawned_since_dirty = True
        cfg = self._config
        planes = attach_store_planes(
            handle.plane_name, handle.plane_capacity, self._dim
        )
        adopted = DeviceStateStore.adopt_planes(
            planes, cell=cfg.cell, shards=cfg.shards
        )
        state = adopted.state()
        adopted.release_planes(unlink=True)
        worker = _ShardWorker(
            shard,
            None,
            None,
            self._dim,
            _serial_config(cfg),
            Tracer(self._tracer.registry, enabled=self._tracer.enabled),
            store=DeviceStateStore.from_state(state),
            defer_advance=True,
        )
        _mark_recovered(worker)
        inline = _InlineShardHandle(worker, self._map)
        inline.send(msg)
        self._handles[shard] = inline
        self._gauge_degraded.set(
            sum(
                1
                for h in self._handles
                if isinstance(h, _InlineShardHandle)
            )
        )

    def _drain_orphans(self) -> None:
        """Unlink segments orphaned by kills — only after the tick's
        consumers are done reading them (end of ``end_tick``)."""
        for name in self._orphans:
            unlink_by_name(name)
        self._orphans = []

    def __enter__(self) -> "ShardedService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def checkpoint(self, directory, *, extra=None):
        """Write one consistent-cut sharded checkpoint under ``directory``."""
        from repro.online.recovery import save_sharded_checkpoint

        return save_sharded_checkpoint(self, directory, extra=extra)

    @classmethod
    def restore(cls, source, **kwargs) -> "ShardedService":
        """Rebuild a sharded service from a checkpoint manifest."""
        from repro.online.recovery import restore_sharded_service

        return restore_sharded_service(source, **kwargs)

    def shard_states(self) -> List[Tuple[Dict, Dict, Dict]]:
        """Per-shard ``(store_state, tracker_state, verdict_cache)``.

        The sharded checkpoint's consistent cut, topology-agnostic:
        under the process topology the ``state`` command first rolls any
        deferred tick advance, so the captured states are bit-identical
        to what the thread topology would hand over between ticks.
        """
        if self._process:
            return self._phase(
                [("state", self._tick, {}) for _ in range(self._map.n_shards)]
            )
        return [
            (
                worker.store.state(),
                worker.tracker.state(),
                dict(worker.verdict_stage.cache),
            )
            for worker in self._workers
        ]

    def load_shard_states(self, parts) -> None:
        """Reinstate per-shard states from checkpoint parts, in shard order.

        Stores, trackers and verdict caches are reinstated exactly;
        cross-tick perf caches start cold.  The device→shard owner map
        is rebuilt from the parts' id columns at the front door —
        placement is part of the stores' state, never recomputed from
        positions — so neither topology needs a post-restore roundtrip.
        """
        owner: Dict[int, int] = {}
        for shard, part in enumerate(parts):
            if int(part.shard) != shard:
                raise ConfigurationError(
                    f"shard part order mismatch: slot {shard} got part "
                    f"{part.shard}"
                )
            ids = np.asarray(part.store_state["id_of"])
            for device in ids[ids >= 0].tolist():
                owner[int(device)] = shard
        if self._process:
            self._phase(
                [
                    (
                        "restore",
                        0,
                        {
                            "store": part.store_state,
                            "tracker": part.tracker_state,
                            "verdicts": part.verdicts,
                        },
                    )
                    for part in parts
                ]
            )
        else:
            for worker, part in zip(self._workers, parts):
                store = DeviceStateStore.from_state(part.store_state)
                worker.store = store
                worker.tracker.restore_state(part.tracker_state)
                worker.verdict_stage.cache = dict(part.verdicts)
                worker.verdict_stage.last_cache = None
                worker.transition_stage.last_transition = None
                rows = np.nonzero(store.verdict_codes() != NO_VERDICT)[0]
                worker._verdict_rows = rows if rows.size else None
        self._owner = owner

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    def join(
        self, device: int, position: Sequence[float], flagged: bool = False
    ) -> int:
        """Admit a device on the shard owning its cell; returns the shard."""
        device = int(device)
        if device in self._owner:
            raise ConfigurationError(f"device {device} is already stored")
        pos = np.asarray(position, dtype=float)
        key = np.floor(pos / self._config.cell).astype(np.int64)
        shard = int(self._map.shard_of_keys(key[None, :])[0])
        if self._process:
            self._phase_one(
                shard,
                (
                    "join",
                    self._tick + 1,
                    {
                        "device": device,
                        "position": pos,
                        "flagged": bool(flagged),
                    },
                ),
            )
        else:
            self._workers[shard].store.join(device, pos, flagged)
        self._owner[device] = shard
        return shard

    def leave(self, device: int) -> int:
        """Evict a device from its owning shard; returns the shard."""
        shard = self.shard_of(device)
        if self._process:
            self._phase_one(
                shard, ("leave", self._tick + 1, {"device": int(device)})
            )
        else:
            self._workers[shard].store.leave(int(device))
        del self._owner[int(device)]
        return shard

    def _phase_one(self, shard: int, msg: tuple) -> Any:
        """A single-shard roundtrip (membership commands)."""
        msgs: List[Optional[tuple]] = [None] * self._map.n_shards
        msgs[shard] = msg
        return self._phase(msgs)[shard]

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------
    def ingest(self, update: QosUpdate) -> bool:
        """Enqueue one event; same backpressure contract as the service."""
        cfg = self._config
        accepted = True
        if len(self._queue) >= cfg.queue_capacity:
            if cfg.backpressure == "error":
                raise QueueFullError(
                    f"ingest queue is at capacity ({cfg.queue_capacity})"
                )
            if cfg.backpressure == "drop-oldest":
                self._queue.popleft()
                self.stats.updates_dropped += 1
                accepted = False
            else:
                with self._tracer.span("ingest-drain"):
                    self._apply_batch(cfg.max_batch or len(self._queue))
                self.stats.inline_drains += 1
        self._queue.append(update)
        return accepted

    def ingest_many(self, updates: Iterable[QosUpdate]) -> int:
        """Enqueue a batch; returns how many were accepted cleanly."""
        return sum(1 for update in updates if self.ingest(update))

    def _reject(self, reason: str, count: int = 1) -> None:
        if count <= 0:
            return
        self.rejected[reason] = self.rejected.get(reason, 0) + count
        self._rejected_counter.labels(reason=reason).inc(count)

    def _apply_batch(self, limit: int) -> int:
        """Pop up to ``limit`` events and apply them, routed per shard."""
        batch: List[QosUpdate] = []
        while self._queue and len(batch) < limit:
            batch.append(self._queue.popleft())
        if not batch:
            return 0
        start = 0
        seen: Set[int] = set()
        applied = 0
        for i, update in enumerate(batch):
            if update.device in seen:
                applied += self._apply_segment(batch[start:i])
                start = i
                seen = set()
            seen.add(update.device)
        applied += self._apply_segment(batch[start:])
        self.stats.updates_applied += applied
        self._applied_since_tick += applied
        return len(batch)

    def _apply_segment(self, segment: List[QosUpdate]) -> int:
        """Apply one duplicate-free run, one row batch per owning shard.

        Routing and input validation happen here at the front door in
        both topologies (identical rejection counters); the thread path
        then applies rows directly, while the process path ships
        *global device ids* down the pipes — row numbers are a private
        concern of whichever child currently hosts the partition.
        """
        dim = self._dim
        by_shard: Dict[int, List[QosUpdate]] = {}
        for update in segment:
            shard = self._owner.get(update.device)
            if shard is None:
                self._reject("unknown-device")
                continue
            if len(update.position) != dim:
                self._reject("dimension-mismatch")
                continue
            by_shard.setdefault(shard, []).append(update)
        total = 0
        msgs: List[Optional[tuple]] = [None] * self._map.n_shards
        for shard, kept in by_shard.items():
            positions = np.array(
                [update.position for update in kept], dtype=float
            )
            nan_bad = np.isnan(positions).any(axis=1)
            inf_bad = np.isinf(positions).any(axis=1)
            finite = ~(nan_bad | inf_bad)
            range_bad = finite & (
                (positions < 0.0).any(axis=1) | (positions > 1.0).any(axis=1)
            )
            self._reject("nan", int(nan_bad.sum()))
            self._reject("inf", int(inf_bad.sum()))
            self._reject("out-of-range", int(range_bad.sum()))
            good = finite & ~range_bad
            if not good.all():
                idx = np.nonzero(good)[0]
                if idx.size == 0:
                    continue
                positions = positions[idx]
                kept = [kept[i] for i in idx.tolist()]
            flags = np.fromiter(
                (update.flagged for update in kept),
                dtype=bool,
                count=len(kept),
            )
            ids = np.fromiter(
                (update.device for update in kept),
                dtype=np.int64,
                count=len(kept),
            )
            if self._process:
                msgs[shard] = (
                    "events",
                    self._tick + 1,
                    {"ids": ids, "positions": positions, "flags": flags},
                )
            else:
                worker = self._workers[shard]
                rows = np.fromiter(
                    (worker.store.row_of(int(j)) for j in ids.tolist()),
                    dtype=np.int64,
                    count=ids.shape[0],
                )
                applied = worker.store.apply_rows(rows, positions, flags)
                worker.tracker.mark_batch(
                    applied, was_relevant=applied.was_flagged
                )
            total += len(kept)
        if self._process and any(msg is not None for msg in msgs):
            self._phase(msgs)
        return total

    # ------------------------------------------------------------------
    # Migration
    # ------------------------------------------------------------------
    def _migrate(self) -> int:
        """Move devices whose current cell left their shard's box.

        Runs after the tick's updates are applied (the source shard's
        tracker has already marked the crossing move's cells, and they
        enter the global dirty union) and before the halo exchange, so
        every published row lies in its publisher's own box.  The
        handover uses :meth:`DeviceStateStore.admit` — a plain ``join``
        would restart the trajectory as stationary and erase the very
        move that crossed the border.
        """
        if self._process:
            return self._migrate_process()
        moves: List[Tuple[int, int, int]] = []
        for shard, worker in enumerate(self._workers):
            store = worker.store
            ids = np.asarray(store.row_ids())
            alive_rows = np.nonzero(ids >= 0)[0]
            if alive_rows.size == 0:
                continue
            keys = store.index.keys_of_rows(alive_rows)
            dest = self._map.shard_of_keys(keys)
            off = np.nonzero(dest != shard)[0]
            for i in off.tolist():
                moves.append((shard, int(dest[i]), int(alive_rows[i])))
        for src, dst, row in moves:
            device, prev, cur, flagged, code = self._workers[
                src
            ].store.row_state(row)
            self._workers[src].store.leave(device)
            self._workers[dst].store.admit(device, prev, cur, flagged, code)
            self._owner[device] = dst
        return len(moves)

    def _migrate_process(self) -> int:
        """Cross-shard handover over the pipes, in three idempotent phases.

        ``movers`` is scan-only, so the parent holds the full handover
        records before any store mutates; ``migrate_out`` then evicts
        (leave-if-present) and ``migrate_in`` admits (admit-if-absent) —
        each phase replays safely after a kill+respawn at any point.
        The parent also folds every mover's trajectory-endpoint cells
        into this tick's and the next tick's dirty union
        (``_mover_cells`` / ``_mover_carry``): if the *source* shard is
        respawned later this tick, the departed device exists in neither
        of its recovered planes, so conservative plane-scan invalidation
        alone would miss the cells its move touched.
        """
        tick = self._tick + 1
        n_shards = self._map.n_shards
        replies = self._phase([("movers", tick, {})] * n_shards)
        out_by_src: Dict[int, List[int]] = {}
        in_by_dst: Dict[int, List[tuple]] = {}
        cell = self._config.cell
        moves = 0
        for src, records in enumerate(replies):
            for dest, device, prev, cur, flagged, code in records or ():
                device, dest = int(device), int(dest)
                out_by_src.setdefault(src, []).append(device)
                in_by_dst.setdefault(dest, []).append(
                    (device, prev, cur, bool(flagged), int(code))
                )
                self._owner[device] = dest
                for point in (prev, cur):
                    key = np.floor(
                        np.asarray(point, dtype=float) / cell
                    ).astype(np.int64)
                    self._mover_cells.add(tuple(key.tolist()))
                moves += 1
        if not moves:
            return 0
        out_msgs: List[Optional[tuple]] = [None] * n_shards
        in_msgs: List[Optional[tuple]] = [None] * n_shards
        for src, devices in out_by_src.items():
            out_msgs[src] = ("migrate_out", tick, {"devices": devices})
        for dst, records in in_by_dst.items():
            in_msgs[dst] = ("migrate_in", tick, {"records": records})
        self._phase(out_msgs)
        self._phase(in_msgs)
        return moves

    # ------------------------------------------------------------------
    # Feeding
    # ------------------------------------------------------------------
    def _gather_current(self) -> np.ndarray:
        """Current positions gathered into one global-id-indexed frame."""
        frame = np.zeros((self.n, self._dim), dtype=float)
        if self._process:
            for ids, positions in self._query("frame"):
                if ids.size:
                    frame[ids] = positions
            return frame
        for worker in self._workers:
            store = worker.store
            ids = np.asarray(store.row_ids())
            alive_rows = np.nonzero(ids >= 0)[0]
            if alive_rows.size:
                frame[ids[alive_rows]] = store.current_positions()[alive_rows]
        return frame

    def feed_snapshot(
        self, current: np.ndarray, flags: Iterable[bool]
    ) -> OnlineTick:
        """One tick from a full snapshot + flag vector, fanned out by id.

        ``current`` is indexed by *global device id* and must cover the
        dense id range ``0..n-1`` — the fixed-fleet contract the
        snapshot drivers (monitor, trace replay, load generator) already
        satisfy.  Churned populations with id gaps flow through
        :meth:`ingest` / :meth:`join` / :meth:`leave` instead.
        """
        current = np.asarray(current, dtype=float)
        flags_arr = np.asarray(list(flags), dtype=bool)
        if (
            current.ndim != 2
            or current.shape[1] != self._dim
            or flags_arr.shape[0] != current.shape[0]
        ):
            self._reject("dimension-mismatch")
            raise DimensionMismatchError(
                f"snapshot frame {current.shape} with {flags_arr.shape[0]} "
                f"flags incompatible with dim {self._dim}"
            )
        self._ingest_stage.run(self._tracer)
        applied_rows = 0
        if self._process:
            name, rows, _ = self._board.publish(current, flags_arr)
            try:
                counts = self._phase(
                    [
                        (
                            "frame",
                            self._tick + 1,
                            {"board": name, "rows": rows, "live": [name]},
                        )
                        for _ in range(self._map.n_shards)
                    ]
                )
            except DimensionMismatchError:
                self._reject("dimension-mismatch")
                raise
            applied_rows = sum(int(count) for count in counts)
        else:
            for worker in self._workers:
                store = worker.store
                ids = np.asarray(store.row_ids())
                alive_rows = np.nonzero(ids >= 0)[0]
                if alive_rows.size == 0:
                    continue
                alive_ids = ids[alive_rows]
                if int(alive_ids.max()) >= current.shape[0]:
                    self._reject("dimension-mismatch")
                    raise DimensionMismatchError(
                        "snapshot frame rows do not cover the fleet's "
                        "global id range; feed churned populations "
                        "through ingest/join/leave"
                    )
                sub_cur = store.current_positions().copy()
                sub_flags = store.flag_vector().copy()
                sub_cur[alive_rows] = current[alive_ids]
                sub_flags[alive_rows] = flags_arr[alive_ids]
                applied_rows += worker.index_stage.apply_diff(
                    sub_cur, sub_flags, worker.tracer
                )
        if applied_rows:
            self.stats.updates_applied += applied_rows
            self._applied_since_tick += applied_rows
        return self.end_tick()

    def feed_measurements(self, values: np.ndarray) -> OnlineTick:
        """One tick from raw QoS vectors: detect at the front door, flag."""
        if self._bank is None:
            raise ConfigurationError(
                "feed_measurements needs a detector; construct the service "
                "with detector=DetectorSpec(...)"
            )
        arr = np.asarray(values, dtype=float)
        injector = get_injector()
        if injector.active:
            arr = injector.corrupt_frame(self._tick + 1, arr)
        arr = self._validate_frame(arr)
        with self._tracer.span("detect"):
            detection = self._bank.observe_batch(arr)
        self._last_detection = detection
        return self.feed_snapshot(arr, detection.flags)

    def _validate_frame(self, arr: np.ndarray) -> np.ndarray:
        n, dim = self.n, self._dim
        if arr.ndim != 2 or arr.shape != (n, dim):
            self._reject("dimension-mismatch")
            raise DimensionMismatchError(
                f"measurement frame shape {arr.shape} incompatible with "
                f"({n}, {dim})"
            )
        nan_bad = np.isnan(arr).any(axis=1)
        inf_bad = np.isinf(arr).any(axis=1)
        finite = ~(nan_bad | inf_bad)
        range_bad = finite & (
            (arr < 0.0).any(axis=1) | (arr > 1.0).any(axis=1)
        )
        bad = ~finite | range_bad
        if not bad.any():
            return arr
        self._reject("nan", int(nan_bad.sum()))
        self._reject("inf", int(inf_bad.sum()))
        self._reject("out-of-range", int(range_bad.sum()))
        if self._config.validation == "strict":
            raise ConfigurationError(
                f"measurement frame has {int(bad.sum())} malformed rows "
                "(NaN/inf/out-of-range) and validation is strict"
            )
        repaired = arr.copy()
        repaired[bad] = self._gather_current()[bad]
        return repaired

    # ------------------------------------------------------------------
    # Tick processing
    # ------------------------------------------------------------------
    def end_tick(self) -> OnlineTick:
        """Close the interval across every shard and merge the results."""
        tracer = self._tracer
        self._gauge_queue_depth.set(len(self._queue))
        self._ingest_stage.run(tracer)
        with tracer.span("shard-migrate"):
            self._migrate()
        applied = self._applied_since_tick
        self._applied_since_tick = 0
        self._tick += 1

        if self._process:
            results, dirty_cells, halo_bytes = self._tick_process(tracer)
        else:
            results, dirty_cells, halo_bytes = self._tick_threads(tracer)

        verdicts: Dict[int, Characterization] = {}
        flagged: List[int] = []
        recomputed: List[int] = []
        reused: List[int] = []
        families_recomputed = 0
        families_reused = 0
        stage_seconds = tracer.drain_stages()
        for shard, result in enumerate(results):
            verdicts.update(result["verdicts"])
            flagged.extend(result["flagged"])
            recomputed.extend(result["recomputed"])
            reused.extend(result["reused"])
            families_recomputed += result["families_recomputed"]
            families_reused += result["families_reused"]
            self._shard_flagged[shard] = result["n_targets"]
            shard_label = str(shard)
            self._gauge_shard_devices.labels(shard=shard_label).set(
                result["n"]
            )
            self._gauge_shard_flagged.labels(shard=shard_label).set(
                result["n_targets"]
            )
            for stage, seconds in result["stage_seconds"].items():
                self._hist_shard_stage.labels(
                    shard=shard_label, stage=stage
                ).observe(seconds)
                stage_seconds[stage] = (
                    stage_seconds.get(stage, 0.0) + seconds
                )

        self.stats.ticks += 1
        self.stats.verdicts_recomputed += len(recomputed)
        self.stats.verdicts_reused += len(reused)
        self.stats.families_recomputed += families_recomputed
        self.stats.families_reused += families_reused
        self._gauge_devices.set(self.n)
        self._gauge_flagged.set(len(flagged))
        if halo_bytes:
            self._counter_halo_bytes.inc(halo_bytes)
        result = OnlineTick(
            tick=self._tick,
            applied=applied,
            flagged=tuple(sorted(flagged)),
            recomputed=tuple(sorted(recomputed)),
            reused=tuple(sorted(reused)),
            dirty_cells=len(dirty_cells),
            verdicts=verdicts,
            transition=None,
            families_recomputed=families_recomputed,
            families_reused=families_reused,
            stage_seconds=stage_seconds,
            halo_bytes=halo_bytes,
        )
        self._sink_stage.run(result, tracer)
        for stage, seconds in tracer.drain_stages().items():
            result.stage_seconds[stage] = (
                result.stage_seconds.get(stage, 0.0) + seconds
            )
        return result

    def _tick_threads(
        self, tracer: Tracer
    ) -> Tuple[List[Dict[str, Any]], Tuple[CellKey, ...], int]:
        """Thread-topology tick: shared-memory in the literal sense."""
        tick = self._tick
        with tracer.span("dirty-region"):
            union: Set[CellKey] = set()
            for worker in self._workers:
                union.update(worker.tracker.finish_cells())
            dirty_cells: Tuple[CellKey, ...] = tuple(sorted(union))

        halo_bytes = 0
        with tracer.span("halo-exchange"):
            for worker in self._workers:
                worker.publish_halo(self._map, seq=tick)
            halo_rings = self._map.halo_rings
            halos: List[Tuple[np.ndarray, np.ndarray, np.ndarray]] = []
            for consumer in self._workers:
                ids_parts: List[np.ndarray] = []
                prev_parts: List[np.ndarray] = []
                cur_parts: List[np.ndarray] = []
                for producer in self._workers:
                    if producer.shard == consumer.shard:
                        continue
                    channel = producer.channel
                    if channel.ids.size == 0:
                        continue
                    dist = self._map.box_distance(
                        channel.keys, consumer.shard
                    )
                    mask = (dist > 0) & (dist <= halo_rings)
                    if not mask.any():
                        continue
                    prev_band, cur_band = channel.read(expected_seq=tick)
                    ids_parts.append(channel.ids[mask])
                    prev_parts.append(prev_band[mask])
                    cur_parts.append(cur_band[mask])
                    halo_bytes += int(mask.sum()) * self._dim * 16
                if ids_parts:
                    halos.append(
                        (
                            np.concatenate(ids_parts),
                            np.concatenate(prev_parts),
                            np.concatenate(cur_parts),
                        )
                    )
                else:
                    halos.append(
                        (
                            np.empty(0, dtype=np.int64),
                            np.empty((0, self._dim), dtype=np.float64),
                            np.empty((0, self._dim), dtype=np.float64),
                        )
                    )

        def run_one(shard: int) -> TickContext:
            worker = self._workers[shard]
            ids, prev_band, cur_band = halos[shard]
            worker.transition_stage.stage_halo(ids, prev_band, cur_band)
            ctx = TickContext(tick=tick, dirty_cells=dirty_cells)
            return worker.run_tick(ctx)

        if self._executor is not None:
            contexts = list(
                self._executor.map(run_one, range(self._map.n_shards))
            )
        else:
            contexts = [run_one(s) for s in range(self._map.n_shards)]
        results = [
            _ctx_result(worker, ctx)
            for worker, ctx in zip(self._workers, contexts)
        ]
        return results, dirty_cells, halo_bytes

    def _tick_process(
        self, tracer: Tracer
    ) -> Tuple[List[Dict[str, Any]], Tuple[CellKey, ...], int]:
        """Process-topology tick: overlapped halo barrier over shm rings.

        The ``halo`` phase makes every child publish its boundary band
        (seq-stamped with the tick) and reply with its dirty cells and
        ring metadata; while the parent unions the dirty sets and
        computes per-consumer halo masks, the children overlap by
        pre-gathering their owned-row planes (:meth:`prestage`).  The
        ``verdict`` phase then ships segment *names* — each child gates
        on the publisher's sequence header before copying its band, so a
        slow publisher delays only its consumers' barrier and can never
        hand them a stale band.

        Three parent-side insurances widen the dirty union beyond the
        children's reports: mover endpoint cells for this tick and the
        next (a respawned source shard has no trace of departed
        devices), and — after any respawn or degrade since the last
        union — the previous tick's whole dirty union, which is a
        superset of the carry set the dead child's tracker lost.
        """
        tick = self._tick
        n_shards = self._map.n_shards
        dim = self._dim
        with tracer.span("halo-exchange"):
            # The halo-delay fault is consulted here, in the parent (a
            # forked child's injector counts would be invisible), and
            # shipped as a reply stall: the child publishes its band
            # first and sleeps before replying, so the fault delays only
            # the barrier — the seq gate proves consumers still read a
            # whole, current band.
            injector = get_injector()
            halo_msgs: List[Optional[tuple]] = []
            for shard in range(n_shards):
                payload: Dict[str, Any] = {}
                if injector.active:
                    stall = injector.halo_publish(tick, shard)
                    if stall:
                        payload["_hang"] = stall
                halo_msgs.append(("halo", tick, payload))
            replies = self._phase(halo_msgs)
            union: Set[CellKey] = set()
            metas: List[Dict[str, Any]] = []
            for shard, (cells, meta) in enumerate(replies):
                union.update(map(tuple, cells))
                metas.append(meta)
                self._handles[shard].ring_names = tuple(meta["live"])
            union.update(self._mover_cells)
            union.update(self._mover_carry)
            if self._respawned_since_dirty:
                union.update(self._prev_dirty)
                self._respawned_since_dirty = False
            dirty_cells: Tuple[CellKey, ...] = tuple(sorted(union))
            self._prev_dirty = dirty_cells
            self._mover_carry = self._mover_cells
            self._mover_cells = set()

            halo_rings = self._map.halo_rings
            halo_bytes = 0
            sources_of: List[List[Dict[str, Any]]] = []
            for consumer in range(n_shards):
                sources: List[Dict[str, Any]] = []
                for meta in metas:
                    if meta["shard"] == consumer:
                        continue
                    ids = meta["ids"]
                    if ids.size == 0:
                        continue
                    dist = self._map.box_distance(meta["keys"], consumer)
                    mask = (dist > 0) & (dist <= halo_rings)
                    if not mask.any():
                        continue
                    take = np.nonzero(mask)[0]
                    halo_bytes += int(take.size) * dim * 16
                    sources.append(
                        {
                            "shard": meta["shard"],
                            "seq": meta["seq"],
                            "rows": meta["rows"],
                            "hdr": meta["hdr"],
                            "prev": meta["prev"],
                            "cur": meta["cur"],
                            "ids": ids[take],
                            "take": take,
                            "live": meta["live"],
                        }
                    )
                sources_of.append(sources)

        results = self._phase(
            [
                (
                    "verdict",
                    tick,
                    {"sources": sources_of[shard], "dirty": dirty_cells},
                )
                for shard in range(n_shards)
            ],
            chaos=True,
        )
        # Segments orphaned by kills stay linked until every consumer is
        # done reading the tick's bands; unlink them only now.
        self._drain_orphans()
        return results, dirty_cells, halo_bytes

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ShardedService(n={self.n}, shards={self._map.n_shards}, "
            f"ticks={self._tick}, queued={len(self._queue)})"
        )
