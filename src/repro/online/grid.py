"""Incrementally maintained uniform-grid spatial index.

:class:`~repro.core.geometry.GridIndex` is batch-built: one pass over an
immutable point array.  That is the right shape for the experiment
drivers, which see each snapshot exactly once — and the wrong shape for
an online service, where a tick that moves ``k`` devices out of ``n``
would pay an O(n) rebuild for O(k) change.  :class:`MutableGridIndex`
keeps the same cell decomposition (side ``cell``, keys
``floor(p / cell)``) in mutable dictionaries so ``insert`` / ``remove`` /
``move`` cost O(1) dictionary work each, and range queries walk exactly
the cells :meth:`GridIndex.query` walks.

Equivalence is part of the contract, not an accident: after *any*
interleaving of mutations, :meth:`query` and :meth:`query_batch` must
return exactly what a freshly built :class:`GridIndex` over the same
points returns (the randomized tests in ``tests/online`` enforce it).
Device identifiers take the place of row indices.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Sequence, Set, Tuple

import numpy as np

from repro.core.errors import (
    ConfigurationError,
    DimensionMismatchError,
    UnknownDeviceError,
)
from repro.core.geometry import _iter_cells

__all__ = ["MutableGridIndex"]

CellKey = Tuple[int, ...]


class MutableGridIndex:
    """Uniform-grid index over points in ``[0, 1]^d`` with O(1) updates.

    Parameters
    ----------
    cell:
        Side of the grid cells (``max(2r, 1e-6)`` matches the batch
        indexes a :class:`~repro.core.transition.Transition` builds).
    dim:
        Dimensionality of the indexed points.
    """

    def __init__(self, cell: float, dim: int) -> None:
        if cell <= 0:
            raise ConfigurationError(f"cell side must be positive, got {cell!r}")
        if dim < 1:
            raise ConfigurationError(f"dim must be >= 1, got {dim!r}")
        self._cell = float(cell)
        self._dim = int(dim)
        self._positions: Dict[int, np.ndarray] = {}
        self._key_of: Dict[int, CellKey] = {}
        self._cells: Dict[CellKey, Set[int]] = {}

    @classmethod
    def from_points(cls, points: np.ndarray, cell: float) -> "MutableGridIndex":
        """Bulk-load devices ``0..n-1`` from an ``(n, d)`` array.

        One vectorized key computation plus plain dictionary fills —
        the per-insert numpy scalar work would dominate at fleet scale.
        """
        pts = np.asarray(points, dtype=float)
        if pts.ndim != 2:
            raise DimensionMismatchError("points must be an (n, d) array")
        index = cls(cell, pts.shape[1])
        keys = np.floor(pts / index._cell).astype(int)
        for device, key in enumerate(map(tuple, keys)):
            index._positions[device] = pts[device].copy()
            index._key_of[device] = key
            index._cells.setdefault(key, set()).add(device)
        return index

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def cell(self) -> float:
        """Side of the grid cells."""
        return self._cell

    @property
    def dim(self) -> int:
        """Dimensionality of the indexed points."""
        return self._dim

    def __len__(self) -> int:
        return len(self._positions)

    def __contains__(self, device: int) -> bool:
        return device in self._positions

    def devices(self) -> Tuple[int, ...]:
        """All indexed device ids, sorted."""
        return tuple(sorted(self._positions))

    def position(self, device: int) -> np.ndarray:
        """Current position of ``device`` (a copy)."""
        try:
            return self._positions[device].copy()
        except KeyError:
            raise UnknownDeviceError(f"device {device} is not indexed") from None

    def cell_key(self, position: Sequence[float]) -> CellKey:
        """The grid cell containing ``position``."""
        pos = self._validate(position)
        return tuple(int(c) for c in np.floor(pos / self._cell).astype(int))

    def key_of(self, device: int) -> CellKey:
        """The grid cell currently holding ``device``."""
        try:
            return self._key_of[device]
        except KeyError:
            raise UnknownDeviceError(f"device {device} is not indexed") from None

    def devices_in_cell(self, key: CellKey) -> FrozenSet[int]:
        """Devices currently stored in one cell."""
        return frozenset(self._cells.get(key, ()))

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def _validate(self, position: Sequence[float]) -> np.ndarray:
        pos = np.asarray(position, dtype=float)
        if pos.shape != (self._dim,):
            raise DimensionMismatchError(
                f"position shape {pos.shape} incompatible with dim {self._dim}"
            )
        return pos

    def insert(self, device: int, position: Sequence[float]) -> CellKey:
        """Add a device; returns the cell it landed in."""
        if device in self._positions:
            raise ConfigurationError(
                f"device {device} is already indexed; use move()"
            )
        pos = self._validate(position)
        key = self.cell_key(pos)
        self._positions[device] = pos.copy()
        self._key_of[device] = key
        self._cells.setdefault(key, set()).add(device)
        return key

    def remove(self, device: int) -> CellKey:
        """Drop a device; returns the cell it vacated."""
        if device not in self._positions:
            raise UnknownDeviceError(f"device {device} is not indexed")
        key = self._key_of.pop(device)
        del self._positions[device]
        bucket = self._cells[key]
        bucket.discard(device)
        if not bucket:
            del self._cells[key]
        return key

    def move(self, device: int, position: Sequence[float]) -> Tuple[CellKey, CellKey]:
        """Relocate a device; returns ``(old_cell, new_cell)``.

        The common case — a small QoS drift that stays inside the same
        ``2r`` cell — touches no cell sets at all.
        """
        if device not in self._positions:
            raise UnknownDeviceError(f"device {device} is not indexed")
        pos = self._validate(position)
        old_key = self._key_of[device]
        new_key = self.cell_key(pos)
        self._positions[device] = pos.copy()
        if new_key != old_key:
            bucket = self._cells[old_key]
            bucket.discard(device)
            if not bucket:
                del self._cells[old_key]
            self._cells.setdefault(new_key, set()).add(device)
            self._key_of[device] = new_key
        return old_key, new_key

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def query(self, center: Sequence[float], rho: float) -> List[int]:
        """Device ids within uniform distance ``rho`` of ``center``, sorted.

        Identical semantics (including the ``1e-12`` tolerance) to
        :meth:`~repro.core.geometry.GridIndex.query`.
        """
        ctr = self._validate(center)
        lo = np.floor((ctr - rho) / self._cell).astype(int)
        hi = np.floor((ctr + rho) / self._cell).astype(int)
        candidates: List[int] = []
        for key in _iter_cells(lo, hi):
            bucket = self._cells.get(key)
            if bucket:
                candidates.extend(bucket)
        if not candidates:
            return []
        pts = np.stack([self._positions[device] for device in candidates])
        mask = np.all(np.abs(pts - ctr) <= rho + 1e-12, axis=1)
        hits = [candidates[i] for i in np.nonzero(mask)[0]]
        hits.sort()
        return hits

    def query_batch(self, centers: np.ndarray, rho: float) -> List[List[int]]:
        """Answer many range queries (one sorted id list per center)."""
        ctrs = np.asarray(centers, dtype=float)
        if ctrs.ndim != 2 or ctrs.shape[1] != self._dim:
            raise DimensionMismatchError(
                f"centers shape {ctrs.shape} incompatible with dim {self._dim}"
            )
        return [self.query(ctr, rho) for ctr in ctrs]

    def devices_near_cells(
        self, keys: Iterable[CellKey], rings: int
    ) -> Set[int]:
        """Devices within ``rings`` cells (Chebyshev) of any listed cell.

        This is the dirty-region fan-out: given the cells touched by a
        tick's updates, find every device whose neighbourhood could have
        changed.  Cost is O(|keys| * (2 rings + 1)^d) dictionary lookups —
        independent of the population size.
        """
        if rings < 0:
            raise ConfigurationError(f"rings must be >= 0, got {rings!r}")
        out: Set[int] = set()
        seen: Set[CellKey] = set()
        for key in keys:
            lo = np.asarray(key, dtype=int) - rings
            hi = np.asarray(key, dtype=int) + rings
            for probe in _iter_cells(lo, hi):
                if probe in seen:
                    continue
                seen.add(probe)
                bucket = self._cells.get(probe)
                if bucket:
                    out.update(bucket)
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MutableGridIndex(devices={len(self)}, cells={len(self._cells)}, "
            f"cell={self._cell})"
        )
