"""Incrementally maintained uniform-grid spatial index, array-backed.

:class:`~repro.core.geometry.GridIndex` is batch-built: one pass over an
immutable point array.  That is the right shape for the experiment
drivers, which see each snapshot exactly once — and the wrong shape for
an online service, where a tick that moves ``k`` devices out of ``n``
would pay an O(n) rebuild for O(k) change.  :class:`MutableGridIndex`
keeps the same cell decomposition (side ``cell``, keys
``floor(p / cell)``) with O(1) ``insert`` / ``remove`` / ``move``
dictionary work per mutation, and range queries walk exactly the cells
:meth:`GridIndex.query` walks.

Since the structure-of-arrays refactor the index is *columnar*: device
positions live in one ``(capacity, d)`` array and cell keys in one
``(capacity, d)`` int array — there is no per-device numpy object, and
the position plane can be *adopted zero-copy* from a
:class:`~repro.online.store.DeviceStateStore` via :meth:`from_array`, in
which case the store writes positions and the index only maintains cell
membership (:meth:`move_rows` is the vectorized tick path).

Equivalence is part of the contract, not an accident: after *any*
interleaving of mutations, :meth:`query` and :meth:`query_batch` must
return exactly what a freshly built :class:`GridIndex` over the same
points returns (the randomized tests in ``tests/online`` enforce it).
Device identifiers take the place of row indices.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Sequence, Set, Tuple

import numpy as np

from repro.core.errors import (
    ConfigurationError,
    DimensionMismatchError,
    UnknownDeviceError,
)
from repro.core.geometry import _iter_cells

__all__ = ["MutableGridIndex"]

CellKey = Tuple[int, ...]


class MutableGridIndex:
    """Uniform-grid index over points in ``[0, 1]^d`` with O(1) updates.

    Parameters
    ----------
    cell:
        Side of the grid cells (``max(2r, 1e-6)`` matches the batch
        indexes a :class:`~repro.core.transition.Transition` builds).
    dim:
        Dimensionality of the indexed points.
    """

    def __init__(self, cell: float, dim: int) -> None:
        if cell <= 0:
            raise ConfigurationError(f"cell side must be positive, got {cell!r}")
        if dim < 1:
            raise ConfigurationError(f"dim must be >= 1, got {dim!r}")
        self._cell = float(cell)
        self._dim = int(dim)
        # Columnar state: one positions plane, one key plane, one alive
        # mask — rows are device ids.  ``_external`` marks an adopted
        # positions plane (the store writes it; the index must not).
        self._pts = np.empty((0, self._dim), dtype=float)
        self._keys = np.empty((0, self._dim), dtype=np.int64)
        self._alive = np.empty(0, dtype=bool)
        self._count = 0
        self._external = False
        self._cells: Dict[CellKey, Set[int]] = {}

    @classmethod
    def from_points(cls, points: np.ndarray, cell: float) -> "MutableGridIndex":
        """Bulk-load devices ``0..n-1`` from an ``(n, d)`` array.

        One bulk array copy plus a vectorized key computation — the
        per-insert numpy scalar work would dominate at fleet scale.
        """
        pts = np.asarray(points, dtype=float)
        if pts.ndim != 2:
            raise DimensionMismatchError("points must be an (n, d) array")
        index = cls(cell, pts.shape[1])
        index._adopt(pts.copy(), external=False)
        return index

    @classmethod
    def from_array(
        cls, points: np.ndarray, cell: float
    ) -> "MutableGridIndex":
        """Adopt an ``(n, d)`` positions plane *zero-copy*.

        The caller (a :class:`~repro.online.store.DeviceStateStore`)
        owns position writes; the index reads them in place and only
        maintains cell membership.  After the owner rewrites rows it
        must call :meth:`move_rows` with those rows so the cell sets
        catch up.  Growing the owner's plane requires :meth:`rebind`.
        """
        pts = np.asarray(points, dtype=float)
        if pts.ndim != 2:
            raise DimensionMismatchError("points must be an (n, d) array")
        index = cls(cell, pts.shape[1])
        index._adopt(pts, external=True)
        return index

    def _adopt(self, pts: np.ndarray, *, external: bool) -> None:
        n = pts.shape[0]
        self._pts = pts
        self._external = external
        self._keys = np.floor(pts / self._cell).astype(np.int64)
        self._alive = np.ones(n, dtype=bool)
        self._count = n
        cells: Dict[CellKey, Set[int]] = {}
        for device, key in enumerate(map(tuple, self._keys.tolist())):
            cells.setdefault(key, set()).add(device)
        self._cells = cells

    def rebind(self, points: np.ndarray) -> None:
        """Swap the adopted positions plane for a grown replacement.

        Rows already indexed must be byte-identical in the new plane
        (the store grows by copying); only valid in adopted mode.
        """
        if not self._external:
            raise ConfigurationError("rebind is only valid for adopted planes")
        pts = np.asarray(points, dtype=float)
        if pts.ndim != 2 or pts.shape[1] != self._dim:
            raise DimensionMismatchError("points must be an (n, d) array")
        if pts.shape[0] < self._pts.shape[0]:
            raise ConfigurationError("rebind cannot shrink the plane")
        self._pts = pts
        self._grow_rows(pts.shape[0])

    def _grow_rows(self, capacity: int) -> None:
        """Extend the key/alive columns to ``capacity`` rows."""
        have = self._keys.shape[0]
        if capacity <= have:
            return
        keys = np.zeros((capacity, self._dim), dtype=np.int64)
        keys[:have] = self._keys
        alive = np.zeros(capacity, dtype=bool)
        alive[:have] = self._alive
        self._keys = keys
        self._alive = alive
        if not self._external:
            pts = np.zeros((capacity, self._dim), dtype=float)
            pts[: self._pts.shape[0]] = self._pts
            self._pts = pts

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def cell(self) -> float:
        """Side of the grid cells."""
        return self._cell

    @property
    def dim(self) -> int:
        """Dimensionality of the indexed points."""
        return self._dim

    def __len__(self) -> int:
        return self._count

    def __contains__(self, device: int) -> bool:
        return 0 <= device < self._alive.shape[0] and bool(self._alive[device])

    def devices(self) -> Tuple[int, ...]:
        """All indexed device ids, sorted."""
        return tuple(int(j) for j in np.nonzero(self._alive)[0])

    def position(self, device: int) -> np.ndarray:
        """Current position of ``device`` (a copy)."""
        if device not in self:
            raise UnknownDeviceError(f"device {device} is not indexed")
        return self._pts[device].copy()

    def cell_key(self, position: Sequence[float]) -> CellKey:
        """The grid cell containing ``position``."""
        pos = self._validate(position)
        return tuple(int(c) for c in np.floor(pos / self._cell).astype(int))

    def key_of(self, device: int) -> CellKey:
        """The grid cell currently holding ``device``."""
        if device not in self:
            raise UnknownDeviceError(f"device {device} is not indexed")
        return tuple(self._keys[device].tolist())

    def keys_of_rows(self, rows: np.ndarray) -> np.ndarray:
        """Current ``(k, d)`` cell keys of ``rows`` (a gathered copy)."""
        return self._keys[rows].copy()

    def devices_in_cell(self, key: CellKey) -> FrozenSet[int]:
        """Devices currently stored in one cell."""
        return frozenset(self._cells.get(key, ()))

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def _validate(self, position: Sequence[float]) -> np.ndarray:
        pos = np.asarray(position, dtype=float)
        if pos.shape != (self._dim,):
            raise DimensionMismatchError(
                f"position shape {pos.shape} incompatible with dim {self._dim}"
            )
        return pos

    def insert(self, device: int, position: Sequence[float]) -> CellKey:
        """Add a device; returns the cell it landed in."""
        if device in self:
            raise ConfigurationError(
                f"device {device} is already indexed; use move()"
            )
        if device < 0:
            raise ConfigurationError(f"device id must be >= 0, got {device!r}")
        pos = self._validate(position)
        if device >= self._alive.shape[0]:
            if self._external:
                raise ConfigurationError(
                    f"row {device} is beyond the adopted plane; rebind first"
                )
            self._grow_rows(max(device + 1, 2 * self._alive.shape[0], 4))
        if not self._external:
            self._pts[device] = pos
        key_arr = np.floor(self._pts[device] / self._cell).astype(np.int64)
        self._keys[device] = key_arr
        key = tuple(key_arr.tolist())
        self._alive[device] = True
        self._count += 1
        self._cells.setdefault(key, set()).add(device)
        return key

    def remove(self, device: int) -> CellKey:
        """Drop a device; returns the cell it vacated."""
        if device not in self:
            raise UnknownDeviceError(f"device {device} is not indexed")
        key = tuple(self._keys[device].tolist())
        self._alive[device] = False
        self._count -= 1
        bucket = self._cells[key]
        bucket.discard(device)
        if not bucket:
            del self._cells[key]
        return key

    def move(self, device: int, position: Sequence[float]) -> Tuple[CellKey, CellKey]:
        """Relocate a device; returns ``(old_cell, new_cell)``.

        The common case — a small QoS drift that stays inside the same
        ``2r`` cell — touches no cell sets at all.  In adopted mode the
        owner has already written the position; ``position`` must match
        the plane's row (the store guarantees it by writing first).
        """
        if device not in self:
            raise UnknownDeviceError(f"device {device} is not indexed")
        pos = self._validate(position)
        if not self._external:
            self._pts[device] = pos
        old_key = tuple(self._keys[device].tolist())
        new_arr = np.floor(pos / self._cell).astype(np.int64)
        new_key = tuple(new_arr.tolist())
        if new_key != old_key:
            bucket = self._cells[old_key]
            bucket.discard(device)
            if not bucket:
                del self._cells[old_key]
            self._cells.setdefault(new_key, set()).add(device)
            self._keys[device] = new_arr
        return old_key, new_key

    def move_rows(
        self, rows: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Vectorized :meth:`move` for rows whose positions were rewritten.

        Reads the (already updated) positions plane for ``rows``,
        recomputes their keys in one pass and touches cell sets only for
        the rows that actually crossed a cell boundary.  Returns
        ``(old_keys, new_keys, cell_changed)`` — two ``(k, d)`` int
        arrays plus a boolean mask — the row-vector form the
        dirty-region tracker consumes.
        """
        rows = np.asarray(rows, dtype=np.int64)
        old_keys = self._keys[rows].copy()
        new_keys = np.floor(self._pts[rows] / self._cell).astype(np.int64)
        cell_changed = np.any(new_keys != old_keys, axis=1)
        if cell_changed.any():
            changed_idx = np.nonzero(cell_changed)[0]
            old_list = old_keys[changed_idx].tolist()
            new_list = new_keys[changed_idx].tolist()
            for i, pos in enumerate(changed_idx):
                device = int(rows[pos])
                old_key = tuple(old_list[i])
                new_key = tuple(new_list[i])
                bucket = self._cells[old_key]
                bucket.discard(device)
                if not bucket:
                    del self._cells[old_key]
                self._cells.setdefault(new_key, set()).add(device)
            self._keys[rows[changed_idx]] = new_keys[changed_idx]
        return old_keys, new_keys, cell_changed

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def query(self, center: Sequence[float], rho: float) -> List[int]:
        """Device ids within uniform distance ``rho`` of ``center``, sorted.

        Identical semantics (including the ``1e-12`` tolerance) to
        :meth:`~repro.core.geometry.GridIndex.query`.
        """
        ctr = self._validate(center)
        lo = np.floor((ctr - rho) / self._cell).astype(int)
        hi = np.floor((ctr + rho) / self._cell).astype(int)
        candidates: List[int] = []
        for key in _iter_cells(lo, hi):
            bucket = self._cells.get(key)
            if bucket:
                candidates.extend(bucket)
        if not candidates:
            return []
        pts = self._pts[candidates]
        mask = np.all(np.abs(pts - ctr) <= rho + 1e-12, axis=1)
        hits = [candidates[i] for i in np.nonzero(mask)[0]]
        hits.sort()
        return hits

    def query_batch(self, centers: np.ndarray, rho: float) -> List[List[int]]:
        """Answer many range queries (one sorted id list per center)."""
        ctrs = np.asarray(centers, dtype=float)
        if ctrs.ndim != 2 or ctrs.shape[1] != self._dim:
            raise DimensionMismatchError(
                f"centers shape {ctrs.shape} incompatible with dim {self._dim}"
            )
        return [self.query(ctr, rho) for ctr in ctrs]

    def devices_near_cells(
        self, keys: Iterable[CellKey], rings: int
    ) -> Set[int]:
        """Devices within ``rings`` cells (Chebyshev) of any listed cell.

        This is the dirty-region fan-out: given the cells touched by a
        tick's updates, find every device whose neighbourhood could have
        changed.  Cost is O(|keys| * (2 rings + 1)^d) dictionary lookups —
        independent of the population size.
        """
        if rings < 0:
            raise ConfigurationError(f"rings must be >= 0, got {rings!r}")
        out: Set[int] = set()
        seen: Set[CellKey] = set()
        for key in keys:
            lo = np.asarray(key, dtype=int) - rings
            hi = np.asarray(key, dtype=int) + rings
            for probe in _iter_cells(lo, hi):
                if probe in seen:
                    continue
                seen.add(probe)
                bucket = self._cells.get(probe)
                if bucket:
                    out.update(bucket)
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MutableGridIndex(devices={len(self)}, cells={len(self._cells)}, "
            f"cell={self._cell})"
        )
